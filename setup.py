"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs cannot build) can still do ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup(
    # The struct-of-arrays fluid core (repro.simnet.soa) and the vectorized
    # waterfill/bid-trajectory kernels are numpy-backed.
    install_requires=["numpy>=1.22"],
)
