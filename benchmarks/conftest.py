"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
configurable scale and prints the resulting rows/series, so the output can
be compared side by side with the paper (the README's "Reproducing the
paper's figures" table maps each figure to its benchmark).

Scale control (environment variables):

* ``REPRO_BENCH_DURATION``      — simulated seconds per run (default 60; paper: 600)
* ``REPRO_BENCH_CLIENT_SCALE``  — fraction of the paper's client count (default 0.5)
* ``REPRO_BENCH_JOBS``          — worker processes for figure sweeps (default 1)

Run everything with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.base import ExperimentScale
from repro.scenarios.runner import SweepRunner

#: Environment variable controlling sweep parallelism in the benchmarks.
ENV_JOBS = "REPRO_BENCH_JOBS"


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The scale every benchmark uses (overridable through the environment)."""
    return ExperimentScale.default(seed=1)


@pytest.fixture(scope="session")
def sweep_runner() -> SweepRunner:
    """The runner the figure benchmarks hand their scenario grids to."""
    return SweepRunner(jobs=int(os.environ.get(ENV_JOBS, "1")))


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
