"""Figure 4: time spent uploading dummy bytes (mean and 90th percentile).

Paper: when the server is overloaded (c = 50, 100) served good requests spend
on the order of seconds paying; when it is not (c = 200) speak-up introduces
little extra latency.
"""

from benchmarks.conftest import run_once
from repro.experiments.cost import figure4_5_costs
from repro.metrics.tables import format_table


def test_bench_figure4_payment_time(benchmark, bench_scale, sweep_runner):
    rows = run_once(benchmark, figure4_5_costs, bench_scale, runner=sweep_runner)
    print()
    print(format_table(
        headers=["capacity", "mean_payment_s", "p90_payment_s"],
        rows=[(f"{row.capacity_rps:.0f}", row.mean_payment_time, row.p90_payment_time)
              for row in rows],
        title="Figure 4: time uploading dummy bytes for served good requests",
    ))
    by_capacity = {row.capacity_rps: row for row in rows}
    assert by_capacity[200.0].mean_payment_time <= by_capacity[100.0].mean_payment_time + 1e-9
    assert by_capacity[100.0].p90_payment_time >= by_capacity[100.0].mean_payment_time
