"""Figure 7: heterogeneous client RTTs, all-good vs all-bad populations.

Paper: good clients with longer RTTs (100·i ms) capture less of the server
(slow start plus the inter-POST quiescence cost them); bad clients' RTTs
matter little because their many concurrent connections hide the gaps.  No
good client falls below half or rises above double the ideal.
"""

from benchmarks.conftest import run_once
from repro.experiments.heterogeneous import figure7_rtt_heterogeneity, format_categories


def _both_series(scale, runner):
    return {
        "good": figure7_rtt_heterogeneity(scale, client_class="good", runner=runner),
        "bad": figure7_rtt_heterogeneity(scale, client_class="bad", runner=runner),
    }


def test_bench_figure7_rtt_heterogeneity(benchmark, bench_scale, sweep_runner):
    series = run_once(benchmark, _both_series, bench_scale, sweep_runner)
    print()
    for client_class, rows in series.items():
        print(format_categories(
            rows, "rtt_ms",
            f"Figure 7: allocation by RTT category (all {client_class} clients)",
        ))
        print()
    good = series["good"]
    for rows in series.values():
        assert abs(sum(r.observed_allocation for r in rows) - 1.0) < 0.05
    # Short-RTT good clients capture at least as much as the longest-RTT ones.
    assert good[0].observed_allocation >= good[-1].observed_allocation - 0.02
