"""The sweep runner itself: a good/bad-ratio grid with seed replicates.

Benchmarks the scenario subsystem end to end — grid expansion, per-point
execution, and record collection — once serially and once with a process
pool, and checks the two produce identical results (the determinism
guarantee every parallel sweep relies on).
"""

from benchmarks.conftest import run_once
from repro.scenarios.registry import build_scenario
from repro.scenarios.runner import Sweep, SweepRunner, default_jobs

#: Good-client counts the grid sweeps (out of a fixed population of 10).
GRID_GOOD = (2, 5, 8)
REPLICATES = 3


def _ratio_sweep(scale) -> Sweep:
    base = build_scenario(
        "lan-baseline",
        good_clients=GRID_GOOD[0],
        bad_clients=10 - GRID_GOOD[0],
        capacity_rps=20.0,
        duration=min(scale.duration, 20.0),
        seed=scale.seed,
    )
    return Sweep(
        base,
        axes={
            ("groups.0.count", "groups.1.count"): [
                (good, 10 - good) for good in GRID_GOOD
            ],
        },
        replicates=REPLICATES,
    )


def test_bench_sweep_serial(benchmark, bench_scale):
    records = run_once(benchmark, SweepRunner(jobs=1).run, _ratio_sweep(bench_scale))
    assert len(records) == len(GRID_GOOD) * REPLICATES


def test_bench_sweep_parallel(benchmark, bench_scale):
    jobs = min(4, default_jobs())
    records = run_once(benchmark, SweepRunner(jobs=jobs).run, _ratio_sweep(bench_scale))
    assert len(records) == len(GRID_GOOD) * REPLICATES
    serial = SweepRunner(jobs=1).run(_ratio_sweep(bench_scale))
    assert [r.result.to_dict() for r in records] == [r.result.to_dict() for r in serial]
