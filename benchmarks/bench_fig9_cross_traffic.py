"""Figure 9: speak-up's impact on a bystander's HTTP downloads.

Paper: sharing a 1 Mbit/s, 100 ms bottleneck with ten paying speak-up
clients inflates download latency by roughly 6x for a 1 KByte transfer and
roughly 4.5x for a 64 KByte transfer.
"""

from benchmarks.conftest import run_once
from repro.experiments.cross_traffic import figure9_cross_traffic, format_cross_traffic

PAPER_INFLATION = {1: 6.0, 64: 4.5}


def test_bench_figure9_cross_traffic(benchmark, bench_scale):
    rows = run_once(benchmark, figure9_cross_traffic, bench_scale)
    print()
    print(format_cross_traffic(rows))
    print(f"paper inflation reference: {PAPER_INFLATION}")
    for row in rows:
        assert row.latency_with_speakup > row.latency_without_speakup
        assert row.inflation > 1.5
