"""§7.4: the empirical adversarial advantage and the bad-window sweep.

Paper: all good demand is served at c = 115 against the proportional ideal
c_id = 100 — a 15% advantage for the modelled adversary; and w = 20 is the
most damaging window among w in [1, 60].
"""

from benchmarks.conftest import run_once
from repro.experiments.adversary import (
    empirical_adversarial_advantage,
    format_window_sweep,
    window_sweep,
)
from repro.metrics.tables import format_table

PAPER_ADVANTAGE = 0.15


def test_bench_adversarial_advantage(benchmark, bench_scale, sweep_runner):
    outcome = run_once(benchmark, empirical_adversarial_advantage, bench_scale, runner=sweep_runner)
    print()
    print(format_table(
        headers=["metric", "measured", "paper"],
        rows=[
            ("capacity needed / c_id", 1.0 + outcome.advantage, 1.0 + PAPER_ADVANTAGE),
            ("adversarial advantage", outcome.advantage, PAPER_ADVANTAGE),
            ("served fraction at c_id", outcome.served_fraction_at_ideal, None),
        ],
        title="Section 7.4: provisioning needed beyond the bandwidth-proportional ideal",
    ))
    assert 0.0 <= outcome.advantage <= 0.5


def test_bench_window_sweep(benchmark, bench_scale, sweep_runner):
    rows = run_once(benchmark, window_sweep, bench_scale, windows=(1, 10, 20, 40), runner=sweep_runner)
    print()
    print(format_window_sweep(rows))
    assert all(0.0 <= row.bad_allocation <= 1.0 for row in rows)
