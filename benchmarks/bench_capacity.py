"""§7.1 / Table 1: how fast the thinner sinks payment traffic.

Paper: the unoptimised C++/OKWS thinner sinks 1451 Mbits/s with 1500-byte
payloads and 379 Mbits/s with 120-byte payloads at 90% CPU on a 3 GHz Xeon.
Here we measure the Python accounting hot path (credit bytes to a contending
request, periodically find the top bidder) as the closest analogue; see
DESIGN.md §2 for why this substitution is reported rather than a socket-level
number.
"""

from benchmarks.conftest import run_once
from repro.experiments.capacity import thinner_sink_capacity
from repro.metrics.tables import format_table

PAPER_MBITS = {1500: 1451.0, 120: 379.0}


def test_bench_thinner_sink_capacity(benchmark):
    results = run_once(benchmark, thinner_sink_capacity, duration_seconds=0.5, contenders=1000)
    print()
    print(format_table(
        headers=["chunk_bytes", "measured_Mbit_s", "paper_Mbit_s (C++ thinner)"],
        rows=[(r.chunk_bytes, r.mbits_per_second, PAPER_MBITS[r.chunk_bytes]) for r in results],
        title="Section 7.1: payment sink rate (Python accounting path vs paper's C++ server)",
    ))
    for result in results:
        assert result.mbits_per_second > 0
