"""Ablation A4: speak-up vs the taxonomy's other defenses under smart bots.

§8.1 argues that detect-and-block defenses can be fooled by bots that look
legitimate (stay under rate limits / profiles, answer CAPTCHAs via cheap
labour), while currency schemes keep working because they charge everyone.
This ablation runs the same smart-bot attack against each baseline.
"""

from benchmarks.conftest import run_once
from repro.clients.bad import BadClient
from repro.clients.good import GoodClient
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.defenses import registry
from repro.metrics.tables import format_table
from repro.simnet.topology import build_lan, uniform_bandwidths

#: Smart bots: below a 4-req/s rate limit, and they can hire CAPTCHA solvers.
SMART_BOT_RATE = 3.5
SMART_BOT_WINDOW = 4
DEFENSE_SETTINGS = {
    "none": {},
    "ratelimit": {"allowed_rps": 4.0},
    "profiling": {"default_allowed_rps": 4.0},
    "captcha": {"solve_probabilities": {"good": 0.95, "bad": 0.5}},
    "pow": {},
    "speakup": {},
}


def _run(defense_name, scale):
    total = max(8, scale.clients(20))
    good = total // 2
    bad = total - good
    capacity = 1.5 * total  # under-provisioned against the combined demand
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(total, 2 * MBIT))
    defense = registry.create(defense_name, **DEFENSE_SETTINGS[defense_name])
    deployment = Deployment(
        topology, thinner_host,
        DeploymentConfig(server_capacity_rps=capacity, seed=scale.seed),
        thinner_factory=defense.build_thinner,
    )
    for host in hosts[:good]:
        GoodClient(deployment, host)
    for host in hosts[good:]:
        BadClient(deployment, host, rate_rps=SMART_BOT_RATE, window=SMART_BOT_WINDOW)
    deployment.run(scale.duration)
    return deployment.results()


def _compare(scale):
    return {name: _run(name, scale) for name in DEFENSE_SETTINGS}


def test_bench_baseline_defenses(benchmark, bench_scale):
    results = run_once(benchmark, _compare, bench_scale)
    print()
    print(format_table(
        headers=["defense", "good share of server", "good served frac"],
        rows=[(name, result.good_allocation, result.good_fraction_served)
              for name, result in results.items()],
        title="Ablation A4: smart-bot attack (bots below the rate limit, solving half the CAPTCHAs)",
    ))
    # Speak-up should do at least as well as the detect-and-block baselines
    # that smart bots evade (generous slack for run-to-run noise).
    speakup = results["speakup"].good_allocation
    for baseline in ("none", "ratelimit", "profiling"):
        assert speakup >= results[baseline].good_allocation - 0.1
