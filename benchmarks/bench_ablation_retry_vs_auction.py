"""Ablation A1: the two speak-up mechanisms (§3.2 vs §3.3).

The paper implements and evaluates the explicit payment channel + virtual
auction; §3.2's random-drops-plus-aggressive-retries variant should achieve
the same bandwidth-proportional allocation.  This ablation runs the Figure 2
midpoint (half the bandwidth is good) under both mechanisms and under no
defense.
"""

from benchmarks.conftest import run_once
from repro.experiments.base import LanScenario, run_lan_scenario
from repro.experiments.allocation import PAPER_CLIENT_COUNT
from repro.metrics.tables import format_table


def _compare(scale):
    total = scale.clients(PAPER_CLIENT_COUNT)
    good = total // 2
    bad = total - good
    capacity = scale.capacity(100.0, PAPER_CLIENT_COUNT, total)
    results = {}
    for defense in ("none", "retry", "speakup"):
        scenario = LanScenario(
            good_clients=good, bad_clients=bad, capacity_rps=capacity,
            defense=defense, duration=scale.duration, seed=scale.seed,
        )
        results[defense] = run_lan_scenario(scenario)
    return results


def test_bench_retry_vs_auction(benchmark, bench_scale):
    results = run_once(benchmark, _compare, bench_scale)
    print()
    print(format_table(
        headers=["mechanism", "good_allocation", "good_served_frac"],
        rows=[(name, result.good_allocation, result.good_fraction_served)
              for name, result in results.items()],
        title="Ablation A1: encouragement mechanisms (ideal good allocation = 0.5)",
    ))
    assert results["speakup"].good_allocation > results["none"].good_allocation
    assert results["retry"].good_allocation > results["none"].good_allocation
    assert abs(results["speakup"].good_allocation - results["retry"].good_allocation) < 0.2
