"""Table 1: the paper's summary of main evaluation results.

The four rows of Table 1 are qualitative statements backed by the individual
figures; this benchmark re-derives each at a small scale and prints a
one-line verdict per row, giving a cheap end-to-end smoke test of the whole
reproduction.
"""

from benchmarks.conftest import run_once
from repro.experiments.adversary import empirical_adversarial_advantage
from repro.experiments.allocation import figure2_allocation
from repro.experiments.base import ExperimentScale
from repro.experiments.bottleneck import figure8_shared_bottleneck
from repro.experiments.capacity import thinner_sink_capacity
from repro.metrics.tables import format_table


def _summarise(scale: ExperimentScale, runner):
    allocation_rows = figure2_allocation(scale, fractions=(0.5,), runner=runner)
    advantage = empirical_adversarial_advantage(
        scale, served_threshold=0.95, tolerance=0.1, runner=runner
    )
    sink = thinner_sink_capacity(duration_seconds=0.2)
    bottleneck = figure8_shared_bottleneck(scale, splits=((15, 15),), runner=runner)[0]
    return allocation_rows[0], advantage, sink, bottleneck


def test_bench_table1_summary(benchmark, bench_scale, sweep_runner):
    allocation, advantage, sink, bottleneck = run_once(
        benchmark, _summarise, bench_scale, sweep_runner
    )
    rows = [
        (
            "allocation roughly proportional to bandwidth (Fig 2)",
            f"good share {allocation.allocation_with_speakup:.2f} vs ideal {allocation.ideal:.2f}",
        ),
        (
            "provisioning needed beyond the ideal (paper: +15%)",
            f"+{advantage.advantage * 100:.0f}%",
        ),
        (
            "thinner payment sink rate (paper: 1.5 Gbit/s in C++)",
            f"{sink[0].mbits_per_second:.0f} Mbit/s (Python accounting path, 1500-B chunks)",
        ),
        (
            "bottlenecked good clients crowded out (Fig 8)",
            f"good share of bottleneck service {bottleneck.good_share_of_bottleneck_service:.2f} "
            f"vs ideal {bottleneck.ideal_good_share_of_bottleneck_service:.2f}",
        ),
    ]
    print()
    print(format_table(headers=["Table 1 row", "measured"], rows=rows,
                       title="Table 1: summary of main evaluation results"))
    assert abs(allocation.allocation_with_speakup - allocation.ideal) < 0.25
    assert 0.0 <= advantage.advantage <= 0.5
