"""Figure 8: good and bad clients sharing a bottleneck link.

Paper: the clients behind the 40 Mbits/s cable collectively capture about
half the server, but within that share the bad clients beat the
bandwidth-proportional split (their concurrent connections hog the cable),
and the served fraction of the bottlenecked good clients' requests suffers.
"""

from benchmarks.conftest import run_once
from repro.experiments.bottleneck import figure8_shared_bottleneck, format_bottleneck


def test_bench_figure8_shared_bottleneck(benchmark, bench_scale, sweep_runner):
    rows = run_once(benchmark, figure8_shared_bottleneck, bench_scale, runner=sweep_runner)
    print()
    print(format_bottleneck(rows))
    for row in rows:
        # The clients behind the cable cannot grossly exceed the cable's share.
        assert 0.2 < row.bottleneck_share_of_server < 0.8
        # Good clients behind the cable do no better than the proportional split.
        assert row.good_share_of_bottleneck_service <= row.ideal_good_share_of_bottleneck_service + 0.05
