"""Ablation A2: heterogeneous requests — flat auction vs per-quantum auction (§5).

Attackers who know which requests are hard send only those.  Charging once
at admission (the flat §3.3 auction) sells them server *time* at a discount;
auctioning every quantum (§5) restores a bandwidth-proportional split of
server time.
"""

from benchmarks.conftest import run_once
from repro.clients.population import PopulationSpec, build_population
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.metrics.tables import format_table
from repro.simnet.topology import build_lan, uniform_bandwidths

HARD_CHUNKS = 5.0


def _run(defense, scale):
    total = max(6, scale.clients(20))
    good = total // 2
    bad = total - good
    capacity = 2.0 * total  # counted in ordinary requests
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(total, 2 * MBIT))
    deployment = Deployment(
        topology, thinner_host,
        DeploymentConfig(server_capacity_rps=capacity, defense=defense, seed=scale.seed),
    )
    specs = [
        PopulationSpec(count=good, client_class="good", difficulty=1.0),
        PopulationSpec(count=bad, client_class="bad", rate_rps=8.0, window=8,
                       difficulty=HARD_CHUNKS),
    ]
    build_population(deployment, hosts, specs)
    deployment.run(scale.duration)
    return deployment.results()


def _compare(scale):
    return {defense: _run(defense, scale) for defense in ("speakup", "quantum")}


def test_bench_heterogeneous_requests(benchmark, bench_scale):
    results = run_once(benchmark, _compare, bench_scale)
    print()
    print(format_table(
        headers=["thinner", "bad share of server time", "good share of server time"],
        rows=[
            (name,
             result.busy_allocation_by_class.get("bad", 0.0),
             result.busy_allocation_by_class.get("good", 0.0))
            for name, result in results.items()
        ],
        title=f"Ablation A2: attackers send only {HARD_CHUNKS:.0f}-chunk requests",
    ))
    assert (results["quantum"].busy_allocation_by_class.get("bad", 0.0)
            < results["speakup"].busy_allocation_by_class.get("bad", 0.0))
