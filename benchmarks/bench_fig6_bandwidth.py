"""Figure 6: heterogeneous client bandwidths (all good clients).

Paper: with five categories at 0.5·i Mbits/s and c = 10 requests/s, the
fraction of the server captured by each category is close to the
bandwidth-proportional ideal.
"""

from benchmarks.conftest import run_once
from repro.experiments.heterogeneous import figure6_bandwidth_heterogeneity, format_categories


def test_bench_figure6_bandwidth_heterogeneity(benchmark, bench_scale, sweep_runner):
    rows = run_once(benchmark, figure6_bandwidth_heterogeneity, bench_scale, runner=sweep_runner)
    print()
    print(format_categories(
        rows, "bandwidth_Mbit",
        "Figure 6: server allocation by bandwidth category (ideal = proportional)",
    ))
    # Allocation should increase with bandwidth and track the ideal loosely.
    observed = [row.observed_allocation for row in rows]
    assert observed[-1] > observed[0]
    for row in rows:
        assert abs(row.observed_allocation - row.ideal_allocation) < 0.15
