"""Figure 2: server allocation vs. the good clients' fraction of bandwidth.

Paper: with speak-up the measured allocation hugs the ideal line (the good
clients' bandwidth fraction f); without speak-up the bad clients (lambda=40,
w=20) capture far more than their share.
"""

from benchmarks.conftest import run_once
from repro.experiments.allocation import figure2_allocation, format_figure2


def test_bench_figure2_allocation(benchmark, bench_scale, sweep_runner):
    rows = run_once(benchmark, figure2_allocation, bench_scale, runner=sweep_runner)
    print()
    print(format_figure2(rows))
    for row in rows:
        assert row.allocation_with_speakup > row.allocation_without_speakup
        assert abs(row.allocation_with_speakup - row.ideal) < 0.25
