"""Figure 5: average price (payment bytes per served request) vs. capacity.

Paper: under overload (c = 50, 100) the price sits close to, but below, the
upper bound (G + B)/c; when the server is lightly loaded (c = 200) good
clients pay almost nothing.
"""

from benchmarks.conftest import run_once
from repro.experiments.cost import figure4_5_costs
from repro.metrics.tables import format_table


def test_bench_figure5_price(benchmark, bench_scale, sweep_runner):
    rows = run_once(benchmark, figure4_5_costs, bench_scale, runner=sweep_runner)
    print()
    print(format_table(
        headers=["capacity", "price_good_KB", "price_bad_KB", "upper_bound_KB"],
        rows=[(f"{row.capacity_rps:.0f}",
               row.mean_price_good_bytes / 1000.0,
               row.mean_price_bad_bytes / 1000.0,
               row.price_upper_bound_bytes / 1000.0) for row in rows],
        title="Figure 5: average price per served request vs the (G+B)/c bound",
    ))
    by_capacity = {row.capacity_rps: row for row in rows}
    for capacity, row in by_capacity.items():
        assert row.mean_price_good_bytes <= row.price_upper_bound_bytes * 1.1
    assert (by_capacity[200.0].mean_price_good_bytes
            < 0.5 * by_capacity[100.0].mean_price_good_bytes)
