"""Figure 3: allocation and served fraction for c in {50, 100, 200}, G = B.

Paper: for c = 50 and c = 100 the speak-up allocation is roughly proportional
to the aggregate bandwidths (about half each); for c = 200 all good requests
are served.  Without speak-up the bad clients dominate at every capacity.
"""

from benchmarks.conftest import run_once
from repro.experiments.allocation import figure3_provisioning, format_figure3


def test_bench_figure3_provisioning(benchmark, bench_scale, sweep_runner):
    rows = run_once(benchmark, figure3_provisioning, bench_scale, runner=sweep_runner)
    print()
    print(format_figure3(rows))
    on = {row.capacity_rps: row for row in rows if row.speakup_on}
    off = {row.capacity_rps: row for row in rows if not row.speakup_on}
    for capacity in on:
        assert on[capacity].good_allocation > off[capacity].good_allocation
    assert on[200.0].good_fraction_served > 0.95
    assert abs(on[100.0].good_allocation - 0.5) < 0.2
