"""Ablation A3: Theorem 3.1 in practice.

A good client delivering an epsilon fraction of the total bandwidth must
receive at least epsilon/2 of the service no matter how adversaries time
their payments.  We pit one good client against cheating strategies that
game payment timing (focused single-channel payment, lurking/late payment)
and check the bound.
"""

from benchmarks.conftest import run_once
from repro.analysis.auction import theorem_3_1_bound
from repro.clients.bad import BadClient
from repro.clients.cheats import FocusedCheater, LurkingCheater
from repro.clients.good import GoodClient
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.metrics.tables import format_table
from repro.simnet.topology import build_lan, uniform_bandwidths


def _run_against(cheater_factory, scale, attackers=7):
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(1 + attackers, 2 * MBIT))
    deployment = Deployment(
        topology, thinner_host,
        DeploymentConfig(server_capacity_rps=2.0 * (1 + attackers) / 2, defense="speakup",
                         seed=scale.seed),
    )
    victim = GoodClient(deployment, hosts[0])
    for host in hosts[1:]:
        cheater_factory(deployment, host)
    deployment.run(scale.duration)
    result = deployment.results()
    epsilon = 1.0 / (1 + attackers)
    victim_share = victim.stats.served / max(1, result.total_served)
    return epsilon, victim_share


def _compare(scale):
    strategies = {
        "plain bad clients": lambda dep, host: BadClient(dep, host),
        "focused cheater": lambda dep, host: FocusedCheater(dep, host),
        "lurking cheater": lambda dep, host: LurkingCheater(dep, host, lurk_delay=1.0),
    }
    return {name: _run_against(factory, scale) for name, factory in strategies.items()}


def test_bench_theorem31_bound(benchmark, bench_scale):
    outcomes = run_once(benchmark, _compare, bench_scale)
    print()
    rows = []
    for name, (epsilon, share) in outcomes.items():
        rows.append((name, epsilon, epsilon / 2.0, theorem_3_1_bound(epsilon), share))
    print(format_table(
        headers=["adversary strategy", "epsilon", "eps/2 bound", "tight bound", "measured share"],
        rows=rows,
        title="Ablation A3: one good client vs timing-gaming adversaries (Theorem 3.1)",
    ))
    for name, (epsilon, share) in outcomes.items():
        # Allow slack for the finite run length and the good client's own
        # quiescent periods; the qualitative claim is that no strategy drives
        # the victim far below the eps/2 floor.
        assert share >= epsilon / 2.0 * 0.5, name
