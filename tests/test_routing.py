"""The dispatch-strategy registry: legacy equivalence, pins, and properties.

Three layers of protection around ``repro.core.routing``:

* **legacy equivalence** — the registry versions of ``hash`` /
  ``least-loaded`` / ``random`` must be *byte-identical* to the policies the
  old hardcoded ``ShardRouter`` shipped: unit-level sequence equality on the
  router itself, plus full-run sha256 fingerprints against
  ``tests/data/failover_pins.json`` — the pins captured on main before the
  fault layer landed, which a ``RouterSpec``-configured run must still hit.
* **pinned strategies** — every registered strategy's full-run fingerprint
  on a small ``fabric-mega`` leaf-spine case is pinned in
  ``tests/data/routing_pins.json``, so a strategy (or ECMP, or fabric
  sizing) change cannot land silently.
* **degradation + dominance properties** — ``power-of-two`` with no probe
  signal performs one uniform draw, so its runs are byte-identical to
  ``random``; with the ``pins`` probe on a capacity-straddled fabric it
  beats ``random`` on good-client service (the balance actually pays).
"""

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest

from repro.core.routing import (
    PROBE_SIGNALS,
    ROUTER_STRATEGIES,
    ROUTER_STRATEGY_NAMES,
    Probe,
    RouterSpec,
    ShardRouter,
    strategy_needs_rng,
)
from repro.errors import ExperimentError, ThinnerError
from repro.rng import StreamFactory
from repro.scenarios.registry import build_scenario
from repro.scenarios.runner import Sweep, SweepRunner
from repro.scenarios.spec import ScenarioSpec

FAILOVER_PINS = json.loads(
    (Path(__file__).parent / "data" / "failover_pins.json").read_text()
)
ROUTING_PINS = json.loads(
    (Path(__file__).parent / "data" / "routing_pins.json").read_text()
)

LEGACY_POLICIES = ("hash", "least-loaded", "random")


# ---------------------------------------------------------------------------
# RouterSpec
# ---------------------------------------------------------------------------


def test_router_spec_round_trips_through_json():
    spec = RouterSpec(
        name="weighted-sink", probe="sink-rate", probe_window_s=0.25, spill_factor=2.0
    )
    assert RouterSpec.from_dict(spec.to_dict()) == spec
    assert RouterSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


def test_router_spec_validation_errors():
    with pytest.raises(ThinnerError, match="unknown router strategy"):
        RouterSpec(name="round-robin").validate()
    with pytest.raises(ThinnerError, match="unknown router probe"):
        RouterSpec(probe="latency").validate()
    with pytest.raises(ThinnerError, match="probe_window_s"):
        RouterSpec(probe_window_s=0.0).validate()
    with pytest.raises(ThinnerError, match="spill_factor"):
        RouterSpec(spill_factor=0.5).validate()
    for name in ROUTER_STRATEGY_NAMES:
        for probe in PROBE_SIGNALS:
            RouterSpec(name=name, probe=probe).validate()


def test_registry_contains_legacy_and_new_strategies():
    assert ROUTER_STRATEGY_NAMES == (
        "hash",
        "least-loaded",
        "random",
        "power-of-two",
        "weighted-sink",
        "sticky-spill",
    )
    for name in LEGACY_POLICIES:
        assert name in ROUTER_STRATEGIES
    assert strategy_needs_rng("hash") is False
    assert strategy_needs_rng("sticky-spill") is False
    assert strategy_needs_rng("random") is True
    assert strategy_needs_rng("power-of-two") is True
    assert strategy_needs_rng("weighted-sink") is True
    with pytest.raises(ThinnerError, match="unknown router strategy"):
        strategy_needs_rng("round-robin")


def test_scenario_spec_threads_router_spec_through_json():
    spec = build_scenario(
        "fabric-mega",
        good_clients=8,
        bad_clients=4,
        thinner_shards=4,
        router="sticky-spill",
        probe="contenders",
        spill_factor=1.5,
        duration=1.0,
    )
    assert spec.router_spec == RouterSpec(
        name="sticky-spill", probe="contenders", spill_factor=1.5
    )
    rebuilt = ScenarioSpec.from_dict(json.loads(spec.to_json()))
    assert rebuilt.router_spec == spec.router_spec
    assert rebuilt.to_dict() == spec.to_dict()


def test_legacy_scenario_json_has_no_router_spec_key():
    """Specs that never set a RouterSpec serialize exactly as before."""
    spec = build_scenario("fleet-lan", good_clients=4, bad_clients=4, duration=1.0)
    payload = spec.to_dict()
    assert "router_spec" not in payload
    assert "fabric_k" not in payload["topology"]


# ---------------------------------------------------------------------------
# Router-level equivalence and strategy behavior (no simulation)
# ---------------------------------------------------------------------------


def _dispatch_stream(seed=7):
    return StreamFactory(seed).stream("shard-dispatch")


@pytest.mark.parametrize("policy", LEGACY_POLICIES)
def test_spec_router_matches_legacy_string_router(policy):
    """RouterSpec(name=<legacy>) draws and picks identically to the string."""
    names = [f"client-{i:03d}" for i in range(40)]
    legacy = ShardRouter(5, policy, rng=_dispatch_stream())
    speced = ShardRouter(5, RouterSpec(name=policy), rng=_dispatch_stream())
    assert [legacy.assign(n) for n in names] == [speced.assign(n) for n in names]
    assert legacy.counts == speced.counts
    # Kill a shard and re-pin everyone who was on it: same landing spots.
    for router in (legacy, speced):
        router.set_alive(1, False)
    moved_legacy = [legacy.reassign(n, 1) for n in names[:10]]
    moved_speced = [speced.reassign(n, 1) for n in names[:10]]
    assert moved_legacy == moved_speced
    assert legacy.counts == speced.counts


def test_string_policies_stay_restricted_to_legacy_set():
    """New strategies are opt-in via RouterSpec; strings keep the old gate."""
    with pytest.raises(ThinnerError, match="unknown shard policy"):
        ShardRouter(2, "power-of-two")
    router = ShardRouter(2, RouterSpec(name="power-of-two"), rng=_dispatch_stream())
    assert router.policy == "power-of-two"
    with pytest.raises(ThinnerError, match="needs a seeded stream"):
        ShardRouter(2, RouterSpec(name="weighted-sink"))
    # Probe-free strategies never need a stream.
    ShardRouter(4, RouterSpec(name="sticky-spill"))


def test_power_of_two_follows_a_load_probe():
    """With a live load signal, p2c lands on the less-loaded of its draws."""
    loads = [100.0, 0.0, 100.0, 100.0]
    probe = Probe(lambda router, shard: loads[shard], "load")
    router = ShardRouter(
        4, RouterSpec(name="power-of-two"), rng=_dispatch_stream(), probe=probe
    )
    picks = [router.assign(f"c{i}") for i in range(60)]
    # Shard 1 reports zero load forever, so it must win every comparison it
    # appears in: strictly more often than any always-loaded shard.
    assert picks.count(1) > max(picks.count(s) for s in (0, 2, 3))
    # Two shards, one strictly better: shard 0 can only win when both draws
    # land on it (probability 1/4), so the better shard must dominate.
    two = ShardRouter(
        2,
        RouterSpec(name="power-of-two"),
        rng=_dispatch_stream(),
        probe=Probe(lambda router, shard: [5.0, 1.0][shard], "load"),
    )
    two_picks = [two.assign(f"c{i}") for i in range(40)]
    assert two_picks.count(1) > two_picks.count(0)


def test_power_of_two_without_probe_draws_exactly_like_random():
    """Probe-free p2c performs a single uniform draw per client."""
    names = [f"client-{i:03d}" for i in range(50)]
    random_router = ShardRouter(6, RouterSpec(name="random"), rng=_dispatch_stream())
    p2c_router = ShardRouter(
        6, RouterSpec(name="power-of-two", probe="none"), rng=_dispatch_stream()
    )
    assert [random_router.assign(n) for n in names] == [
        p2c_router.assign(n) for n in names
    ]


def test_weighted_sink_follows_a_rate_probe():
    """All weight on one shard -> every pick lands there; no signal -> uniform."""
    rates = [0.0, 0.0, 9.0, 0.0]
    probe = Probe(lambda router, shard: rates[shard], "rate")
    router = ShardRouter(
        4, RouterSpec(name="weighted-sink", probe="sink-rate"),
        rng=_dispatch_stream(), probe=probe,
    )
    assert set(router.assign(f"c{i}") for i in range(20)) == {2}
    # Zero total weight falls back to the uniform draw (same as random).
    dead_probe = Probe(lambda router, shard: 0.0, "rate")
    fallback = ShardRouter(
        4, RouterSpec(name="weighted-sink"), rng=_dispatch_stream(), probe=dead_probe
    )
    uniform = ShardRouter(4, RouterSpec(name="random"), rng=_dispatch_stream())
    names = [f"c{i}" for i in range(30)]
    assert [fallback.assign(n) for n in names] == [uniform.assign(n) for n in names]


def test_sticky_spill_stays_on_hash_until_the_primary_overflows():
    hash_router = ShardRouter(4, "hash")
    sticky = ShardRouter(4, RouterSpec(name="sticky-spill", spill_factor=1.25))
    # A lone client always sticks to its hash bucket (the spill threshold is
    # floored at one pin, so low occupancy never degenerates to least-loaded).
    first = hash_router.assign("client-000")
    assert sticky.assign("client-000") == first
    # Pile pins onto that shard until it far exceeds 1.25x its fair share:
    # the next client hashing there must spill to the least-loaded shard.
    sticky.counts = [0, 0, 0, 0]
    sticky.counts[first] = 12
    before = list(sticky.counts)
    spilled = sticky.assign("client-000")
    assert spilled != first
    assert spilled == min(range(4), key=lambda s: (before[s], s))


# ---------------------------------------------------------------------------
# Full-run fingerprints
# ---------------------------------------------------------------------------


def _digest(spec):
    deployment = spec.build()
    deployment.run(spec.duration)
    result = deployment.results()
    digest = hashlib.sha256(
        json.dumps(result.to_dict(), sort_keys=True).encode()
    ).hexdigest()
    return digest, deployment.engine.events_processed


@pytest.mark.parametrize("mode", ("partitioned", "pooled"))
@pytest.mark.parametrize("policy", LEGACY_POLICIES)
@pytest.mark.parametrize("scenario", ("fleet-lan", "fleet-mega"))
def test_router_spec_runs_are_byte_identical_to_legacy_pins(scenario, policy, mode):
    """A RouterSpec naming a legacy policy hits the pre-registry pins.

    The pins in ``failover_pins.json`` were captured on main before this
    module existed; a star-of-stars fleet run dispatched through the
    registry (``router_spec`` set, ``shard_policy`` ignored) must
    reproduce them byte for byte.
    """
    config = FAILOVER_PINS["configs"][scenario]
    spec = build_scenario(
        scenario,
        good_clients=config["good_clients"],
        bad_clients=config["bad_clients"],
        thinner_shards=config["thinner_shards"],
        capacity_rps=config["capacity_rps"],
        duration=config["duration"],
        admission_mode=mode,
    )
    spec = dataclasses.replace(spec, router_spec=RouterSpec(name=policy))
    digest, events = _digest(spec)
    pin = FAILOVER_PINS["pins"][f"{scenario}/{policy}/{mode}"]
    assert digest == pin["sha256"], "registry dispatch diverged from legacy main"
    assert events == pin["events_processed"]


def _fabric_spec(strategy, probe="pins"):
    config = ROUTING_PINS["config"]
    return build_scenario(
        "fabric-mega",
        good_clients=config["good_clients"],
        bad_clients=config["bad_clients"],
        thinner_shards=config["thinner_shards"],
        fabric=config["fabric"],
        leaves=config["leaves"],
        spines=config["spines"],
        oversubscription=config["oversubscription"],
        cross_traffic_pairs=config["cross_traffic_pairs"],
        capacity_rps=config["capacity_rps"],
        duration=config["duration"],
        seed=config["seed"],
        router=strategy,
        probe=probe,
    )


@pytest.mark.parametrize("strategy", ROUTER_STRATEGY_NAMES)
def test_every_strategy_matches_its_fabric_pin(strategy):
    """Pinned fingerprints for all six strategies on the leaf-spine case."""
    digest, events = _digest(_fabric_spec(strategy))
    pin = ROUTING_PINS["pins"][strategy]
    assert digest == pin["sha256"], f"{strategy} diverged from its pinned run"
    assert events == pin["events_processed"]


def test_power_of_two_with_no_probe_degrades_to_random_exactly():
    """Full-run byte identity, not just statistical similarity."""
    random_digest = _digest(_fabric_spec("random"))
    p2c_digest = _digest(_fabric_spec("power-of-two", probe="none"))
    assert p2c_digest == random_digest


# ---------------------------------------------------------------------------
# The balance dividend: p2c beats random where balance is worth money
# ---------------------------------------------------------------------------


def test_power_of_two_beats_random_on_good_client_service():
    """All six strategies run the capacity-straddled leaf-spine fabric.

    Per-shard admission capacity is set just below the *balanced* per-shard
    demand, so a strategy that spreads clients tightly saturates every
    shard while a loose spread strands capacity on underloaded shards.
    ``power-of-two`` with the ``pins`` probe must beat ``random`` on good
    requests served.  (The cohort is all-good: attacker clumping is
    *convex* for good clients — a shard the adversary piles onto was lost
    anyway, while the shards it spared flourish — so an adversarial cohort
    rewards imbalance and would mask the effect under test.)
    """
    served = {}
    for strategy in ROUTER_STRATEGY_NAMES:
        spec = build_scenario(
            "fabric-mega",
            good_clients=160,
            bad_clients=0,
            thinner_shards=8,
            fabric="leaf-spine",
            leaves=8,
            spines=3,
            oversubscription=4.0,
            cross_traffic_pairs=4,
            router=strategy,
            probe="pins",
            good_rate=2.0,
            capacity_rps=288.0,
            duration=3.0,
            seed=0,
        )
        deployment = spec.build()
        deployment.run(spec.duration)
        result = deployment.results()
        served[strategy] = result.good.served
        assert result.good.served > 0, f"{strategy} served nothing"
        assert len(result.shards) == 8
    assert served["power-of-two"] > served["random"], served


# ---------------------------------------------------------------------------
# Sweep integration
# ---------------------------------------------------------------------------


def test_router_spec_fields_are_sweepable():
    base = _fabric_spec("power-of-two")
    base = dataclasses.replace(base, duration=0.5)
    sweep = Sweep(
        base,
        axes={
            "router_spec.name": ("random", "power-of-two"),
            "router_spec.probe_window_s": (0.25, 1.0),
        },
    )
    records = list(SweepRunner().run(sweep))
    assert len(records) == 4
    seen = {
        (
            record.overrides["router_spec.name"],
            record.overrides["router_spec.probe_window_s"],
        )
        for record in records
    }
    assert seen == {
        ("random", 0.25),
        ("random", 1.0),
        ("power-of-two", 0.25),
        ("power-of-two", 1.0),
    }
    for record in records:
        assert record.result.total_served >= 0


def test_sweeping_router_spec_on_a_legacy_spec_is_a_clear_error():
    spec = build_scenario("fleet-lan", good_clients=4, bad_clients=4, duration=1.0)
    sweep = Sweep(spec, axes={"router_spec.name": ("hash", "random")})
    with pytest.raises(ExperimentError, match="cannot descend into unset field"):
        list(SweepRunner().run(sweep))
