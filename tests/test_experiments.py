"""Integration tests: every experiment module runs at test scale and the
paper's qualitative claims hold."""

import pytest

from repro.experiments.adversary import empirical_adversarial_advantage, window_sweep
from repro.experiments.allocation import (
    figure2_allocation,
    figure3_provisioning,
    format_figure2,
    format_figure3,
)
from repro.experiments.base import ExperimentScale, LanScenario, run_lan_scenario
from repro.experiments.bottleneck import figure8_shared_bottleneck, format_bottleneck
from repro.experiments.capacity import measure_sink_rate, thinner_sink_capacity
from repro.experiments.cost import figure4_5_costs, format_costs
from repro.experiments.cross_traffic import figure9_cross_traffic, format_cross_traffic
from repro.experiments.heterogeneous import (
    figure6_bandwidth_heterogeneity,
    figure7_rtt_heterogeneity,
    format_categories,
)
from repro.errors import ExperimentError

SCALE = ExperimentScale.test()


def test_scale_helpers():
    scale = ExperimentScale(duration=30.0, client_scale=0.5, seed=3)
    assert scale.clients(50) == 25
    assert scale.clients(0) == 0
    assert scale.capacity(100.0, 50, 25) == pytest.approx(50.0)
    assert ExperimentScale.paper().duration == 600.0
    assert scale.with_seed(9).seed == 9


def test_lan_scenario_validation():
    with pytest.raises(ExperimentError):
        run_lan_scenario(LanScenario(good_clients=0, bad_clients=0, capacity_rps=10.0))
    with pytest.raises(ExperimentError):
        run_lan_scenario(LanScenario(good_clients=1, bad_clients=1, capacity_rps=10.0,
                                     duration=0.0))


def test_figure2_speakup_beats_no_defense_and_tracks_ideal():
    rows = figure2_allocation(SCALE, fractions=(0.3, 0.7))
    assert len(rows) == 2
    for row in rows:
        assert row.allocation_with_speakup > row.allocation_without_speakup
        # Within a generous band of the ideal at test scale.
        assert abs(row.allocation_with_speakup - row.ideal) < 0.3
    assert "Figure 2" in format_figure2(rows)


def test_figure3_overprovisioned_capacity_serves_all_good_requests():
    rows = figure3_provisioning(SCALE, paper_capacities=(100.0, 200.0))
    on_rows = {row.capacity_rps: row for row in rows if row.speakup_on}
    off_rows = {row.capacity_rps: row for row in rows if not row.speakup_on}
    assert on_rows[200.0].good_fraction_served > 0.95
    assert on_rows[100.0].good_allocation > off_rows[100.0].good_allocation
    assert "Figure 3" in format_figure3(rows)


def test_costs_prices_below_upper_bound_and_fall_when_overprovisioned():
    rows = figure4_5_costs(SCALE, paper_capacities=(100.0, 200.0))
    by_capacity = {row.capacity_rps: row for row in rows}
    overloaded = by_capacity[100.0]
    light = by_capacity[200.0]
    assert overloaded.mean_price_good_bytes <= overloaded.price_upper_bound_bytes * 1.1
    assert light.mean_price_good_bytes < overloaded.mean_price_good_bytes
    assert light.mean_payment_time < overloaded.mean_payment_time + 1e-9
    assert "payment time" in format_costs(rows)


def test_adversarial_advantage_is_bounded():
    outcome = empirical_adversarial_advantage(SCALE, served_threshold=0.95, tolerance=0.1)
    assert outcome.ideal_capacity_rps > 0
    assert 0.0 <= outcome.advantage <= 0.6
    assert outcome.measured_capacity_rps >= outcome.ideal_capacity_rps


def test_window_sweep_rows():
    rows = window_sweep(SCALE, windows=(1, 20))
    assert len(rows) == 2
    for row in rows:
        assert 0.0 <= row.bad_allocation <= 1.0


def test_figure6_allocation_tracks_bandwidth():
    rows = figure6_bandwidth_heterogeneity(SCALE)
    assert len(rows) == 5
    # Higher-bandwidth categories should not get less of the server.
    observed = [row.observed_allocation for row in rows]
    assert observed[-1] > observed[0]
    assert sum(observed) == pytest.approx(1.0, abs=0.05)
    assert "Figure 6" in format_categories(rows, "bandwidth", "Figure 6")


def test_figure7_rtt_experiments_produce_valid_allocations():
    # At test scale (two clients per category, a few simulated seconds) the
    # per-category counts are too noisy for the paper's quantitative claim;
    # the benchmark asserts the shape at larger scale.  Here we check both
    # series run and produce coherent allocations, and that the shortest-RTT
    # good category is not the worst-off one.
    good_rows = figure7_rtt_heterogeneity(SCALE, client_class="good")
    bad_rows = figure7_rtt_heterogeneity(SCALE, client_class="bad")
    for rows in (good_rows, bad_rows):
        assert len(rows) == 5
        assert sum(row.observed_allocation for row in rows) == pytest.approx(1.0, abs=0.05)
        assert all(0.0 <= row.observed_allocation <= 1.0 for row in rows)
    assert good_rows[0].observed_allocation >= min(r.observed_allocation for r in good_rows)


def test_figure8_bottlenecked_good_clients_lose_to_their_neighbours():
    rows = figure8_shared_bottleneck(SCALE, splits=((15, 15),))
    row = rows[0]
    # The clients behind the cable cannot exceed the cable's share by much.
    assert 0.2 < row.bottleneck_share_of_server < 0.8
    # Bad neighbours grab more than the proportional split of that share.
    assert row.good_share_of_bottleneck_service <= row.ideal_good_share_of_bottleneck_service + 0.05
    assert "bottleneck" in format_bottleneck(rows).lower()


def test_figure9_downloads_inflate_with_speakup():
    rows = figure9_cross_traffic(SCALE, sizes_kbytes=(1, 64), downloads_per_size=20)
    assert len(rows) == 2
    for row in rows:
        assert row.latency_with_speakup > row.latency_without_speakup
        assert row.inflation > 1.5
    assert "Figure 9" in format_cross_traffic(rows)


def test_thinner_sink_capacity_measures_positive_rates():
    results = thinner_sink_capacity(duration_seconds=0.05, contenders=100)
    assert len(results) == 2
    for result in results:
        assert result.mbits_per_second > 0
        assert result.chunks_per_second > 0
    # Larger chunks always sink more bits per second of CPU.
    assert results[0].mbits_per_second > results[1].mbits_per_second
    with pytest.raises(ExperimentError):
        measure_sink_rate(0)


def test_window_sweep_survives_all_bad_population():
    # At extreme down-scales the good-client count rounds to zero and the
    # bad group becomes the scenario's first (only) group.
    tiny = ExperimentScale(duration=5.0, client_scale=0.02, seed=0)
    rows = window_sweep(tiny, windows=(1, 20))
    assert [row.window for row in rows] == [1, 20]


def test_empty_parameter_sequences_yield_empty_rows():
    from repro.experiments.cost import figure4_5_costs

    assert figure2_allocation(SCALE, fractions=()) == []
    assert figure3_provisioning(SCALE, paper_capacities=()) == []
    assert figure4_5_costs(SCALE, paper_capacities=()) == []
    assert figure8_shared_bottleneck(SCALE, splits=()) == []


def test_brownout_storm_budget_and_ejection_story():
    """The gray-failure brownout demonstrates all three robustness claims.

    At test scale: (a) naive retries amplify fleet load by more than the
    2x floor during a fleet-wide lossy pulse, (b) a retry budget holds
    amplification at or below the 1.2x ceiling under the same pulse, and
    (c) with a stalled shard, the health prober's ejection strictly beats
    the no-prober arm on good requests served inside the pulse window.
    """
    from repro.experiments.brownout import (
        BUDGETED_AMPLIFICATION_CEILING,
        NAIVE_AMPLIFICATION_FLOOR,
        brownout_comparison,
        format_brownout,
    )

    outcome = brownout_comparison(ExperimentScale.test())
    assert outcome.naive_amplification > NAIVE_AMPLIFICATION_FLOOR
    assert outcome.budgeted_amplification <= BUDGETED_AMPLIFICATION_CEILING
    assert outcome.storm_demonstrated and outcome.budget_held
    assert outcome.retries_suppressed > 0
    assert outcome.ejections >= 1
    assert outcome.probe_served_in_pulse > outcome.no_probe_served_in_pulse
    assert outcome.ejection_won
    assert outcome.ejection_gain > 1.0
    text = format_brownout(outcome)
    assert "amplification" in text
    assert "ejection" in text


def test_fabric_comparison_covers_every_cell_and_composes_faults():
    """One row per (fabric, strategy) cell, in grid order, with a kill/heal
    pulse composed onto every cell — the chaos-smoke configuration."""
    from repro.experiments.fabric import fabric_strategy_comparison, format_fabric

    rows = fabric_strategy_comparison(
        ExperimentScale.test(),
        fabrics=("star", "leaf-spine"),
        strategies=("hash", "power-of-two"),
        shards=2,
        kill_shard=1,
    )
    assert [(row.fabric, row.strategy) for row in rows] == [
        ("star", "hash"),
        ("star", "power-of-two"),
        ("leaf-spine", "hash"),
        ("leaf-spine", "power-of-two"),
    ]
    for row in rows:
        assert 0.0 <= row.good_allocation <= 1.0
        assert 0.0 <= row.good_fraction_served <= 1.0
        assert row.total_served > 0
        # max/mean is 1.0 for a perfectly even fleet, 0.0 only if no
        # payment was sunk at all (which a served run rules out).
        assert row.shard_imbalance >= 1.0
    text = format_fabric(rows)
    assert "leaf-spine" in text and "power-of-two" in text


@pytest.mark.slow
def test_brownout_thresholds_hold_at_default_scale():
    """The acceptance thresholds hold at the CLI's default scale too."""
    from repro.experiments.brownout import brownout_comparison

    outcome = brownout_comparison(ExperimentScale())
    assert outcome.storm_demonstrated
    assert outcome.budget_held
    assert outcome.ejection_won
