"""Tests for the DefenseSpec data model, normalisation, and the registry."""

import pytest

from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.defenses import DefenseSpec, normalise_defense, registry
from repro.defenses.base import Defense, DefenseRegistry
from repro.errors import DefenseError, ExperimentError
from repro.scenarios.spec import GroupSpec, ScenarioSpec, TopologySpec
from repro.simnet.topology import build_lan, uniform_bandwidths


# ---------------------------------------------------------------------------
# DefenseSpec: construction, round trips, functional updates
# ---------------------------------------------------------------------------


def test_spec_make_freezes_and_sorts_kwargs():
    spec = DefenseSpec.make("ratelimit", burst=2.0, allowed_rps=8.0)
    assert spec.kwargs == (("allowed_rps", 8.0), ("burst", 2.0))
    assert spec.kwargs_dict() == {"allowed_rps": 8.0, "burst": 2.0}
    assert hash(spec) == hash(DefenseSpec.make("ratelimit", allowed_rps=8.0, burst=2.0))


def test_spec_json_round_trip_plain_and_nested():
    plain = DefenseSpec.make("ratelimit", allowed_rps=8.0)
    assert DefenseSpec.from_json(plain.to_json()) == plain

    composite = DefenseSpec.make(
        "adaptive",
        inner=DefenseSpec.make(
            "pipeline",
            stages=(
                DefenseSpec.make("captcha", solve_probabilities={"good": 0.9}),
                DefenseSpec.make("speakup"),
            ),
        ),
        check_interval=0.5,
    )
    rebuilt = DefenseSpec.from_json(composite.to_json())
    assert rebuilt == composite
    # The dict-valued kwarg survives the freeze/thaw round trip as a dict.
    inner = rebuilt.kwargs_dict()["inner"]
    captcha = inner.kwargs_dict()["stages"][0]
    assert captcha.kwargs_dict() == {"solve_probabilities": {"good": 0.9}}


def test_spec_with_kwarg_replaces_and_adds():
    spec = DefenseSpec.make("adaptive", check_interval=1.0)
    updated = spec.with_kwarg("check_interval", 0.25)
    assert updated.kwargs_dict()["check_interval"] == 0.25
    added = updated.with_kwarg("engage_threshold", 0.8)
    assert added.kwargs_dict()["engage_threshold"] == 0.8
    assert spec.kwargs_dict()["check_interval"] == 1.0  # original untouched


def test_spec_labels():
    assert DefenseSpec("speakup").label() == "speakup"
    assert normalise_defense("ratelimit>speakup").label() == "ratelimit>speakup"
    assert normalise_defense("retry").label() == "speakup"
    adaptive = DefenseSpec.make("adaptive", inner="quantum")
    assert adaptive.label() == "adaptive(speakup)"
    # Bare composites (factory defaults) label by name, not an empty join.
    assert DefenseSpec("pipeline").label() == "pipeline"
    assert DefenseSpec("adaptive").label() == "adaptive(speakup)"


def test_config_defense_label_accepts_spec_shaped_dicts():
    config = DeploymentConfig(defense={"name": "speakup"})
    config.validate()
    assert config.defense_label == "speakup"


def test_spec_from_dict_rejects_malformed_documents():
    with pytest.raises(DefenseError):
        DefenseSpec.from_dict({"kwargs": {}})
    with pytest.raises(DefenseError):
        DefenseSpec.from_dict({"name": "speakup", "bogus": 1})
    with pytest.raises(DefenseError):
        DefenseSpec.from_dict({"name": "speakup", "kwargs": [1, 2]})


# ---------------------------------------------------------------------------
# normalise_defense: legacy sugar and errors
# ---------------------------------------------------------------------------


def test_normalise_legacy_aliases():
    assert normalise_defense("speakup") == DefenseSpec("speakup")
    assert normalise_defense("retry") == DefenseSpec(
        "speakup", (("variant", "retry"),)
    )
    assert normalise_defense("quantum") == DefenseSpec(
        "speakup", (("variant", "quantum"),)
    )
    assert normalise_defense("none") == DefenseSpec("none")
    # Registered non-legacy names pass through as default specs.
    assert normalise_defense("captcha") == DefenseSpec("captcha")


def test_normalise_pipeline_shorthand():
    spec = normalise_defense("ratelimit>speakup")
    assert spec.name == "pipeline"
    assert spec.kwargs_dict()["stages"] == (
        DefenseSpec("ratelimit"),
        DefenseSpec("speakup"),
    )
    with pytest.raises(DefenseError):
        normalise_defense("ratelimit>")


def test_normalise_unknown_name_suggests_close_matches():
    with pytest.raises(DefenseError, match="expected one of") as excinfo:
        normalise_defense("speakupp")
    message = str(excinfo.value)
    assert "did you mean 'speakup'" in message
    assert "\n" not in message  # the CLI prints it as one clean line


def test_normalise_rejects_non_string_non_spec():
    with pytest.raises(DefenseError):
        normalise_defense(42)


# ---------------------------------------------------------------------------
# DefenseRegistry edge cases
# ---------------------------------------------------------------------------


def test_registry_duplicate_register_rejected():
    scratch = DefenseRegistry()
    scratch.register("thing", Defense)
    with pytest.raises(DefenseError, match="already registered"):
        scratch.register("thing", Defense)


def test_registry_unknown_name_error_is_one_line_with_suggestion():
    with pytest.raises(DefenseError, match="expected one of") as excinfo:
        registry.create("ratelimitt")
    message = str(excinfo.value)
    assert "did you mean 'ratelimit'" in message
    assert "\n" not in message


def test_registry_unknown_kwarg_error_suggests_parameter():
    with pytest.raises(DefenseError, match="unknown parameter") as excinfo:
        registry.create("ratelimit", allowed_rpss=4.0)
    message = str(excinfo.value)
    assert "expected one of" in message
    assert "did you mean 'allowed_rps'" in message
    assert "\n" not in message


def test_registry_contains_and_iter_are_sorted():
    assert "speakup" in registry
    assert "not-a-defense" not in registry
    names = list(registry)
    assert names == sorted(names)
    assert names == registry.names()
    for expected in ("adaptive", "captcha", "none", "pipeline", "pow",
                     "profiling", "ratelimit", "speakup"):
        assert expected in names


def test_registry_parameters_reports_factory_signature():
    parameters = dict(registry.parameters("ratelimit"))
    assert parameters == {"allowed_rps": 4.0, "burst": None}
    with pytest.raises(DefenseError):
        registry.parameters("bogus")


@pytest.mark.parametrize("name", registry.names())
def test_every_registered_defense_describes_and_builds(name):
    """Each defense has a real describe() and builds on a minimal deployment."""
    defense = registry.create(name)
    description = defense.describe()
    assert description and description != Defense().describe()

    topology, _hosts, thinner_host = build_lan(uniform_bandwidths(2, 2 * MBIT))
    deployment = Deployment(
        topology, thinner_host, DeploymentConfig(defense=DefenseSpec(name))
    )
    assert deployment.thinner is not None
    assert deployment.defense_spec == DefenseSpec(name)
    assert type(deployment.defense).__name__ != "Defense"


# ---------------------------------------------------------------------------
# DeploymentConfig entry points: strings and specs
# ---------------------------------------------------------------------------


def test_config_accepts_spec_and_string_equivalently():
    DeploymentConfig(defense="speakup").validate()
    DeploymentConfig(defense=DefenseSpec("speakup")).validate()
    DeploymentConfig(defense="ratelimit>speakup").validate()
    with pytest.raises(ExperimentError, match="expected one of"):
        DeploymentConfig(defense="bogus").validate()
    with pytest.raises(ExperimentError, match="unknown parameter"):
        DeploymentConfig(defense=DefenseSpec.make("speakup", variannt="retry")).validate()


def test_config_defense_label_keeps_strings_verbatim():
    assert DeploymentConfig(defense="retry").defense_label == "retry"
    assert (
        DeploymentConfig(defense=normalise_defense("ratelimit>speakup")).defense_label
        == "ratelimit>speakup"
    )


@pytest.mark.parametrize(
    "defense",
    [
        "quantum",
        DefenseSpec.make("speakup", variant="quantum"),
        DefenseSpec.make("adaptive", inner="quantum"),
        "ratelimit>quantum",
    ],
)
def test_pooled_quantum_conflicts_name_the_offending_spec(defense):
    config = DeploymentConfig(
        defense=defense, thinner_shards=2, admission_mode="pooled"
    )
    with pytest.raises(ExperimentError, match="quantum") as excinfo:
        config.validate()
    assert "offending defense spec" in str(excinfo.value)


# ---------------------------------------------------------------------------
# ScenarioSpec integration: defense_spec field and sweepable kwargs
# ---------------------------------------------------------------------------


def _spec_with_defense(defense_spec=None, **overrides):
    defaults = dict(
        name="defense-spec-test",
        topology=TopologySpec(kind="lan"),
        groups=(GroupSpec(count=2), GroupSpec(count=2, client_class="bad")),
        capacity_rps=10.0,
        duration=4.0,
        defense_spec=defense_spec,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def test_scenario_defense_spec_round_trips_through_json():
    spec = _spec_with_defense(
        DefenseSpec.make("adaptive", inner=DefenseSpec("speakup"), check_interval=0.5)
    )
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    # String-defense scenarios keep the historical schema (no defense_spec key).
    assert "defense_spec" not in _spec_with_defense(None).to_dict()


def test_scenario_defense_spec_validation():
    _spec_with_defense(DefenseSpec("speakup")).validate()
    with pytest.raises(ExperimentError, match="expected one of"):
        _spec_with_defense(DefenseSpec("firewall")).validate()
    with pytest.raises(ExperimentError, match="unknown parameter"):
        _spec_with_defense(DefenseSpec.make("ratelimit", allowed=1.0)).validate()


def test_scenario_sweeps_defense_spec_kwargs():
    base = _spec_with_defense(DefenseSpec.make("adaptive", check_interval=1.0))
    updated = base.with_value("defense_spec.check_interval", 0.25)
    assert updated.defense_spec.kwargs_dict()["check_interval"] == 0.25
    swapped = base.with_value("defense_spec.name", "speakup")
    assert swapped.defense_spec == DefenseSpec("speakup")
    with pytest.raises(ExperimentError, match="one level"):
        base.with_value("defense_spec.inner.variant", "retry")
    with pytest.raises(ExperimentError, match="unset field"):
        _spec_with_defense(None).with_value("defense_spec.check_interval", 1.0)


def test_scenario_defense_spec_wins_over_string():
    spec = _spec_with_defense(DefenseSpec("none"), defense="speakup")
    config = spec.deployment_config()
    assert config.defense == DefenseSpec("none")
    result = spec.run()
    assert result.defense == "none"
    assert result.payment_bytes_sunk == 0.0
