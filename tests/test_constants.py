"""Tests for unit conversions and paper defaults."""

import pytest

from repro import constants


def test_bandwidth_conversions_round_trip():
    assert constants.mbits_per_sec(2) == 2_000_000
    assert constants.kbits_per_sec(100) == 100_000
    assert constants.gbits_per_sec(1.5) == 1_500_000_000
    assert constants.to_mbits_per_sec(constants.mbits_per_sec(7.5)) == pytest.approx(7.5)


def test_byte_conversions():
    assert constants.bytes_to_bits(1) == 8
    assert constants.bits_to_bytes(8) == 1
    assert constants.kbytes(125) == 125_000
    assert constants.to_kbytes(125_000) == pytest.approx(125)
    assert constants.milliseconds(250) == pytest.approx(0.25)


def test_paper_defaults_match_section_6_and_7():
    assert constants.DEFAULT_POST_BYTES == 1_000_000
    assert constants.PAPER_EXPERIMENT_DURATION == 600.0
    assert constants.DEFAULT_CLIENT_BANDWIDTH == 2_000_000
    assert (constants.GOOD_CLIENT_RATE, constants.GOOD_CLIENT_WINDOW) == (2.0, 1)
    assert (constants.BAD_CLIENT_RATE, constants.BAD_CLIENT_WINDOW) == (40.0, 20)
    assert constants.REQUEST_TIMEOUT == 10.0
    assert constants.SERVICE_TIME_JITTER == 0.1
    assert constants.POST_QUIESCENT_RTTS == 2.0
