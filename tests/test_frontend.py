"""Tests for Deployment / DeploymentConfig wiring."""

import pytest

from repro.constants import MBIT
from repro.core.admission import NoDefenseThinner
from repro.core.auction import VirtualAuctionThinner
from repro.core.frontend import Deployment, DeploymentConfig
from repro.core.quantum import QuantumAuctionThinner
from repro.core.retry import RandomDropThinner
from repro.errors import ExperimentError
from repro.simnet.topology import build_lan, uniform_bandwidths


def build(config=None, **kwargs):
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(2, 2 * MBIT))
    return Deployment(topology, thinner_host, config or DeploymentConfig(**kwargs)), hosts


def test_config_validation():
    with pytest.raises(ExperimentError):
        DeploymentConfig(server_capacity_rps=0).validate()
    with pytest.raises(ExperimentError):
        DeploymentConfig(defense="bogus").validate()
    with pytest.raises(ExperimentError):
        DeploymentConfig(post_bytes=0).validate()
    with pytest.raises(ExperimentError):
        DeploymentConfig(request_bytes=-1).validate()
    with pytest.raises(ExperimentError):
        DeploymentConfig(encouragement_delay=-1).validate()
    DeploymentConfig().validate()


@pytest.mark.parametrize(
    "defense,thinner_type",
    [
        ("speakup", VirtualAuctionThinner),
        ("retry", RandomDropThinner),
        ("quantum", QuantumAuctionThinner),
        ("none", NoDefenseThinner),
    ],
)
def test_defense_selects_thinner_class(defense, thinner_type):
    deployment, _hosts = build(defense=defense)
    assert isinstance(deployment.thinner, thinner_type)


def test_custom_thinner_factory_wins():
    sentinel = {}

    def factory(deployment):
        thinner = VirtualAuctionThinner(
            engine=deployment.engine,
            network=deployment.network,
            server=deployment.server,
            host=deployment.thinner_host,
        )
        sentinel["thinner"] = thinner
        return thinner

    topology, hosts, thinner_host = build_lan(uniform_bandwidths(2, 2 * MBIT))
    deployment = Deployment(topology, thinner_host, DeploymentConfig(), thinner_factory=factory)
    assert deployment.thinner is sentinel["thinner"]


def test_run_requires_positive_duration_and_results_require_run():
    deployment, _hosts = build()
    with pytest.raises(ExperimentError):
        deployment.run(0.0)
    with pytest.raises(ExperimentError):
        deployment.results()


def test_run_advances_clock_and_accumulates_duration():
    deployment, _hosts = build()
    deployment.run(2.0)
    deployment.run(3.0)
    assert deployment.engine.now == pytest.approx(5.0)
    assert deployment.duration == pytest.approx(5.0)


def test_payment_channel_uses_config_post_size():
    deployment, hosts = build(config=DeploymentConfig(post_bytes=123_456))
    from repro.httpd.messages import new_request

    channel = deployment.payment_channel(hosts[0], new_request("c", issued_at=0.0))
    assert channel.post_bytes == 123_456
    assert channel.thinner_host is deployment.thinner_host


def test_client_streams_are_distinct_per_name():
    deployment, _hosts = build()
    a = deployment.client_stream("client-a")
    b = deployment.client_stream("client-b")
    assert a is not b
    assert deployment.client_stream("client-a") is a


def test_gc_reenabled_even_when_run_raises():
    """``run`` pauses GC around the engine loop but must restore it on error."""
    import gc

    deployment, _hosts = build()
    assert deployment.config.pause_gc_during_run

    boom = RuntimeError("engine exploded")

    def exploding(_flow=None):
        raise boom

    deployment.engine.schedule_after(0.5, exploding)
    assert gc.isenabled()
    with pytest.raises(RuntimeError) as excinfo:
        deployment.run(1.0)
    assert excinfo.value is boom
    assert gc.isenabled(), "a failing run must not leave the GC disabled"


def test_gc_left_alone_when_already_disabled():
    """``run`` only re-enables GC it disabled itself."""
    import gc

    deployment, _hosts = build()
    assert gc.isenabled()
    gc.disable()
    try:
        deployment.run(0.5)
        assert not gc.isenabled(), "run must not enable GC the caller disabled"
    finally:
        gc.enable()


def test_aggregate_bandwidth_by_class():
    from repro.clients.bad import BadClient
    from repro.clients.good import GoodClient

    deployment, hosts = build()
    GoodClient(deployment, hosts[0])
    BadClient(deployment, hosts[1])
    assert deployment.aggregate_bandwidth_bps() == pytest.approx(4 * MBIT)
    assert deployment.aggregate_bandwidth_bps("good") == pytest.approx(2 * MBIT)
    assert len(deployment.good_clients) == 1
    assert len(deployment.bad_clients) == 1
