"""Checkpointed campaigns: crash/resume byte-identity and the merge-on-read store."""

import json
import os

import pytest

from repro.campaigns import (
    CampaignPlan,
    CampaignRunner,
    CampaignStore,
    campaign_status,
)
from repro.campaigns.runner import scan_spool, spool_path
from repro.errors import ExperimentError
from repro.scenarios import Sweep, SweepRunner, build_scenario, load_results, save_results


def _base_spec(duration: float = 2.0, **kwargs):
    return build_scenario(
        "lan-baseline", good_clients=2, bad_clients=2,
        capacity_rps=10.0, duration=duration, **kwargs,
    )


def _small_sweep():
    return Sweep(
        _base_spec(), axes={"capacity_rps": (5.0, 10.0, 20.0)}, replicates=2
    )


# ---------------------------------------------------------------------------
# Plan persistence
# ---------------------------------------------------------------------------


def test_plan_round_trips_through_json(tmp_path):
    sweep = Sweep(
        _base_spec(),
        axes={
            "defense": ("speakup", "none"),
            ("groups.0.count", "groups.1.count"): [(1, 3), (3, 1)],
        },
        replicates=2,
    )
    plan = CampaignPlan.from_sweep(sweep, workers=3)
    plan.save(str(tmp_path))
    loaded = CampaignPlan.load(str(tmp_path))
    assert loaded == plan
    assert [p.spec for p in loaded.sweep().points()] == [
        p.spec for p in sweep.points()
    ]
    assert loaded.point_count() == sweep.point_count()
    # index % workers sharding covers every point exactly once.
    covered = sorted(
        index for w in range(3) for index in loaded.worker_indices(w)
    )
    assert covered == list(range(loaded.point_count()))


def test_plan_load_rejects_non_campaign_directories(tmp_path):
    with pytest.raises(ExperimentError):
        CampaignPlan.load(str(tmp_path))


def test_seed_axis_plans_round_trip(tmp_path):
    sweep = Sweep(_base_spec(), axes={"seed": (1, 2, 3)})
    plan = CampaignPlan.from_sweep(sweep, workers=2)
    assert plan.seeds is None
    plan.save(str(tmp_path))
    loaded = CampaignPlan.load(str(tmp_path))
    assert [p.spec.seed for p in loaded.sweep().points()] == [1, 2, 3]


# ---------------------------------------------------------------------------
# Crash / resume
# ---------------------------------------------------------------------------


def test_uninterrupted_campaign_merge_matches_save_results(tmp_path):
    sweep = _small_sweep()
    reference = tmp_path / "reference.json"
    save_results(SweepRunner(jobs=1).run(sweep), str(reference))

    directory = tmp_path / "campaign"
    status = CampaignRunner(jobs=2).run(sweep, str(directory), workers=2)
    assert status.complete
    merged = tmp_path / "merged.json"
    CampaignStore(str(directory)).merge(str(merged))
    assert merged.read_bytes() == reference.read_bytes()
    # And load_results accepts the merged document unchanged.
    assert len(load_results(str(merged))) == sweep.point_count()


def test_killed_worker_resumes_byte_identical(tmp_path):
    """The tentpole invariant: crash a worker mid-campaign (torn spool line
    included), resume, and the merged output is byte-identical to an
    uninterrupted run."""
    sweep = _small_sweep()
    reference = tmp_path / "reference.json"
    save_results(SweepRunner(jobs=1).run(sweep), str(reference))

    directory = str(tmp_path / "campaign")
    status = CampaignRunner(jobs=2).run(
        sweep, directory, workers=2, checkpoint_every=1,
        fail_after=1, fail_worker=0,
    )
    assert not status.complete
    assert status.workers[0].torn
    assert status.done < status.points

    # The store refuses to merge an incomplete campaign.
    with pytest.raises(ExperimentError):
        CampaignStore(directory).merge(str(tmp_path / "premature.json"))

    # Spool 0's valid prefix survives the resume untouched.
    with open(spool_path(directory, 0), "rb") as handle:
        torn_bytes = handle.read()

    status = CampaignRunner(jobs=2).resume(directory)
    assert status.complete

    with open(spool_path(directory, 0), "rb") as handle:
        resumed_bytes = handle.read()
    # The valid prefix of the torn spool is a prefix of the resumed spool.
    valid_prefix = torn_bytes[: torn_bytes.rfind(b"\n") + 1]
    assert resumed_bytes.startswith(valid_prefix)

    merged = tmp_path / "merged.json"
    CampaignStore(directory).merge(str(merged))
    assert merged.read_bytes() == reference.read_bytes()


def test_resume_executes_only_missing_points(tmp_path):
    sweep = _small_sweep()
    directory = str(tmp_path / "campaign")
    CampaignRunner(jobs=2).run(
        sweep, directory, workers=2, fail_after=1, fail_worker=1
    )
    before = campaign_status(directory)
    done_before = {
        index
        for worker in range(2)
        for index in scan_spool(spool_path(directory, worker), repair=True)[0]
    }
    status = CampaignRunner(jobs=1).resume(directory)
    assert status.complete
    assert status.done == sweep.point_count()
    # Every record done before the crash is still there (resume only adds).
    for worker in range(2):
        done_after, _ = scan_spool(spool_path(directory, worker))
        assert done_after >= {i for i in done_before if i % 2 == worker}
    assert before.done == len(done_before)


def test_run_refuses_to_clobber_an_existing_campaign(tmp_path):
    sweep = _small_sweep()
    directory = str(tmp_path / "campaign")
    CampaignRunner(jobs=1).run(sweep, directory, workers=1)
    with pytest.raises(ExperimentError):
        CampaignRunner(jobs=1).run(sweep, directory, workers=1)


def test_jobs_one_in_process_matches_multiprocess(tmp_path):
    sweep = _small_sweep()
    serial_dir, parallel_dir = str(tmp_path / "s"), str(tmp_path / "p")
    CampaignRunner(jobs=1).run(sweep, serial_dir, workers=2)
    CampaignRunner(jobs=2).run(sweep, parallel_dir, workers=2)
    for worker in range(2):
        with open(spool_path(serial_dir, worker), "rb") as a, \
                open(spool_path(parallel_dir, worker), "rb") as b:
            assert a.read() == b.read()


# ---------------------------------------------------------------------------
# The merge-on-read store
# ---------------------------------------------------------------------------


@pytest.fixture
def finished_campaign(tmp_path):
    sweep = _small_sweep()
    directory = str(tmp_path / "campaign")
    CampaignRunner(jobs=2).run(sweep, directory, workers=2)
    return directory, sweep


def test_store_streams_records_in_index_order(finished_campaign):
    directory, sweep = finished_campaign
    store = CampaignStore(directory)
    indices = [entry["index"] for entry in store.iter_dicts()]
    assert indices == list(range(sweep.point_count()))
    assert store.count() == sweep.point_count()
    records = store.load()
    assert [r.index for r in records] == indices


def test_store_query_filters_on_overrides(finished_campaign):
    directory, _sweep = finished_campaign
    store = CampaignStore(directory)
    hits = list(store.query(where={"capacity_rps": 10.0}))
    assert len(hits) == 2  # two replicates of one grid value
    assert all(r.overrides["capacity_rps"] == 10.0 for r in hits)
    assert list(store.query(where={"capacity_rps": 999.0})) == []


def test_store_summarise_groups_streaming(finished_campaign):
    directory, _sweep = finished_campaign
    store = CampaignStore(directory)
    summaries = store.summarise("total_served", by="capacity_rps")
    assert set(summaries) == {5.0, 10.0, 20.0}
    for summary in summaries.values():
        assert summary.count == 2
        assert summary.minimum <= summary.mean <= summary.maximum
    # Ungrouped: one bucket keyed None.
    overall = store.summarise("total_served")
    assert overall[None].count == 6


def test_store_rejects_torn_spools_without_resume(finished_campaign):
    directory, _sweep = finished_campaign
    with open(spool_path(directory, 0), "ab") as handle:
        handle.write(b'{"index": 99, "spec"')  # torn tail
    store = CampaignStore(directory)
    with pytest.raises(ExperimentError):
        list(store.iter_dicts())
    status = campaign_status(directory)
    assert status.workers[0].torn and not status.complete


def test_two_hundred_point_campaign_completes(tmp_path):
    """The acceptance floor: a >=200-point campaign runs, checkpoints, and
    merges through the streaming store."""
    sweep = Sweep(
        _base_spec(duration=0.5),
        axes={"capacity_rps": tuple(float(5 + i) for i in range(25))},
        replicates=8,
    )
    assert sweep.point_count() == 200
    directory = str(tmp_path / "campaign")
    status = CampaignRunner(jobs=4).run(
        sweep, directory, workers=4, checkpoint_every=16
    )
    assert status.complete and status.done == 200
    store = CampaignStore(directory)
    assert store.count() == 200
    merged = tmp_path / "merged.json"
    assert store.merge(str(merged)) == 200
    document = json.loads(merged.read_text())
    assert len(document["records"]) == 200


# ---------------------------------------------------------------------------
# load_results validation (shared with the store)
# ---------------------------------------------------------------------------


def test_load_results_rejects_truncated_json(tmp_path):
    sweep = Sweep(_base_spec(), axes={"capacity_rps": (5.0,)})
    path = tmp_path / "results.json"
    save_results(SweepRunner().run(sweep), str(path))
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    with pytest.raises(ExperimentError, match="truncated or not valid JSON"):
        load_results(str(path))


def test_load_results_rejects_malformed_records(tmp_path):
    path = tmp_path / "results.json"
    path.write_text('{"version": 1, "records": [{"index": 0}]}')
    with pytest.raises(ExperimentError, match="missing the 'spec' key"):
        load_results(str(path))
    path.write_text('{"records": []}')
    with pytest.raises(ExperimentError, match="no 'version' key"):
        load_results(str(path))
    path.write_text('{"version": 1, "records": [17]}')
    with pytest.raises(ExperimentError, match="must be an object"):
        load_results(str(path))
