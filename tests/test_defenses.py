"""Tests for the baseline defenses and the defense registry."""

import pytest

from repro.clients.bad import BadClient
from repro.clients.good import GoodClient
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.defenses import registry
from repro.defenses.captcha import CaptchaDefense
from repro.defenses.none import NoDefense
from repro.defenses.pow import ProofOfWorkDefense
from repro.defenses.profiling import ProfilingDefense
from repro.defenses.ratelimit import RateLimitDefense, TokenBucket
from repro.defenses.speakup import SpeakUpDefense
from repro.errors import DefenseError
from repro.simnet.topology import build_lan, uniform_bandwidths


def run_with_defense(defense, good=2, bad=2, capacity=8.0, duration=10.0, seed=0,
                     bad_rate=40.0, bad_window=20):
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(good + bad, 2 * MBIT))
    config = DeploymentConfig(server_capacity_rps=capacity, seed=seed)
    deployment = Deployment(topology, thinner_host, config,
                            thinner_factory=defense.build_thinner)
    for host in hosts[:good]:
        GoodClient(deployment, host)
    for host in hosts[good:]:
        BadClient(deployment, host, rate_rps=bad_rate, window=bad_window)
    deployment.run(duration)
    return deployment, deployment.results()


def test_registry_knows_all_defenses():
    for name in ("none", "speakup", "ratelimit", "profiling", "pow", "captcha"):
        assert name in registry
    assert isinstance(registry.create("speakup"), SpeakUpDefense)
    with pytest.raises(DefenseError):
        registry.create("unknown-defense")
    with pytest.raises(DefenseError):
        registry.register("none", NoDefense)


def test_defense_describe_strings():
    assert "speak-up" in SpeakUpDefense().describe()
    assert "rate limit" in RateLimitDefense().describe()
    assert "profiling" in ProfilingDefense().describe()
    assert "proof-of-work" in ProofOfWorkDefense().describe()
    assert "captcha" in CaptchaDefense().describe()
    assert "no defense" in NoDefense().describe()


def test_speakup_defense_variant_validation():
    with pytest.raises(DefenseError):
        SpeakUpDefense(variant="bogus")


def test_token_bucket_refills_and_limits():
    bucket = TokenBucket(rate=2.0, burst=2.0, tokens=2.0, last_refill=0.0)
    assert bucket.try_consume(0.0)
    assert bucket.try_consume(0.0)
    assert not bucket.try_consume(0.0)      # burst exhausted
    assert bucket.try_consume(1.0)          # refilled 2 tokens/s for 1 s
    assert bucket.try_consume(1.0)          # second refilled token
    assert not bucket.try_consume(1.0)      # and no more at the same instant


def test_rate_limit_blocks_aggressive_senders():
    deployment, result = run_with_defense(RateLimitDefense(allowed_rps=4.0), duration=12.0)
    assert deployment.thinner.rejected > 0
    # Good clients (2 req/s) stay under the limit while each bad client is
    # capped at 4 req/s.  The bad clients still hold many more requests in
    # the pending queue (their window is 20 vs 1), so the improvement over
    # the undefended ~5% is real but modest — which is exactly the paper's
    # point about rate limiting alone.
    assert result.good_allocation > 0.08


def test_rate_limit_defeated_by_smart_bots_speakup_is_not():
    smart = dict(bad_rate=3.5, bad_window=4, capacity=6.0, duration=15.0)
    _dep1, ratelimited = run_with_defense(RateLimitDefense(allowed_rps=4.0), **smart)
    _dep2, speakup = run_with_defense(SpeakUpDefense(), **smart)
    # Bots below the limit are indistinguishable to the rate limiter, so the
    # good share under speak-up should be at least as large.
    assert speakup.good_allocation >= ratelimited.good_allocation - 0.05


def test_profiling_enforces_learned_baseline():
    defense = ProfilingDefense(default_allowed_rps=4.0, slack_factor=1.0)
    deployment, result = run_with_defense(defense, duration=12.0)
    assert deployment.thinner.rejected > 0
    assert result.good_allocation > 0.08


def test_profiling_with_explicit_profile_and_learning_period():
    defense = ProfilingDefense(
        baseline_profile={"client-000": 2.0}, learning_period=2.0, default_allowed_rps=3.0
    )
    deployment, _result = run_with_defense(defense, duration=10.0)
    thinner = deployment.thinner
    assert thinner.allowed_rate("client-000") == pytest.approx(2.0 * defense.slack_factor)
    assert thinner.allowed_rate("never-seen") == pytest.approx(3.0)


def test_pow_allocates_by_cpu_power():
    defense = ProofOfWorkDefense(puzzle_cost=1.0)
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(4, 2 * MBIT))
    deployment = Deployment(
        topology, thinner_host, DeploymentConfig(server_capacity_rps=8.0, seed=1),
        thinner_factory=defense.build_thinner,
    )
    strong = GoodClient(deployment, hosts[0])
    strong.cpu_power = 4.0
    weak = GoodClient(deployment, hosts[1])
    weak.cpu_power = 1.0
    BadClient(deployment, hosts[2])
    BadClient(deployment, hosts[3])
    deployment.run(15.0)
    # The strong-CPU client should be served at least as much as the weak one.
    assert strong.stats.served >= weak.stats.served


def test_captcha_blocks_most_bots_but_also_good_bots():
    defense = CaptchaDefense(solve_probabilities={"good": 0.8, "bad": 0.05})
    deployment, result = run_with_defense(defense, duration=12.0)
    assert deployment.thinner.challenges_failed > 0
    # Most bot requests never reach the server; most good requests do.
    assert result.bad.served_fraction < 0.2
    assert result.good.served_fraction > 0.6
    # Collateral damage: some good requests are lost to unsolved challenges.
    assert any(client.stats.dropped > 0 for client in deployment.good_clients)


def test_captcha_probability_validation():
    with pytest.raises(DefenseError):
        run_with_defense(CaptchaDefense(solve_probabilities={"good": 1.5}), duration=1.0)
