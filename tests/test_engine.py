"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.simnet.engine import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_and_run_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule_at(2.0, fired.append, "b")
    engine.schedule_at(1.0, fired.append, "a")
    engine.schedule_at(3.0, fired.append, "c")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 3.0


def test_same_time_events_fire_in_scheduling_order():
    engine = Engine()
    fired = []
    for label in ("first", "second", "third"):
        engine.schedule_at(1.0, fired.append, label)
    engine.run()
    assert fired == ["first", "second", "third"]


def test_schedule_after_uses_relative_delay():
    engine = Engine()
    seen = []
    engine.schedule_after(0.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [0.5]


def test_schedule_in_past_raises():
    engine = Engine()
    engine.schedule_at(1.0, lambda: None)
    engine.run()
    with pytest.raises(SchedulingError):
        engine.schedule_at(0.5, lambda: None)


def test_negative_delay_raises():
    engine = Engine()
    with pytest.raises(SchedulingError):
        engine.schedule_after(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule_at(1.0, fired.append, "x")
    event.cancel()
    engine.run()
    assert fired == []
    assert not event.pending


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule_at(1.0, fired.append, "early")
    engine.schedule_at(5.0, fired.append, "late")
    engine.run(until=2.0)
    assert fired == ["early"]
    assert engine.now == 2.0
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_without_events():
    engine = Engine()
    engine.run(until=7.5)
    assert engine.now == 7.5


def test_events_scheduled_during_execution_run_in_order():
    engine = Engine()
    fired = []

    def outer():
        fired.append("outer")
        engine.schedule_after(1.0, lambda: fired.append("inner"))

    engine.schedule_at(1.0, outer)
    engine.run()
    assert fired == ["outer", "inner"]
    assert engine.now == 2.0


def test_call_soon_runs_at_current_time():
    engine = Engine()
    times = []
    engine.schedule_at(3.0, lambda: engine.call_soon(lambda: times.append(engine.now)))
    engine.run()
    assert times == [3.0]


def test_stop_halts_run():
    engine = Engine()
    fired = []
    engine.schedule_at(1.0, lambda: (fired.append("a"), engine.stop()))
    engine.schedule_at(2.0, fired.append, "b")
    engine.run()
    assert fired[0][0] == "a" if isinstance(fired[0], tuple) else fired == ["a"]
    assert engine.pending_events == 1


def test_max_events_limit():
    engine = Engine()
    fired = []
    for i in range(5):
        engine.schedule_at(float(i + 1), fired.append, i)
    engine.run(max_events=3)
    assert fired == [0, 1, 2]


def test_periodic_task_fires_until_cancelled():
    engine = Engine()
    ticks = []
    task = engine.schedule_every(1.0, lambda: ticks.append(engine.now))
    engine.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]
    task.cancel()
    engine.schedule_at(10.0, lambda: None)  # keep the clock moving
    engine.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0, 4.0]
    assert task.fire_count == 4


def test_periodic_task_custom_start():
    engine = Engine()
    ticks = []
    engine.schedule_every(2.0, lambda: ticks.append(engine.now), start_after=0.5)
    engine.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_task_rejects_nonpositive_interval():
    engine = Engine()
    with pytest.raises(SchedulingError):
        engine.schedule_every(0.0, lambda: None)


def test_drain_fires_everything():
    engine = Engine()
    fired = []
    for i in range(4):
        engine.schedule_at(float(i), fired.append, i)
    count = engine.drain()
    assert count == 4
    assert fired == [0, 1, 2, 3]


def test_events_processed_counter():
    engine = Engine()
    for i in range(3):
        engine.schedule_at(float(i + 1), lambda: None)
    engine.run()
    assert engine.events_processed == 3


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
def test_events_always_fire_in_nondecreasing_time_order(times):
    """Property: whatever the scheduling order, firing order is by time."""
    engine = Engine()
    observed = []
    for t in times:
        engine.schedule_at(t, lambda t=t: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)
    assert len(observed) == len(times)


def test_pending_events_counts_only_live_events():
    engine = Engine()
    events = [engine.schedule_at(float(i + 1), lambda: None) for i in range(10)]
    assert engine.pending_events == 10
    for event in events[:4]:
        event.cancel()
    assert engine.pending_events == 6
    # Double-cancel does not double-count.
    events[0].cancel()
    assert engine.pending_events == 6
    engine.run()
    assert engine.pending_events == 0
    assert engine.events_processed == 6


def test_heap_compacts_when_mostly_cancelled():
    engine = Engine()
    keep = 10
    total = max(engine.COMPACT_MIN_QUEUE * 2, 200)
    events = [engine.schedule_at(float(i + 1), lambda: None) for i in range(total)]
    for event in events[keep:]:
        event.cancel()
    # The queue was rebuilt without the cancelled majority: below the
    # compaction threshold rather than still holding all `total` entries.
    assert len(engine._queue) < engine.COMPACT_MIN_QUEUE
    assert engine.pending_events == keep
    fired = engine.drain()
    assert fired == keep


def test_compaction_preserves_firing_order():
    engine = Engine()
    observed = []
    total = 256
    events = [
        engine.schedule_at(float(i + 1), observed.append, i) for i in range(total)
    ]
    survivors = [i for i in range(total) if i % 3 == 0]
    for index, event in enumerate(events):
        if index % 3 != 0:
            event.cancel()
    engine.run()
    assert observed == survivors
