"""Tests for the named, seeded random streams."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    RandomStream,
    StreamFactory,
    derive_seed,
    deterministic_jitter,
    geometric_levels,
    halton,
    spread_points,
)


def test_same_seed_and_name_reproduce_the_same_draws():
    a = RandomStream(42, "clients")
    b = RandomStream(42, "clients")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_streams():
    a = RandomStream(42, "clients")
    b = RandomStream(42, "server")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_derive_seed_is_stable():
    assert derive_seed(1, "x") == derive_seed(1, "x")
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_factory_caches_streams():
    factory = StreamFactory(7)
    assert factory.stream("a") is factory.stream("a")
    assert "a" in factory
    assert len(factory) == 1
    assert len(factory.streams(["a", "b", "c"])) == 3
    assert len(factory) == 3


def test_exponential_rejects_nonpositive_rate():
    stream = RandomStream(0, "t")
    with pytest.raises(ValueError):
        stream.exponential(0.0)


def test_exponential_mean_roughly_matches_rate():
    stream = RandomStream(0, "poisson")
    rate = 5.0
    samples = [stream.exponential(rate) for _ in range(5000)]
    assert abs(sum(samples) / len(samples) - 1.0 / rate) < 0.02


def test_service_time_within_jitter_band():
    stream = RandomStream(3, "server")
    capacity = 10.0
    for _ in range(200):
        value = stream.service_time(capacity, jitter=0.1)
        assert 0.9 / capacity <= value <= 1.1 / capacity


def test_service_time_validations():
    stream = RandomStream(3, "server")
    with pytest.raises(ValueError):
        stream.service_time(0.0)
    with pytest.raises(ValueError):
        stream.service_time(10.0, jitter=1.5)


def test_bernoulli_bounds():
    stream = RandomStream(1, "coin")
    with pytest.raises(ValueError):
        stream.bernoulli(1.5)
    assert stream.bernoulli(1.0) is True
    assert stream.bernoulli(0.0) is False


def test_poisson_arrivals_within_duration_and_increasing():
    stream = RandomStream(5, "arrivals")
    arrivals = stream.poisson_arrivals(rate=20.0, duration=10.0)
    assert all(0 <= t < 10.0 for t in arrivals)
    assert arrivals == sorted(arrivals)
    # Expected count is 200; allow generous slack.
    assert 120 < len(arrivals) < 300


def test_choice_on_empty_sequence_raises():
    stream = RandomStream(0, "c")
    with pytest.raises(IndexError):
        stream.choice([])


def test_pareto_and_lognormal_positive():
    stream = RandomStream(0, "diff")
    assert stream.pareto(1.5, 2.0) >= 2.0
    assert stream.lognormal(0.0, 1.0) > 0.0
    with pytest.raises(ValueError):
        stream.pareto(0, 1)


def test_deterministic_jitter_is_stable_and_bounded():
    assert deterministic_jitter("client-1", 5.0) == deterministic_jitter("client-1", 5.0)
    assert 0.0 <= deterministic_jitter("client-1", 5.0) < 5.0
    assert deterministic_jitter("x", 0.0) == 0.0
    with pytest.raises(ValueError):
        deterministic_jitter("x", -1.0)


def test_halton_values_in_unit_interval():
    values = [halton(i) for i in range(20)]
    assert all(0.0 < v < 1.0 for v in values)
    assert len(set(values)) == len(values)
    with pytest.raises(ValueError):
        halton(-1)
    with pytest.raises(ValueError):
        halton(0, base=1)


def test_spread_points():
    assert spread_points(0, 0, 1) == []
    assert spread_points(1, 0, 10) == [5.0]
    points = spread_points(5, 0.0, 1.0)
    assert points[0] == 0.0 and points[-1] == 1.0
    assert points == sorted(points)
    with pytest.raises(ValueError):
        spread_points(-1, 0, 1)


def test_geometric_levels():
    levels = geometric_levels(4, 1.0, 8.0)
    assert levels[0] == pytest.approx(1.0)
    assert levels[-1] == pytest.approx(8.0)
    ratios = [levels[i + 1] / levels[i] for i in range(3)]
    assert all(math.isclose(r, 2.0) for r in ratios)
    assert geometric_levels(1, 4.0, 9.0) == [pytest.approx(6.0)]
    with pytest.raises(ValueError):
        geometric_levels(0, 1, 2)
    with pytest.raises(ValueError):
        geometric_levels(3, 0, 2)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_streams_are_reproducible_property(seed, name):
    """Property: a (seed, name) pair fully determines the stream."""
    first = RandomStream(seed, name)
    second = RandomStream(seed, name)
    assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]


def test_exponentials_batch_matches_sequential_draws():
    from repro.rng import RandomStream

    a = RandomStream(42, "batch")
    b = RandomStream(42, "batch")
    batched = a.exponentials(3.0, 10)
    sequential = [b.exponential(3.0) for _ in range(10)]
    assert batched == sequential
    # The stream state is identical afterwards too.
    assert a.exponential(3.0) == b.exponential(3.0)
    with pytest.raises(ValueError):
        a.exponentials(0.0, 3)
    with pytest.raises(ValueError):
        a.exponentials(1.0, -1)
