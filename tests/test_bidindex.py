"""Unit tests for the kinetic bid index and the shared selection contract.

The contract (see ``ThinnerBase._best_contender``): winner selection
maximises ``(peek_bid(now), -arrived_at, -seq)`` and eviction minimises
``(peek_bid(now), -arrived_at, seq)`` — the highest bidder wins with earlier
arrival winning ties, the lowest bidder is evicted with the *latest* arrival
losing ties, and among fully identical keys the earlier-inserted contender
is selected (the first-wins behaviour of the historical linear scans).
"""

from repro.constants import MBIT
from repro.core.auction import VirtualAuctionThinner
from repro.core.bidindex import COMPACT_MIN_HEAP, KineticBidIndex
from repro.core.frontend import Deployment, DeploymentConfig
from repro.clients.population import build_mixed_population
from repro.perf.counters import SimCounters
from repro.rng import RandomStream
from repro.simnet.topology import build_lan, uniform_bandwidths


# ---------------------------------------------------------------------------
# Lightweight stand-ins for contenders with linear bid trajectories
# ---------------------------------------------------------------------------


class FakeFlow:
    def __init__(self, rate_bps):
        self.rate_bps = rate_bps


class FakeChannel:
    """A channel whose balance follows ``base + slope * (t - t0)``."""

    def __init__(self, base, slope_bytes_per_s, t0=0.0):
        self.base = base
        self.slope = slope_bytes_per_s
        self.t0 = t0
        self._flow = FakeFlow(slope_bytes_per_s * 8.0) if slope_bytes_per_s else None

    def peek_balance(self, now):
        return self.base + self.slope * (now - self.t0)

    def payment_rate_bps(self):
        return self._flow.rate_bps if self._flow is not None else 0.0


class FakeRequest:
    def __init__(self, request_id):
        self.request_id = request_id


class FakeContender:
    def __init__(self, request_id, arrived_at, seq, channel=None):
        self.request = FakeRequest(request_id)
        self.arrived_at = arrived_at
        self.seq = seq
        self.channel = channel

    def peek_bid(self, now):
        if self.channel is None:
            return 0.0
        return self.channel.peek_balance(now)


def reference_best(contenders, now):
    """The historical linear scan (first max wins)."""
    best = None
    best_key = None
    for contender in contenders:
        key = (contender.peek_bid(now), -contender.arrived_at, -contender.seq)
        if best_key is None or key > best_key:
            best, best_key = contender, key
    return best


def reference_worst(contenders, now, exempt=None):
    worst = None
    worst_key = None
    for contender in contenders:
        if contender.request.request_id == exempt:
            continue
        key = (contender.peek_bid(now), -contender.arrived_at, contender.seq)
        if worst_key is None or key < worst_key:
            worst, worst_key = contender, key
    return worst


def make_index():
    return KineticBidIndex(SimCounters())


# ---------------------------------------------------------------------------
# The tie-break contract
# ---------------------------------------------------------------------------


def test_highest_bid_wins_and_lowest_is_evicted():
    index = make_index()
    low = FakeContender(1, arrived_at=0.5, seq=0, channel=FakeChannel(100.0, 0.0))
    high = FakeContender(2, arrived_at=1.0, seq=1, channel=FakeChannel(900.0, 0.0))
    index.add(low, now=1.0)
    index.add(high, now=1.0)
    assert index.best(2.0) is high
    assert index.worst(2.0) is low


def test_earlier_arrival_wins_bid_ties():
    index = make_index()
    late = FakeContender(1, arrived_at=2.0, seq=0)
    early = FakeContender(2, arrived_at=1.0, seq=1)
    index.add(late, now=2.0)
    index.add(early, now=2.0)
    # Both bid zero: the earlier arrival wins the auction and the *later*
    # arrival loses the eviction decision.
    assert index.best(3.0) is early
    assert index.worst(3.0) is late


def test_fully_identical_keys_fall_back_to_insertion_order():
    index = make_index()
    first = FakeContender(1, arrived_at=1.0, seq=0)
    second = FakeContender(2, arrived_at=1.0, seq=1)
    index.add(first, now=1.0)
    index.add(second, now=1.0)
    assert index.best(2.0) is first    # first max wins, as the scans did
    assert index.worst(2.0) is first   # first min wins likewise


def test_eviction_exempts_the_triggering_arrival():
    index = make_index()
    old = FakeContender(1, arrived_at=1.0, seq=0)
    newest = FakeContender(2, arrived_at=2.0, seq=1)
    index.add(old, now=2.0)
    index.add(newest, now=2.0)
    # Without the exemption the newest zero-bid arrival would be the victim.
    assert index.worst(3.0) is newest
    assert index.worst(3.0, exempt=2) is old
    # The exempt skip must not lose the entry for later queries.
    assert index.worst(3.0) is newest


def test_crossing_trajectories_change_the_winner_over_time():
    index = make_index()
    tortoise = FakeContender(1, 0.0, 0, FakeChannel(1000.0, 10.0))
    hare = FakeContender(2, 0.0, 1, FakeChannel(0.0, 500.0))
    index.add(tortoise, now=0.0)
    index.add(hare, now=0.0)
    assert index.best(1.0) is tortoise      # 1010 vs 500
    assert index.best(10.0) is hare         # 1100 vs 5000
    assert index.worst(10.0) is tortoise


def test_refresh_rekeys_after_trajectory_change():
    index = make_index()
    channel = FakeChannel(0.0, 100.0)
    paying = FakeContender(1, 0.0, 0, channel)
    rival = FakeContender(2, 0.0, 1, FakeChannel(50.0, 0.0))
    index.add(paying, now=0.0)
    index.add(rival, now=0.0)
    assert index.best(1.0) is paying  # 100 vs 50
    # The POST completes at t=1: balance freezes at 100 (slope drops to 0).
    channel.base, channel.slope, channel.t0, channel._flow = 100.0, 0.0, 1.0, None
    index.refresh(paying)
    assert index.best(5.0) is paying         # still 100 vs 50
    # A quantum win consumes the balance: now the rival leads.
    channel.base = 0.0
    index.refresh(paying)
    assert index.best(6.0) is rival
    # Deferred refreshes collapse: two marks, at most two re-keys counted.
    assert index.counters.bid_index_refreshes <= 2


def test_remove_discards_entry_and_empty_groups_are_dropped():
    index = make_index()
    contenders = [
        FakeContender(i, float(i), i, FakeChannel(10.0 * i, float(i)))
        for i in range(1, 6)
    ]
    for contender in contenders:
        index.add(contender, now=0.0)
    assert len(index) == 5
    for contender in contenders[:4]:
        index.remove(contender.request.request_id)
    assert len(index) == 1
    assert index.best(1.0) is contenders[4]
    # Queries prune groups left empty by removals.
    assert index.group_count == 1


def test_compaction_keeps_heaps_bounded():
    index = make_index()
    keep = FakeContender(0, 0.0, 0, FakeChannel(1.0, 7.0))
    index.add(keep, now=0.0)
    for round_id in range(3):
        for i in range(1, 2 * COMPACT_MIN_HEAP):
            contender = FakeContender(
                10_000 * round_id + i, float(i), i, FakeChannel(float(i), 7.0)
            )
            index.add(contender, now=0.0)
            index.remove(contender.request.request_id)
    group = index._groups[7.0]
    assert group.live == 1
    assert len(group._best) < COMPACT_MIN_HEAP
    assert index.best(1.0) is keep


def test_randomized_equivalence_with_reference_scan():
    """Interleaved adds/refreshes/removals/queries match the linear scan."""
    rng = RandomStream(1234, "bidindex-test")
    index = make_index()
    live = {}
    next_id = [0]

    def spawn(now):
        next_id[0] += 1
        rid = next_id[0]
        slope = rng.choice([0.0, 0.0, 125.0, 250.0, 1000.0])
        base = rng.choice([0.0, 10.0, 500.0, 1e6]) + rng.uniform(0.0, 5.0)
        contender = FakeContender(
            rid, arrived_at=now, seq=rid, channel=FakeChannel(base, slope, t0=now)
        )
        live[rid] = contender
        index.add(contender, now)

    now = 0.0
    for step in range(600):
        now += rng.uniform(0.0, 0.3)
        action = rng.random()
        if action < 0.4 or not live:
            spawn(now)
        elif action < 0.55:
            rid = rng.choice(sorted(live))
            contender = live[rid]
            channel = contender.channel
            channel.base = channel.peek_balance(now)
            channel.t0 = now
            channel.slope = rng.choice([0.0, 125.0, 250.0, 1000.0])
            channel._flow = FakeFlow(channel.slope * 8.0) if channel.slope else None
            index.refresh(contender)
        elif action < 0.7:
            rid = rng.choice(sorted(live))
            del live[rid]
            index.remove(rid)
        elif action < 0.85:
            assert index.best(now) is reference_best(live.values(), now)
        else:
            exempt = rng.choice(sorted(live)) if rng.random() < 0.5 else None
            assert index.worst(now, exempt) is reference_worst(
                live.values(), now, exempt
            )
    assert index.best(now) is reference_best(live.values(), now)


# ---------------------------------------------------------------------------
# End-to-end exactness: every auction of a real run checked against a scan
# ---------------------------------------------------------------------------


class CheckedAuctionThinner(VirtualAuctionThinner):
    """Asserts each indexed winner equals the historical linear scan's."""

    picks_checked = 0

    def _pick_winner(self):
        winner = super()._pick_winner()
        expected = reference_best(self._contenders.values(), self.engine.now)
        assert winner is expected
        type(self).picks_checked += 1
        return winner


def test_real_run_winners_match_linear_scan():
    CheckedAuctionThinner.picks_checked = 0
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(8, 2 * MBIT))
    config = DeploymentConfig(server_capacity_rps=15.0, seed=7)
    deployment = Deployment(
        topology,
        thinner_host,
        config,
        thinner_factory=lambda dep: CheckedAuctionThinner(
            engine=dep.engine,
            network=dep.network,
            server=dep.server,
            host=dep.thinner_host,
        ),
    )
    build_mixed_population(deployment, hosts, 4, 4)
    deployment.run(12.0)
    assert CheckedAuctionThinner.picks_checked > 50
    # The whole point: selection cost per auction is far below O(n) — in
    # this steady state the index touches a handful of slope groups.
    counters = deployment.network.counters
    assert counters.auctions_held > 0
    scanned_per_auction = counters.contenders_scanned / counters.auctions_held
    assert scanned_per_auction < 16.0
    assert counters.bid_index_refreshes > 0


def test_sub_linear_scanning_at_scale():
    """contenders_scanned per auction stays O(log n)-ish as n grows 4x."""
    from repro.scenarios.registry import build_scenario

    def scan_cost(bad_clients):
        spec = build_scenario(
            "thinner-mega",
            good_clients=0,
            flash_clients=0,
            bad_clients=bad_clients,
            bad_rate=40.0,
            bad_window=8,
            capacity_rps=40.0,
            duration=2.0,
        )
        deployment = spec.build()
        deployment.run(spec.duration)
        counters = deployment.network.counters
        contenders = deployment.thinner.contending_count
        assert counters.auctions_held > 20
        return counters.contenders_scanned / counters.auctions_held, contenders

    small_cost, small_n = scan_cost(40)
    large_cost, large_n = scan_cost(160)
    assert large_n >= 3.5 * small_n          # the contender set really grew
    # O(n) scanning would grow the per-auction cost ~4x; the kinetic index
    # keeps it within log-ish slack of the small run and far below n.
    assert large_cost < 2.0 * small_cost + 10.0
    assert large_cost < 0.25 * large_n
