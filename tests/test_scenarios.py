"""The declarative scenario subsystem: specs, registry, and arrival shapes."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import LanScenario, run_lan_scenario
from repro.scenarios import (
    ArrivalSpec,
    GroupSpec,
    ScenarioSpec,
    TopologySpec,
    build_scenario,
    scenario_description,
    scenario_names,
)

#: Small-scale factory arguments so every registry scenario runs in a test.
SMALL_SCENARIO_KWARGS = {
    "lan-baseline": dict(good_clients=2, bad_clients=2, capacity_rps=10.0, duration=6.0),
    "bandwidth-tiers": dict(clients_per_category=1, capacity_rps=5.0, duration=6.0),
    "rtt-tiers": dict(clients_per_category=1, capacity_rps=5.0, duration=6.0),
    "shared-bottleneck": dict(
        good_behind=2, bad_behind=2, direct_good=1, direct_bad=1,
        capacity_rps=10.0, duration=6.0,
    ),
    "cross-traffic": dict(speakup_clients=4, duration=6.0),
    "flash-crowd": dict(good_clients=2, bad_clients=2, capacity_rps=10.0, duration=9.0),
    "pulsed-attack": dict(
        good_clients=2, bad_clients=2, capacity_rps=10.0, duration=9.0,
        pulse_period_s=3.0, pulse_on_s=1.5,
    ),
    "diurnal-demand": dict(good_clients=2, bad_clients=2, capacity_rps=10.0, duration=9.0),
    "adaptive-pulse": dict(good_clients=2, bad_clients=2, capacity_rps=10.0,
                           bad_window=4, duration=12.0),
    "layered-lan": dict(good_clients=2, bad_clients=2, capacity_rps=10.0,
                        duration=6.0),
    "uplink-tiers": dict(clients_per_tier=2, capacity_rps=10.0, duration=6.0),
    "fleet-lan": dict(good_clients=3, bad_clients=3, thinner_shards=2,
                      capacity_rps=10.0, duration=6.0),
    "fleet-failover": dict(good_clients=3, bad_clients=3, thinner_shards=2,
                           kill_shard=1, kill_at_s=2.0, heal_at_s=4.0,
                           repin_ttl_s=0.5, capacity_rps=10.0, duration=6.0),
    "fleet-mega": dict(good_clients=4, bad_clients=2, thinner_shards=2,
                       bad_rate=8.0, bad_window=3, capacity_rps=10.0,
                       duration=6.0),
    "stress-mega": dict(good_clients=4, bad_clients=2, bad_window=2,
                        capacity_rps=10.0, duration=6.0),
    "thinner-mega": dict(good_clients=3, flash_clients=2, bad_clients=2,
                         bad_rate=8.0, bad_window=3, capacity_rps=10.0,
                         duration=6.0),
    "soa-mega": dict(good_clients=3, bad_clients=3, good_rate=2.0,
                     bad_rate=8.0, bad_window=2, capacity_rps=10.0,
                     duration=6.0),
    "rollup-mega": dict(good_clients=3, bad_clients=3, good_rate=2.0,
                        bad_rate=8.0, bad_window=2, capacity_rps=10.0,
                        reservoir=64, bucket_s=0.5, duration=6.0),
    "fleet-brownout": dict(good_clients=3, bad_clients=3, thinner_shards=2,
                           fault="stall", fault_shard=1, start_at_s=2.0,
                           end_at_s=4.0, retry="budgeted", health_probe=True,
                           capacity_rps=10.0, duration=6.0),
    "fabric-mega": dict(good_clients=4, bad_clients=2, thinner_shards=2,
                        fabric="leaf-spine", leaves=2, spines=2,
                        cross_traffic_pairs=1, bad_rate=8.0, bad_window=3,
                        capacity_rps=10.0, duration=6.0),
}


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------


def _small_lan_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="test-lan",
        groups=(
            GroupSpec(count=2, client_class="good"),
            GroupSpec(count=2, client_class="bad"),
        ),
        capacity_rps=10.0,
        duration=6.0,
        seed=3,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def test_spec_json_round_trip():
    spec = ScenarioSpec(
        name="round-trip",
        topology=TopologySpec(kind="bottleneck", bottleneck_bandwidth_bps=8e6),
        groups=(
            GroupSpec(count=3, client_class="good", behind_bottleneck=True,
                      category="behind"),
            GroupSpec(count=2, client_class="bad", window=7,
                      arrival=ArrivalSpec(kind="onoff", period_s=4.0, on_s=1.0)),
        ),
        capacity_rps=25.0,
        defense="retry",
        duration=30.0,
        seed=11,
        config_overrides=(("model_slow_start", False),),
    )
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_spec_round_trips_retry_policy_and_health_probe():
    from repro.clients.base import RetryPolicy
    from repro.core.fleet import HealthProbeSpec

    spec = _small_lan_spec(
        retry_policy=RetryPolicy.budgeted(),
        groups=(
            GroupSpec(count=2, client_class="good",
                      retry_policy=RetryPolicy.naive(max_attempts=3)),
            GroupSpec(count=2, client_class="bad"),
        ),
    )
    restored = ScenarioSpec.from_json(spec.to_json())
    assert restored == spec
    assert restored.groups[0].retry_policy == RetryPolicy.naive(max_attempts=3)
    # A group without its own policy serialises without the key at all, so
    # pre-retry spec dicts and new ones stay byte-compatible.
    payload = spec.to_dict()
    assert "retry_policy" in payload["groups"][0]
    assert "retry_policy" not in payload["groups"][1]

    fleet = _small_lan_spec(
        topology=TopologySpec(kind="lan"),
        health_probe=HealthProbeSpec(eject_fraction=0.25),
        thinner_shards=2,
    )
    assert ScenarioSpec.from_json(fleet.to_json()) == fleet


def test_health_probe_needs_a_real_fleet():
    from repro.core.fleet import HealthProbeSpec

    spec = _small_lan_spec(health_probe=HealthProbeSpec())  # one shard
    with pytest.raises(ExperimentError, match="thinner_shards"):
        spec.validate()
    with pytest.raises(ExperimentError):
        _small_lan_spec(
            health_probe=HealthProbeSpec(alpha=2.0), thinner_shards=2
        ).validate()


def test_retry_policy_fields_are_sweepable():
    from repro.clients.base import RetryPolicy

    spec = _small_lan_spec(retry_policy=RetryPolicy.budgeted())
    swept = spec.with_value("retry_policy.budget", 5.0)
    assert swept.retry_policy.budget == 5.0
    assert spec.retry_policy.budget != 5.0  # original untouched


def test_spec_from_dict_accepts_mapping_overrides():
    spec = ScenarioSpec.from_dict({
        "groups": [{"count": 1}],
        "config_overrides": {"model_slow_start": False},
    })
    assert spec.config_overrides == (("model_slow_start", False),)
    assert spec.groups[0] == GroupSpec(count=1)


def test_spec_validation_rejects_nonsense():
    with pytest.raises(ExperimentError):
        _small_lan_spec(capacity_rps=0.0).validate()
    with pytest.raises(ExperimentError):
        _small_lan_spec(duration=-1.0).validate()
    with pytest.raises(ExperimentError):
        _small_lan_spec(defense="firewall").validate()
    with pytest.raises(ExperimentError):
        _small_lan_spec(groups=()).validate()  # no clients on a LAN
    with pytest.raises(ExperimentError):
        # behind_bottleneck needs a bottleneck topology
        _small_lan_spec(
            groups=(GroupSpec(count=1, behind_bottleneck=True),)
        ).validate()
    with pytest.raises(ExperimentError):
        TopologySpec(kind="ring").validate()
    with pytest.raises(ExperimentError):
        TopologySpec(kind="bottleneck").validate()  # missing bottleneck bandwidth
    with pytest.raises(ExperimentError):
        ArrivalSpec(kind="bursty").validate()
    with pytest.raises(ExperimentError):
        ArrivalSpec(kind="onoff", period_s=0.0, on_s=1.0).validate()


def test_with_value_replaces_nested_fields():
    spec = _small_lan_spec()
    assert spec.with_value("capacity_rps", 40.0).capacity_rps == 40.0
    assert spec.with_value("groups.1.window", 9).groups[1].window == 9
    assert spec.with_value("topology.lan_delay_s", 0.002).topology.lan_delay_s == 0.002
    # The original is untouched (specs are frozen values).
    assert spec.groups[1].window is None
    with pytest.raises(ExperimentError):
        spec.with_value("groups.9.window", 1)
    with pytest.raises(ExperimentError):
        spec.with_value("groups.x.window", 1)
    with pytest.raises(ExperimentError):
        spec.with_value("no_such_field", 1)


def test_spec_run_matches_lan_scenario_facade():
    lan = LanScenario(good_clients=2, bad_clients=2, capacity_rps=10.0,
                      duration=6.0, seed=5)
    via_facade = run_lan_scenario(lan)
    via_spec = lan.to_spec().run()
    assert via_facade.to_dict() == via_spec.to_dict()


def test_build_produces_expected_population():
    deployment = _small_lan_spec().build()
    assert len(deployment.good_clients) == 2
    assert len(deployment.bad_clients) == 2


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_registry_covers_every_scenario_in_small_kwargs():
    assert set(scenario_names()) == set(SMALL_SCENARIO_KWARGS)


@pytest.mark.parametrize("name", sorted(SMALL_SCENARIO_KWARGS))
def test_registry_scenario_builds_and_runs(name):
    spec = build_scenario(name, **SMALL_SCENARIO_KWARGS[name])
    assert spec.name == name
    assert scenario_description(name)
    # JSON round trip holds for every registered scenario.
    from repro.scenarios import ScenarioSpec as Spec
    assert Spec.from_json(spec.to_json()) == spec
    result = spec.run()
    assert result.duration == spec.duration
    assert result.total_served >= 0


def test_registry_rejects_unknown_names_and_arguments():
    with pytest.raises(ExperimentError):
        build_scenario("no-such-scenario")
    with pytest.raises(ExperimentError):
        build_scenario("lan-baseline", not_an_argument=1)


# ---------------------------------------------------------------------------
# Arrival shapes
# ---------------------------------------------------------------------------


def test_arrival_modulator_shapes():
    onoff = ArrivalSpec(kind="onoff", period_s=10.0, on_s=4.0).modulator()
    assert onoff(0.0) == 1.0 and onoff(3.9) == 1.0
    assert onoff(5.0) == 0.0 and onoff(13.0) == 1.0

    flash = ArrivalSpec(kind="flash", start_s=10.0, ramp_s=4.0, floor=0.1).modulator()
    assert flash(0.0) == pytest.approx(0.1)
    assert flash(12.0) == pytest.approx(0.55)
    assert flash(20.0) == 1.0

    diurnal = ArrivalSpec(kind="diurnal", period_s=20.0, floor=0.2).modulator()
    assert diurnal(0.0) == pytest.approx(0.2)      # trough
    assert diurnal(10.0) == pytest.approx(1.0)     # peak mid-period
    assert diurnal(20.0) == pytest.approx(0.2)     # next trough

    assert ArrivalSpec().modulator() is None


def test_pulsed_attackers_issue_less_than_steady_ones():
    steady = build_scenario("lan-baseline", good_clients=2, bad_clients=2,
                            capacity_rps=10.0, duration=12.0).run()
    pulsed = build_scenario("pulsed-attack", good_clients=2, bad_clients=2,
                            capacity_rps=10.0, duration=12.0,
                            pulse_period_s=4.0, pulse_on_s=2.0).run()
    # A 50% duty cycle roughly halves the attack's issued requests.
    assert pulsed.bad.issued < 0.75 * steady.bad.issued
    assert pulsed.good.issued == steady.good.issued


def test_flash_crowd_good_demand_is_back_loaded():
    flash = build_scenario("flash-crowd", good_clients=3, bad_clients=2,
                           capacity_rps=10.0, duration=12.0,
                           flash_start_s=8.0, flash_ramp_s=1.0,
                           baseline_fraction=0.0).run()
    steady = build_scenario("lan-baseline", good_clients=3, bad_clients=2,
                            capacity_rps=10.0, duration=12.0).run()
    # Before the flash no good requests exist, so issuance is well below steady.
    assert 0 < flash.good.issued < 0.7 * steady.good.issued


def test_freeze_overrides_rejects_malformed_input():
    from repro.scenarios import freeze_overrides

    assert freeze_overrides(None) == ()
    assert freeze_overrides({"b": 2, "a": 1}) == (("a", 1), ("b", 2))
    assert freeze_overrides([("a", 1)]) == (("a", 1),)
    for bad in ("foo", 7, ["ab"], [("a", 1, 2)], [3]):
        with pytest.raises(ExperimentError):
            freeze_overrides(bad)
