"""Tests for summaries, the run collector, and table rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.collector import collect
from repro.metrics.summary import (
    confidence_interval,
    mean,
    percentile,
    ratio,
    stddev,
    summarise,
)
from repro.metrics.tables import format_comparison, format_row, format_table
from tests.conftest import make_deployment


# -- summary helpers -------------------------------------------------------------

def test_mean_std_percentile_basics():
    values = [1.0, 2.0, 3.0, 4.0]
    assert mean(values) == pytest.approx(2.5)
    assert stddev(values) == pytest.approx(1.29099, rel=1e-4)
    assert percentile(values, 0.5) == 2.0
    assert percentile(values, 1.0) == 4.0
    assert mean([]) == 0.0
    assert stddev([5.0]) == 0.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 2.0)


def test_confidence_interval_and_ratio():
    assert confidence_interval([1.0]) == 0.0
    assert confidence_interval([1.0, 2.0, 3.0]) > 0.0
    assert ratio(1, 2) == 0.5
    assert ratio(1, 0, default=7.0) == 7.0


def test_summarise_fields():
    summary = summarise([3.0, 1.0, 2.0])
    assert summary.count == 3
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert summary.p50 == 2.0
    assert summary.as_dict()["mean"] == pytest.approx(2.0)
    empty = summarise([])
    assert empty.count == 0 and empty.mean == 0.0


def test_percentile_empty_input_policy():
    # Historical contract: empty input yields 0.0 by default ...
    assert percentile([], 0.999) == 0.0
    # ... and callers that must distinguish "no samples" pass empty=None.
    assert percentile([], 0.999, empty=None) is None
    assert percentile([], 0.5, empty=-1.0) == -1.0
    # Non-empty input ignores the empty policy entirely.
    assert percentile([7.0], 0.5, empty=None) == 7.0


def test_percentile_p999_needs_a_thousand_samples_to_leave_the_max():
    values = [float(i) for i in range(100)]
    # Below 1000 samples nearest-rank p99.9 is pinned to the maximum.
    assert percentile(values, 0.999) == 99.0
    big = [float(i) for i in range(2000)]
    assert percentile(big, 0.999) == 1997.0  # ceil(0.999*2000)-1


def test_summarise_extended_fills_p999():
    summary = summarise([1.0, 2.0, 3.0])
    assert summary.p999 is None
    assert "p999" not in summary.as_dict()
    extended = summarise([1.0, 2.0, 3.0], extended=True)
    assert extended.p999 == 3.0
    assert extended.as_dict()["p999"] == 3.0
    round_tripped = type(extended).from_dict(extended.as_dict())
    assert round_tripped == extended
    assert summarise([], extended=True).p999 == 0.0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_percentiles_bracket_the_data(values):
    summary = summarise(values)
    assert summary.minimum <= summary.p50 <= summary.maximum
    assert summary.minimum <= summary.p90 <= summary.maximum
    # The mean is computed by summation, so allow a few ulps of slack.
    slack = 1e-9 * max(1.0, abs(summary.minimum), abs(summary.maximum))
    assert summary.minimum - slack <= summary.mean <= summary.maximum + slack


# -- tables ------------------------------------------------------------------------

def test_format_table_alignment_and_types():
    text = format_table(
        headers=["name", "value"],
        rows=[("alpha", 1.23456), ("beta", None), ("gamma", 7)],
        precision=2,
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.23" in text and "-" in text and "7" in text


def test_format_row_and_comparison():
    assert "1.500" in format_row([1.5], [8])
    line = format_comparison("allocation", 0.5, 0.471)
    assert "paper=0.500" in line and "measured=0.471" in line


# -- collector ----------------------------------------------------------------------

def test_collector_produces_consistent_run_result():
    deployment, result = make_deployment(good=3, bad=3, capacity=12.0, duration=12.0)
    assert result.duration == pytest.approx(12.0)
    assert result.defense == "speakup"
    # Allocations over classes sum to one when anything was served.
    total_allocation = sum(result.allocation_by_class.values())
    assert total_allocation == pytest.approx(1.0)
    # Ideal allocation reflects the 50/50 bandwidth split.
    assert result.ideal_good_allocation == pytest.approx(0.5)
    # Served counts match the server's view.
    assert result.good.served + result.bad.served == result.total_served
    # Utilisation of an overloaded server should be essentially full.
    assert result.server_utilisation > 0.8
    # The flat dictionary exposes the headline numbers.
    flat = result.as_dict()
    assert flat["good_allocation"] == pytest.approx(result.good_allocation)
    assert flat["capacity_rps"] == pytest.approx(12.0)


def test_collector_class_metrics_fields():
    deployment, result = make_deployment(good=2, bad=2, capacity=8.0, duration=10.0)
    good = result.good
    assert good.clients == 2
    assert good.aggregate_bandwidth_bps == deployment.aggregate_bandwidth_bps("good")
    assert 0.0 <= good.served_fraction <= 1.0
    assert 0.0 <= good.demand_served_fraction <= 1.0
    assert good.finished <= good.issued


def test_collector_category_breakdown():
    from repro.clients.good import GoodClient
    from repro.core.frontend import Deployment, DeploymentConfig
    from repro.constants import MBIT
    from repro.simnet.topology import build_lan, uniform_bandwidths

    topology, hosts, thinner_host = build_lan(uniform_bandwidths(4, 2 * MBIT))
    deployment = Deployment(topology, thinner_host,
                            DeploymentConfig(server_capacity_rps=4.0, seed=0))
    for index, host in enumerate(hosts):
        GoodClient(deployment, host, category="odd" if index % 2 else "even")
    deployment.run(10.0)
    result = collect(deployment)
    assert set(result.allocation_by_category) <= {"odd", "even"}
    assert sum(result.allocation_by_category.values()) == pytest.approx(1.0)
    for fraction in result.served_fraction_by_category.values():
        assert 0.0 <= fraction <= 1.0


def test_run_result_round_trips_through_json():
    from repro import quick_demo
    from repro.metrics.collector import RunResult

    result = quick_demo(good_clients=2, bad_clients=2, capacity_rps=8.0,
                        duration=6.0, seed=4)
    restored = RunResult.from_json(result.to_json())
    assert restored.to_dict() == result.to_dict()
    # Derived headline numbers survive the round trip too.
    assert restored.good_allocation == result.good_allocation
    assert restored.good.served_fraction == result.good.served_fraction
    assert restored.good.payment_time.p90 == result.good.payment_time.p90


def test_class_metrics_round_trip_defaults_missing_fields():
    from repro.metrics.collector import ClassMetrics

    metrics = ClassMetrics.from_dict({"client_class": "good"})
    assert metrics.served == 0
    assert metrics.payment_time.count == 0
