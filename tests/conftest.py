"""Shared fixtures for the test suite.

Most tests build tiny deployments (a handful of clients, a few simulated
seconds) so the whole suite stays fast while still exercising the real
machinery end to end.
"""

from __future__ import annotations

import pytest

from repro.clients.population import build_mixed_population
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.simnet.engine import Engine
from repro.simnet.network import FluidNetwork
from repro.simnet.topology import build_lan, uniform_bandwidths


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: randomized property tests (run with -m slow; excluded from the "
        "fast CI test job)",
    )


@pytest.fixture
def engine() -> Engine:
    """A fresh simulation engine."""
    return Engine()


@pytest.fixture
def small_lan():
    """A 4-client LAN topology: (topology, client_hosts, thinner_host)."""
    return build_lan(uniform_bandwidths(4, 2 * MBIT))


@pytest.fixture
def network(engine, small_lan) -> FluidNetwork:
    """A fluid network over the small LAN."""
    topology, _clients, _thinner = small_lan
    return FluidNetwork(engine, topology)


def make_deployment(
    good: int = 3,
    bad: int = 3,
    capacity: float = 12.0,
    defense: str = "speakup",
    duration: float = 10.0,
    seed: int = 0,
    client_bandwidth: float = 2 * MBIT,
    **config_kwargs,
):
    """Build, populate and run a small deployment; returns (deployment, result)."""
    topology, hosts, thinner_host = build_lan(
        uniform_bandwidths(good + bad, client_bandwidth)
    )
    config = DeploymentConfig(
        server_capacity_rps=capacity, defense=defense, seed=seed, **config_kwargs
    )
    deployment = Deployment(topology, thinner_host, config)
    build_mixed_population(deployment, hosts, good, bad)
    deployment.run(duration)
    return deployment, deployment.results()


@pytest.fixture
def small_attack_run():
    """A small speak-up run under attack: (deployment, result)."""
    return make_deployment()
