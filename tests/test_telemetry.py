"""The streaming telemetry plane: specs, collectors, and full-mode parity."""

import json

import pytest

from repro.errors import ExperimentError
from repro.rng import RandomStream
from repro.scenarios import build_scenario
from repro.scenarios.runner import Sweep, SweepRunner
from repro.telemetry import (
    P2Quantile,
    ReservoirSampler,
    StreamAccumulator,
    StreamingPriceBook,
    TelemetrySpec,
    TimeBuckets,
)


def _rng(seed: int = 42) -> RandomStream:
    return RandomStream(seed, "telemetry-test")


def _rollup_spec(**kwargs):
    spec = build_scenario(
        "lan-baseline", good_clients=4, bad_clients=4,
        capacity_rps=20.0, duration=6.0, **kwargs,
    )
    return spec.with_value("telemetry", TelemetrySpec(mode="rollup", reservoir=256))


# ---------------------------------------------------------------------------
# TelemetrySpec
# ---------------------------------------------------------------------------


def test_spec_validates_and_round_trips():
    spec = TelemetrySpec(mode="rollup", reservoir=64, bucket_s=0.5, max_buckets=128)
    spec.validate()
    assert TelemetrySpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ExperimentError):
        TelemetrySpec(mode="wat").validate()
    with pytest.raises(ExperimentError):
        TelemetrySpec(reservoir=0).validate()
    with pytest.raises(ExperimentError):
        TelemetrySpec.from_dict({"mode": "rollup", "nope": 1})


def test_spec_is_omitted_from_scenario_json_when_unset():
    base = build_scenario("lan-baseline", good_clients=2, bad_clients=2)
    assert "telemetry" not in base.to_dict()
    rollup = base.with_value("telemetry", TelemetrySpec())
    stored = rollup.to_dict()
    assert stored["telemetry"]["mode"] == "rollup"
    assert type(base).from_dict(stored).telemetry == TelemetrySpec()


def test_footprint_budget_scales_with_buckets_not_requests():
    spec = TelemetrySpec(reservoir=128, bucket_s=1.0, max_buckets=64)
    short = spec.footprint_budget(duration=10.0)
    long = spec.footprint_budget(duration=1e6)  # capped by max_buckets
    assert short <= long
    assert long == spec.footprint_budget(duration=64.0)


# ---------------------------------------------------------------------------
# Collector primitives
# ---------------------------------------------------------------------------


def test_reservoir_same_seed_same_sample():
    values = [float(i) for i in range(10_000)]
    first = ReservoirSampler(64, _rng())
    second = ReservoirSampler(64, _rng())
    for value in values:
        first.add(value)
        second.add(value)
    assert first.samples == second.samples
    assert len(first) == 64
    assert first.count == 10_000
    assert set(first.samples) <= set(values)


def test_reservoir_keeps_everything_below_capacity():
    sampler = ReservoirSampler(16, _rng())
    for value in (3.0, 1.0, 2.0):
        sampler.add(value)
    assert sampler.samples == [3.0, 1.0, 2.0]


def test_p2_exact_below_five_observations():
    q = P2Quantile(0.5)
    for value in (5.0, 1.0, 3.0):
        q.add(value)
    assert q.value() == 3.0
    assert P2Quantile(0.5).value() == 0.0


def test_p2_converges_on_uniform_stream():
    rng = _rng(7)
    q50, q99 = P2Quantile(0.5), P2Quantile(0.99)
    for _ in range(20_000):
        value = rng.uniform(0.0, 1.0)
        q50.add(value)
        q99.add(value)
    assert q50.value() == pytest.approx(0.5, abs=0.05)
    assert q99.value() == pytest.approx(0.99, abs=0.05)


def test_stream_accumulator_moments_are_exact():
    values = [0.5, 1.5, 2.0, 8.0, 0.25]
    acc = StreamAccumulator(8, _rng())
    for value in values:
        acc.add(value)
    summary = acc.summary()
    assert summary.count == len(values)
    assert summary.mean == pytest.approx(sum(values) / len(values), rel=1e-12)
    assert summary.minimum == min(values)
    assert summary.maximum == max(values)
    # Below capacity the reservoir holds everything: percentiles are exact.
    assert summary.p50 == 1.5
    assert summary.p999 == 8.0
    empty = StreamAccumulator(8, _rng()).summary()
    assert empty.count == 0 and empty.mean == 0.0 and empty.p999 == 0.0


def test_time_buckets_fold_overflow_into_last_bucket():
    buckets = TimeBuckets(bucket_s=1.0, max_buckets=4)
    for now in (0.5, 1.5, 2.5, 3.5, 9.5, 99.5):
        buckets.add(now, 1.0)
    rows = buckets.rows()
    assert len(rows) == 4
    # Everything past the cap folded into the highest open bucket.
    assert rows[-1][1] == 3  # count of the folded bucket
    assert sum(row[1] for row in rows) == 6


def test_streaming_price_book_matches_exact_book_queries():
    from repro.core.pricing import PriceBook

    exact, streaming = PriceBook(), StreamingPriceBook(256, _rng())
    rng = _rng(3)
    for i in range(500):
        price = rng.uniform(0.0, 100.0)
        cls = "good" if i % 3 else "bad"
        for book in (exact, streaming):
            book.record(
                time=i * 0.01, price_bytes=price, client_class=cls,
                request_id=i,
            )
    assert len(streaming) == len(exact)
    assert streaming.going_rate() == exact.going_rate()
    assert streaming.free_admissions() == exact.free_admissions()
    assert streaming.average("good") == pytest.approx(exact.average("good"), rel=1e-9)
    assert streaming.average_by_class() == pytest.approx(
        exact.average_by_class(), rel=1e-9
    )
    merged = StreamingPriceBook.merged([streaming, StreamingPriceBook(256, _rng(9))])
    assert merged.total_revenue_bytes() == pytest.approx(
        streaming.total_revenue_bytes(), rel=1e-12
    )


# ---------------------------------------------------------------------------
# End-to-end parity
# ---------------------------------------------------------------------------


def test_full_mode_is_byte_identical_to_no_spec():
    base = build_scenario(
        "lan-baseline", good_clients=4, bad_clients=4,
        capacity_rps=20.0, duration=6.0,
    )
    plain = base.run().to_dict()
    full = base.with_value("telemetry", TelemetrySpec(mode="full")).run().to_dict()
    assert json.dumps(plain, sort_keys=True) == json.dumps(full, sort_keys=True)


def test_rollup_matches_full_within_tolerance():
    base = build_scenario(
        "lan-baseline", good_clients=4, bad_clients=4,
        capacity_rps=20.0, duration=6.0,
    )
    full = base.run()
    rollup = _rollup_spec().run()
    for cls in ("good", "bad"):
        f, r = getattr(full, cls), getattr(rollup, cls)
        # Counts are exact: telemetry never changes what was served.
        assert (f.issued, f.served, f.denied) == (r.issued, r.served, r.denied)
        assert r.payment_time.count == f.payment_time.count
        # Moments are exact (Welford vs summation differ only in rounding).
        assert r.payment_time.mean == pytest.approx(f.payment_time.mean, rel=1e-9)
        # Below the reservoir capacity the percentiles are exact too.
        if r.payment_time.count <= 256:
            assert r.payment_time.p50 == f.payment_time.p50
            assert r.payment_time.p99 == f.payment_time.p99
    assert rollup.free_admissions == full.free_admissions
    for cls, price in full.mean_price_by_class.items():
        assert rollup.mean_price_by_class[cls] == pytest.approx(price, rel=1e-9)
    # The rollup result carries its sketch; the full result does not.
    assert rollup.telemetry is not None and full.telemetry is None
    assert rollup.telemetry.mode == "rollup"
    stored = rollup.to_dict()
    assert "telemetry" in stored
    rebuilt = type(rollup).from_dict(stored)
    assert rebuilt.telemetry.to_dict() == rollup.telemetry.to_dict()


def test_rollup_is_deterministic_across_process_boundaries():
    """Same seed => same reservoir sample, whether run in-process or in a pool."""
    sweep = Sweep(_rollup_spec(), axes={"seed": (1, 2)})
    serial = SweepRunner(jobs=1).run(sweep)
    parallel = SweepRunner(jobs=2).run(sweep)
    for a, b in zip(serial, parallel):
        assert json.dumps(a.result.to_dict(), sort_keys=True) == json.dumps(
            b.result.to_dict(), sort_keys=True
        )


def test_collector_footprint_stays_within_budget_and_gauges_tick():
    spec = _rollup_spec()
    deployment = spec.build()
    deployment.run(spec.duration)
    telemetry = deployment.telemetry
    assert telemetry is not None
    budget = spec.telemetry.footprint_budget(spec.duration)
    assert telemetry.footprint_records() <= budget
    counters = deployment.network.counters
    assert counters.records_emitted == telemetry.samples_recorded > 0
    assert counters.peak_live_events > 0
    snapshot = counters.snapshot()
    assert "records_emitted" in snapshot and "peak_live_events" in snapshot


def test_full_mode_emits_no_rollup_records():
    spec = build_scenario(
        "lan-baseline", good_clients=3, bad_clients=3,
        capacity_rps=15.0, duration=4.0,
    )
    deployment = spec.build()
    deployment.run(spec.duration)
    assert deployment.telemetry is None
    assert deployment.network.counters.records_emitted == 0
    assert deployment.network.counters.peak_live_events > 0


@pytest.mark.slow
def test_mega_rollup_run_stays_within_memory_budget():
    """The acceptance headline at reduced-but-large scale: a 500k-client
    rollup run's collector footprint is O(buckets + reservoir)."""
    spec = build_scenario("rollup-mega", duration=0.02)
    assert spec.total_clients() >= 500_000
    deployment = spec.build()
    deployment.run(spec.duration)
    telemetry = deployment.telemetry
    budget = spec.telemetry.footprint_budget(spec.duration)
    assert telemetry.footprint_records() <= budget
    # The budget is a few thousand records — nothing like 500k clients.
    assert budget < 50_000
