"""Tests for request/response message types."""

import pytest

from repro.httpd.messages import (
    PaymentPost,
    Request,
    RequestState,
    Response,
    new_request,
    reset_request_ids,
)


def test_new_request_assigns_unique_ids():
    first = new_request("client-a", issued_at=0.0)
    second = new_request("client-a", issued_at=0.0)
    assert first.request_id != second.request_id


def test_reset_request_ids_restarts_counter():
    reset_request_ids()
    assert new_request("c", issued_at=0.0).request_id == 1
    assert new_request("c", issued_at=0.0).request_id == 2
    reset_request_ids()
    assert new_request("c", issued_at=0.0).request_id == 1


def test_requests_compare_by_identity():
    reset_request_ids()
    a = new_request("c", issued_at=0.0)
    b = new_request("c", issued_at=0.0)
    assert a != b
    assert a == a
    assert len({a, b}) == 2


def test_lifecycle_predicates():
    request = new_request("c", issued_at=1.0)
    assert not request.was_served
    assert not request.was_denied
    assert not request.is_outstanding
    request.state = RequestState.CONTENDING
    assert request.is_outstanding
    request.state = RequestState.SERVED
    assert request.was_served
    request.state = RequestState.DROPPED
    assert request.was_denied


def test_timing_helpers():
    request = new_request("c", issued_at=1.0)
    assert request.payment_time() is None
    assert request.response_time() is None
    assert request.waiting_time() is None
    request.arrived_at = 1.2
    request.encouraged_at = 1.3
    request.admitted_at = 4.3
    request.completed_at = 4.5
    assert request.payment_time() == pytest.approx(3.0)
    assert request.waiting_time() == pytest.approx(3.1)
    assert request.response_time() == pytest.approx(3.5)


def test_response_and_payment_post():
    request = new_request("c", issued_at=0.0)
    response = Response(request=request, produced_at=2.0)
    assert response.request_id == request.request_id
    post = PaymentPost(request_id=request.request_id, sequence=1, size_bytes=1e6, started_at=0.0)
    assert post.in_flight
    post.completed_at = 3.0
    assert not post.in_flight


def test_request_carries_difficulty_and_category():
    request = new_request("c", issued_at=0.0, client_class="bad", category="cat-3", difficulty=4.0)
    assert request.client_class == "bad"
    assert request.category == "cat-3"
    assert request.difficulty == 4.0
