"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("demo", "figure2", "figure3", "costs", "figure6", "figure7",
                    "figure8", "figure9", "advantage", "windows", "capacity",
                    "scenarios", "sweep", "bench", "fleet", "failover", "fabric"):
        args = parser.parse_args(
            [command] if command in ("demo", "capacity", "scenarios", "sweep", "bench")
            else [command, "--duration", "5"])
        assert args.command == command


def test_demo_command_prints_headline_metrics(capsys):
    exit_code = main(["demo", "--good", "2", "--bad", "2", "--capacity", "8",
                      "--duration", "6", "--seed", "1"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "good_allocation" in output
    assert "Demo" in output


def test_capacity_command_prints_sink_rates(capsys):
    exit_code = main(["capacity", "--measure-seconds", "0.05"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "1500" in output and "120" in output


def test_figure2_command_runs_at_tiny_scale(capsys):
    exit_code = main(["figure2", "--duration", "6", "--client-scale", "0.12", "--seed", "2"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Figure 2" in output
    assert "with_speakup" in output


def test_unknown_command_is_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_scenarios_command_lists_registry(capsys):
    exit_code = main(["scenarios"])
    assert exit_code == 0
    output = capsys.readouterr().out
    for name in ("lan-baseline", "flash-crowd", "pulsed-attack", "diurnal-demand",
                 "stress-mega"):
        assert name in output


def test_scenarios_doc_emits_the_gallery(capsys):
    exit_code = main(["scenarios", "--doc"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert output.startswith("# Scenario gallery")
    assert "## `stress-mega`" in output
    assert "| knob | default |" in output


def _tiny_bench_cases():
    from repro.perf.bench import BenchCase

    return (
        BenchCase(
            name="tiny",
            scenario="lan-baseline",
            args=dict(good_clients=2, bad_clients=2, capacity_rps=10.0, duration=1.0),
        ),
    )


def test_bench_command_appends_entries_and_checks(tmp_path, capsys, monkeypatch):
    import repro.perf.bench as perf_bench

    monkeypatch.setattr(perf_bench, "BENCH_CASES", _tiny_bench_cases())
    out = tmp_path / "BENCH_test.json"
    fresh = tmp_path / "fresh.json"

    exit_code = main(["bench", "--quick", "--label", "cli-test",
                      "--out", str(out), "--fresh-out", str(fresh)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "tiny" in output and "events/s" in output
    assert out.exists() and fresh.exists()

    from repro.perf.bench import load_document

    document = load_document(str(out))
    assert document["entries"][0]["label"] == "cli-test"
    assert "tiny" in document["entries"][0]["cases"]
    fresh_doc = load_document(str(fresh))
    assert len(fresh_doc["entries"]) == 1

    # --check against the entry just written: same machine, same code, so it
    # must pass and must not append a second entry.  The wide tolerance keeps
    # the wall-clock half of the check immune to CI load spikes between the
    # two tiny runs; the deterministic work-per-event half is exact anyway.
    exit_code = main(["bench", "--quick", "--check", "--tolerance", "0.9",
                      "--out", str(out)])
    assert exit_code == 0
    assert len(load_document(str(out))["entries"]) == 1
    assert "no regression" in capsys.readouterr().out


def test_bench_check_without_baseline_errors(tmp_path, capsys, monkeypatch):
    import repro.perf.bench as perf_bench

    monkeypatch.setattr(perf_bench, "BENCH_CASES", _tiny_bench_cases())
    exit_code = main(["bench", "--quick", "--check",
                      "--out", str(tmp_path / "missing.json")])
    assert exit_code == 2
    assert "no committed" in capsys.readouterr().err


def test_sweep_command_runs_grid_and_writes_results(tmp_path, capsys):
    out = tmp_path / "results.json"
    exit_code = main([
        "sweep", "--scenario", "lan-baseline",
        "--set", "good_clients=2", "--set", "bad_clients=2",
        "--set", "capacity_rps=10", "--set", "duration=5",
        "--grid", "defense=speakup,none",
        "--replicates", "2",
        "--out", str(out),
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "4 runs" in output
    assert "defense=speakup" in output and "defense=none" in output

    from repro.scenarios import load_results
    records = load_results(str(out))
    assert len(records) == 4
    assert {record.spec.defense for record in records} == {"speakup", "none"}


def test_campaign_cli_run_kill_resume_merge(tmp_path, capsys):
    """The §11 tutorial loop end to end: run with a forced worker crash
    (exit 4), status reports the torn spool, resume completes, and the
    merged document matches a plain `sweep --out` byte for byte."""
    directory = tmp_path / "campaign"
    common = [
        "--scenario", "lan-baseline",
        "--set", "good_clients=2", "--set", "bad_clients=2",
        "--set", "capacity_rps=10", "--set", "duration=2",
        "--grid", "capacity_rps=5,10",
        "--replicates", "2",
    ]
    assert main([
        "campaign", "run", *common, "--dir", str(directory),
        "--jobs", "2", "--workers", "2", "--checkpoint-every", "1",
        "--fail-after", "1", "--fail-worker", "0",
    ]) == 4
    captured = capsys.readouterr()
    assert "torn tail" in captured.out
    assert "campaign resume" in captured.err

    assert main(["campaign", "status", "--dir", str(directory)]) == 4
    capsys.readouterr()
    assert main(["campaign", "resume", "--dir", str(directory), "--jobs", "2"]) == 0
    assert main(["campaign", "status", "--dir", str(directory)]) == 0
    capsys.readouterr()

    merged = tmp_path / "merged.json"
    assert main(["campaign", "merge", "--dir", str(directory),
                 "--out", str(merged)]) == 0
    assert "merged 4 records" in capsys.readouterr().out

    reference = tmp_path / "reference.json"
    assert main(["sweep", *common, "--out", str(reference)]) == 0
    assert merged.read_bytes() == reference.read_bytes()


def test_campaign_cli_rejects_bad_directories(tmp_path, capsys):
    assert main(["campaign", "status", "--dir", str(tmp_path / "nope")]) == 2
    assert "not a campaign directory" in capsys.readouterr().err


def test_bad_numeric_arguments_exit_cleanly(capsys):
    exit_code = main(["demo", "--good", "2", "--bad", "2", "--duration", "-3"])
    assert exit_code == 2
    captured = capsys.readouterr()
    assert "error" in captured.err
    assert "Traceback" not in captured.err


def test_sweep_rejects_unknown_scenario_and_bad_grid(capsys):
    assert main(["sweep", "--scenario", "no-such-scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
    assert main(["sweep", "--grid", "bogus"]) == 2
    assert "--grid" in capsys.readouterr().err
    assert main(["sweep", "--seeds", "1,x"]) == 2
    assert "--seeds" in capsys.readouterr().err


def test_fleet_command_prints_provisioning_curve(capsys):
    exit_code = main(["fleet", "--duration", "6", "--client-scale", "0.12",
                      "--shards", "1,2"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Section 4.3" in output
    assert "predicted/shard" in output


def test_failover_command_prints_pulse_and_summary(capsys):
    exit_code = main(["failover", "--duration", "12", "--client-scale", "0.24",
                      "--shards", "3", "--repin-ttl", "1"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "kill/heal pulse" in output
    assert "recovery ratio" in output
    assert "<- kill" in output


def test_fabric_command_prints_strategy_grid(capsys):
    exit_code = main(["fabric", "--duration", "4", "--client-scale", "0.2",
                      "--shards", "2", "--fabrics", "star,leaf-spine",
                      "--strategies", "hash,random"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Dispatch strategies across fabric topologies" in output
    for needle in ("star", "leaf-spine", "hash", "random", "imbalance"):
        assert needle in output
    # one row per (fabric, strategy) cell plus the two header lines
    assert len(output.strip().splitlines()) == 3 + 4


def _assert_clean_one_line_error(capsys, argv, needle):
    """Unknown names exit 2 with a single clean line listing valid choices."""
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "Traceback" not in err
    assert err.count("\n") == 1
    assert needle in err
    assert "expected one of" in err or "known scenarios" in err


def test_unknown_names_report_choices_consistently(capsys):
    # The same error shape — one line, valid choices listed — regardless of
    # which subcommand or option carried the unknown name.
    _assert_clean_one_line_error(
        capsys, ["demo", "--defense", "bogus"], "'bogus'")
    _assert_clean_one_line_error(
        capsys, ["sweep", "--scenario", "bogus"], "unknown scenario")
    _assert_clean_one_line_error(
        capsys, ["sweep", "--set", "defense=bogus"], "'bogus'")
    _assert_clean_one_line_error(
        capsys,
        ["fleet", "--duration", "2", "--client-scale", "0.1", "--policy", "bogus"],
        "shard_policy")
    _assert_clean_one_line_error(
        capsys,
        ["fleet", "--duration", "2", "--client-scale", "0.1", "--admission", "bogus"],
        "admission_mode")
    _assert_clean_one_line_error(
        capsys,
        ["fabric", "--duration", "2", "--client-scale", "0.1",
         "--strategies", "bogus"],
        "unknown router strategy")
    _assert_clean_one_line_error(
        capsys,
        ["fabric", "--duration", "2", "--client-scale", "0.1",
         "--fabrics", "bogus"],
        "unknown fabric")
    assert main(["fleet", "--shards", "1,x"]) == 2
    assert "--shards" in capsys.readouterr().err
