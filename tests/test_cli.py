"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("demo", "figure2", "figure3", "costs", "figure6", "figure7",
                    "figure8", "figure9", "advantage", "windows", "capacity"):
        args = parser.parse_args([command] if command in ("demo", "capacity")
                                 else [command, "--duration", "5"])
        assert args.command == command


def test_demo_command_prints_headline_metrics(capsys):
    exit_code = main(["demo", "--good", "2", "--bad", "2", "--capacity", "8",
                      "--duration", "6", "--seed", "1"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "good_allocation" in output
    assert "Demo" in output


def test_capacity_command_prints_sink_rates(capsys):
    exit_code = main(["capacity", "--measure-seconds", "0.05"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "1500" in output and "120" in output


def test_figure2_command_runs_at_tiny_scale(capsys):
    exit_code = main(["figure2", "--duration", "6", "--client-scale", "0.12", "--seed", "2"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Figure 2" in output
    assert "with_speakup" in output


def test_unknown_command_is_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])
