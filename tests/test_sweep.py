"""The sweep runner: grid expansion, determinism, and the results store."""

import pytest

from repro.errors import ExperimentError
from repro.rng import derive_seed
from repro.scenarios import (
    GroupSpec,
    ScenarioSpec,
    Sweep,
    SweepRunner,
    build_scenario,
    load_results,
    save_results,
)


def _base_spec(seed: int = 0) -> ScenarioSpec:
    return build_scenario(
        "lan-baseline", good_clients=2, bad_clients=2,
        capacity_rps=10.0, duration=6.0, seed=seed,
    )


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------


def test_sweep_expands_axes_cross_product_with_replicates():
    sweep = Sweep(
        _base_spec(seed=7),
        axes={"defense": ("speakup", "none"), "groups.1.window": (1, 20)},
        replicates=2,
    )
    points = sweep.points()
    assert sweep.point_count() == len(points) == 2 * 2 * 2
    assert [point.index for point in points] == list(range(8))
    first = points[0]
    assert first.spec.defense == "speakup"
    assert first.spec.groups[1].window == 1
    overrides = dict(first.overrides)
    assert overrides["defense"] == "speakup"
    assert overrides["groups.1.window"] == 1
    # Replicate seeds are deterministic substreams of the base seed.
    assert first.spec.seed == derive_seed(7, "replicate:0")
    assert points[1].spec.seed == derive_seed(7, "replicate:1")
    assert len({point.spec.seed for point in points[:2]}) == 2


def test_sweep_composite_axis_varies_fields_together():
    sweep = Sweep(
        _base_spec(),
        axes={("groups.0.count", "groups.1.count"): [(1, 3), (3, 1)]},
    )
    points = sweep.points()
    assert [(p.spec.groups[0].count, p.spec.groups[1].count) for p in points] == [
        (1, 3), (3, 1),
    ]


def test_sweep_defaults_to_single_run_at_base_seed():
    points = Sweep(_base_spec(seed=9)).points()
    assert len(points) == 1
    assert points[0].spec.seed == 9
    assert dict(points[0].overrides) == {"seed": 9}


def test_sweep_rejects_bad_configuration():
    with pytest.raises(ExperimentError):
        Sweep(_base_spec(), seeds=(1, 2), replicates=2)
    with pytest.raises(ExperimentError):
        Sweep(_base_spec(), axes={"defense": ()})
    with pytest.raises(ExperimentError):
        Sweep(_base_spec(), axes={("a", "b"): [(1,)]})
    with pytest.raises(ExperimentError):
        Sweep(_base_spec(), replicates=0)
    with pytest.raises(ExperimentError):
        SweepRunner(jobs=0)


# ---------------------------------------------------------------------------
# Execution and determinism
# ---------------------------------------------------------------------------


def _ratio_sweep() -> Sweep:
    return Sweep(
        _base_spec(),
        axes={("groups.0.count", "groups.1.count"): [(1, 3), (2, 2), (3, 1)]},
        seeds=(0, 1, 2),
    )


def test_parallel_run_is_bit_identical_to_serial():
    serial = SweepRunner(jobs=1).run(_ratio_sweep())
    parallel = SweepRunner(jobs=4).run(_ratio_sweep())
    assert len(serial) == len(parallel) == 9
    assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]


def test_records_carry_point_provenance():
    records = SweepRunner().run(
        Sweep(_base_spec(), axes={"defense": ("speakup", "none")})
    )
    assert [record.overrides["defense"] for record in records] == ["speakup", "none"]
    assert all(record.scenario == "lan-baseline" for record in records)
    assert records[0].result.defense == "speakup"
    assert records[1].result.defense == "none"


def test_run_specs_preserves_order():
    specs = [_base_spec(seed=seed) for seed in (5, 6)]
    results = SweepRunner(jobs=2).run_specs(specs)
    singles = [spec.run() for spec in specs]
    assert [r.to_dict() for r in results] == [r.to_dict() for r in singles]


# ---------------------------------------------------------------------------
# Results store
# ---------------------------------------------------------------------------


def test_results_store_round_trip(tmp_path):
    records = SweepRunner().run(
        Sweep(_base_spec(), axes={"capacity_rps": (5.0, 10.0)}, replicates=2)
    )
    path = tmp_path / "results.json"
    save_results(records, str(path))
    loaded = load_results(str(path))
    assert len(loaded) == len(records)
    for original, restored in zip(records, loaded):
        assert restored.spec == original.spec
        assert restored.overrides == original.overrides
        assert restored.result.to_dict() == original.result.to_dict()


def test_results_store_rejects_unknown_versions(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "records": []}')
    with pytest.raises(ExperimentError):
        load_results(str(path))


def test_seed_axis_is_respected_not_clobbered():
    records = SweepRunner().run(Sweep(_base_spec(), axes={"seed": (1, 2, 3)}))
    assert [record.spec.seed for record in records] == [1, 2, 3]
    assert [record.seed for record in records] == [1, 2, 3]
    # Different seeds produce different runs.
    assert len({record.result.good.issued for record in records}) > 1
    with pytest.raises(ExperimentError):
        Sweep(_base_spec(), axes={"seed": (1, 2)}, replicates=2)
    with pytest.raises(ExperimentError):
        Sweep(_base_spec(), axes={"seed": (1, 2)}, seeds=(3,))
