"""Behavioural tests for the thinner variants.

These drive small end-to-end deployments (real clients, real payment
channels) and check the paper's qualitative claims: free admission when the
server is idle, highest bidder wins under overload, the undefended baseline
favours the aggressive clients, and the price tracking works.
"""

import pytest

from repro.constants import MBIT
from tests.conftest import make_deployment


def test_idle_server_admits_without_payment():
    deployment, result = make_deployment(good=2, bad=0, capacity=50.0, duration=8.0)
    # Demand (2 clients x 2 req/s) is far below capacity: nobody should pay.
    assert result.good_fraction_served == pytest.approx(1.0, abs=0.02)
    assert result.mean_price_by_class.get("good", 0.0) == pytest.approx(0.0, abs=1.0)
    assert deployment.thinner.stats.free_admissions > 0


def test_auction_gives_good_clients_roughly_proportional_share():
    _deployment, with_speakup = make_deployment(good=3, bad=3, capacity=12.0,
                                                duration=15.0, defense="speakup")
    _deployment2, without = make_deployment(good=3, bad=3, capacity=12.0,
                                            duration=15.0, defense="none")
    assert with_speakup.good_allocation > 2.5 * without.good_allocation
    assert with_speakup.good_allocation == pytest.approx(0.5, abs=0.15)
    assert without.good_allocation < 0.25


def test_auction_prices_do_not_exceed_upper_bound_on_average():
    _deployment, result = make_deployment(good=3, bad=3, capacity=12.0, duration=15.0)
    upper = result.price_upper_bound_bytes
    assert 0 < result.mean_price_by_class["good"] <= upper * 1.1
    assert 0 < result.mean_price_by_class["bad"] <= upper * 1.1


def test_overprovisioned_server_serves_everyone_cheaply():
    _deployment, result = make_deployment(good=3, bad=3, capacity=150.0, duration=12.0)
    assert result.good_fraction_served == pytest.approx(1.0, abs=0.02)
    # Prices collapse when the server is not the bottleneck (Figure 5, c=200).
    assert result.mean_price_by_class.get("good", 0.0) < result.price_upper_bound_bytes * 0.3


def test_retry_variant_also_restores_good_share():
    _deployment, result = make_deployment(good=3, bad=3, capacity=12.0,
                                          duration=15.0, defense="retry")
    assert result.good_allocation == pytest.approx(0.5, abs=0.18)
    assert result.good_fraction_served > 0.8


def test_no_defense_random_vs_fifo_policies_both_run():
    _d1, random_policy = make_deployment(good=2, bad=2, capacity=8.0, duration=10.0,
                                         defense="none", admission_policy="random")
    _d2, fifo_policy = make_deployment(good=2, bad=2, capacity=8.0, duration=10.0,
                                       defense="none", admission_policy="fifo")
    for result in (random_policy, fifo_policy):
        assert result.bad_allocation > result.good_allocation


def test_thinner_counters_are_consistent():
    deployment, result = make_deployment(good=3, bad=3, capacity=12.0, duration=12.0)
    stats = deployment.thinner.stats
    assert stats.requests_admitted == deployment.server.stats.served + (1 if deployment.server.busy else 0)
    assert stats.requests_received >= stats.requests_admitted
    assert result.total_served == deployment.server.stats.served
    assert len(deployment.thinner.prices) == stats.requests_admitted


def test_payment_channels_of_winners_are_closed():
    deployment, _result = make_deployment(good=3, bad=3, capacity=12.0, duration=12.0)
    # Any channel still open must belong to a request still contending.
    contending_ids = {c.request.request_id for c in deployment.thinner.contenders()}
    for client in deployment.clients:
        for request_id, channel in client.channels.items():
            if channel.is_open:
                assert request_id in contending_ids


def test_max_contenders_evicts_and_notifies_clients():
    deployment, result = make_deployment(good=2, bad=2, capacity=8.0, duration=10.0,
                                         max_contenders=5)
    assert deployment.thinner.contending_count <= 5
    dropped = sum(client.stats.dropped for client in deployment.clients)
    assert dropped > 0
    assert deployment.thinner.stats.requests_dropped == dropped


def test_quantum_thinner_serves_and_charges_continuously():
    deployment, result = make_deployment(good=3, bad=3, capacity=12.0, duration=12.0,
                                         defense="quantum")
    assert result.total_served > 0
    assert result.good_allocation > 0.2
    # The quantum thinner keeps charging during service, so prices exist.
    assert deployment.thinner.stats.payment_bytes_sunk > 0


def test_quantum_thinner_resists_hard_request_attack():
    """Attackers sending only hard requests gain less server time under the
    per-quantum auction than under the flat admission auction (§5)."""
    from repro.clients.population import PopulationSpec, build_population
    from repro.core.frontend import Deployment, DeploymentConfig
    from repro.simnet.topology import build_lan, uniform_bandwidths

    def run(defense):
        topology, hosts, thinner_host = build_lan(uniform_bandwidths(6, 2 * MBIT))
        config = DeploymentConfig(server_capacity_rps=15.0, defense=defense, seed=2)
        deployment = Deployment(topology, thinner_host, config)
        specs = [
            PopulationSpec(count=3, client_class="good", difficulty=1.0),
            PopulationSpec(count=3, client_class="bad", rate_rps=10.0, window=6, difficulty=4.0),
        ]
        build_population(deployment, hosts, specs)
        deployment.run(20.0)
        return deployment.results()

    flat = run("speakup")
    quantum = run("quantum")
    flat_bad_time = flat.busy_allocation_by_class.get("bad", 0.0)
    quantum_bad_time = quantum.busy_allocation_by_class.get("bad", 0.0)
    assert quantum_bad_time < flat_bad_time
