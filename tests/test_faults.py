"""The fault-injection layer: plans, kills, heals, and the pins guarding it.

Three families of tests:

* **pin tests** — ``tests/data/failover_pins.json`` stores sha256
  fingerprints of fleet runs captured on main *before* the fault layer
  landed.  Runs with no plan and runs with an *empty* ``FaultPlan()`` must
  both still match them bit for bit, across all three dispatch policies and
  both admission modes: the fault layer must be invisible until a plan has
  events.
* **semantic tests** — what one kill/heal pulse does: eviction, slot
  reclamation (both admission modes), lagged re-pinning, sticky healing,
  and the validation errors (quantum, single shard, malformed plans).
* **property tests** (``-m slow``) — randomized kill/heal schedules over
  several seeds preserve the client-accounting identity, leave nothing
  attached to dead shards, keep the injector's counters monotone, and stay
  deterministic run-to-run.
"""

import hashlib
import json
import random
from dataclasses import replace
from pathlib import Path

import pytest

from repro.clients.base import RetryPolicy
from repro.clients.population import (
    PopulationSpec,
    build_mixed_population,
    build_population,
)
from repro.constants import MBIT
from repro.core.fleet import PooledAdmission
from repro.core.frontend import Deployment, DeploymentConfig
from repro.errors import ExperimentError, FaultError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.faults.spec import gray_pulse, kill_heal_pulse
from repro.httpd.messages import RequestState
from repro.scenarios.registry import build_scenario
from repro.simnet.topology import build_fleet, uniform_bandwidths

PINS_PATH = Path(__file__).parent / "data" / "failover_pins.json"
PINS = json.loads(PINS_PATH.read_text())

SHARD_POLICIES = ("hash", "least-loaded", "random")
ADMISSION_MODES = ("partitioned", "pooled")


# ---------------------------------------------------------------------------
# FaultPlan / FaultEvent
# ---------------------------------------------------------------------------


def test_fault_plan_round_trips_through_json():
    plan = FaultPlan(
        events=(
            FaultEvent(at_s=2.0, action="kill", shard=1),
            FaultEvent(at_s=5.0, action="heal", shard=1),
        ),
        repin_ttl_s=1.5,
        sample_interval_s=0.5,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_fault_plan_orders_events_stably():
    plan = FaultPlan(
        events=(
            FaultEvent(at_s=5.0, action="heal", shard=1),
            FaultEvent(at_s=2.0, action="kill", shard=0),
            FaultEvent(at_s=2.0, action="kill", shard=1),
        )
    )
    ordered = plan.ordered_events()
    assert [e.at_s for e in ordered] == [2.0, 2.0, 5.0]
    assert [e.shard for e in ordered] == [0, 1, 1]  # ties keep plan order


def test_fault_plan_validation_errors():
    with pytest.raises(FaultError):
        FaultEvent(at_s=-1.0, action="kill", shard=0).validate()
    with pytest.raises(FaultError):
        FaultEvent(at_s=1.0, action="reboot", shard=0).validate()
    with pytest.raises(FaultError):
        FaultEvent(at_s=1.0, action="kill", shard=5).validate(shards=3)
    with pytest.raises(FaultError):
        FaultPlan(repin_ttl_s=-1.0).validate()
    with pytest.raises(FaultError):
        FaultPlan(sample_interval_s=0.0).validate()
    with pytest.raises(FaultError):
        kill_heal_pulse(0, kill_at_s=5.0, heal_at_s=5.0)


def test_kill_heal_pulse_builds_one_pulse():
    plan = kill_heal_pulse(2, kill_at_s=3.0, heal_at_s=9.0, repin_ttl_s=1.0)
    assert [(e.at_s, e.action, e.shard) for e in plan.ordered_events()] == [
        (3.0, "kill", 2),
        (9.0, "heal", 2),
    ]
    assert plan.repin_ttl_s == 1.0
    assert not plan.is_empty
    assert FaultPlan().is_empty


def test_gray_pulse_builds_composed_events():
    plan = gray_pulse((0, 2), 3.0, 9.0, factor=0.1, loss_p=0.5, stall=True)
    assert len(plan.events) == 12  # 3 axes x start/stop x 2 shards
    shaped = [(e.at_s, e.action, e.shard) for e in plan.events]
    assert (3.0, "degrade", 0) in shaped
    assert (9.0, "lossless", 2) in shaped
    plan.validate(shards=3, horizon_s=10.0)
    with pytest.raises(FaultError, match="at least one"):
        gray_pulse((0,), 3.0, 9.0)
    with pytest.raises(FaultError):
        gray_pulse((0,), 9.0, 3.0, stall=True)


def test_gray_event_validation():
    with pytest.raises(FaultError):
        FaultEvent(at_s=1.0, action="degrade", shard=0).validate()  # no factor
    with pytest.raises(FaultError):
        FaultEvent(at_s=1.0, action="degrade", shard=0, factor=0.0).validate()
    with pytest.raises(FaultError):
        FaultEvent(at_s=1.0, action="lossy", shard=0, loss_p=1.5).validate()
    with pytest.raises(FaultError):
        FaultEvent(at_s=1.0, action="kill", shard=0, factor=0.5).validate()
    with pytest.raises(FaultError):
        FaultEvent(at_s=1.0, action="stall", shard=0, loss_p=0.5).validate()
    # Gray events round-trip with their parameters.
    event = FaultEvent(at_s=1.0, action="degrade", shard=2, factor=0.25)
    assert FaultEvent.from_dict(event.to_dict()) == event


def test_strict_horizon_validation_lists_every_problem():
    plan = FaultPlan(
        events=(
            FaultEvent(at_s=99.0, action="kill", shard=0),
            FaultEvent(at_s=2.0, action="heal", shard=1),  # never killed
            FaultEvent(at_s=3.0, action="restore", shard=2),  # never degraded
        )
    )
    plan.validate(shards=3)  # lenient mode: stop no-ops are legal
    with pytest.raises(FaultError, match=r"3 problem"):
        plan.validate(shards=3, horizon_s=10.0)
    # A matched pulse inside the horizon is fine.
    gray_pulse((1,), 2.0, 8.0, stall=True).validate(shards=3, horizon_s=10.0)


# ---------------------------------------------------------------------------
# Pin tests: the fault layer is invisible until a plan has events
# ---------------------------------------------------------------------------


def _fingerprint(scenario: str, policy: str, mode: str, fault_plan=None):
    config = PINS["configs"][scenario]
    spec = build_scenario(
        scenario,
        good_clients=config["good_clients"],
        bad_clients=config["bad_clients"],
        thinner_shards=config["thinner_shards"],
        capacity_rps=config["capacity_rps"],
        duration=config["duration"],
        shard_policy=policy,
        admission_mode=mode,
    )
    if fault_plan is not None:
        spec = replace(spec, fault_plan=fault_plan)
    deployment = spec.build()
    deployment.run(spec.duration)
    result = deployment.results()
    digest = hashlib.sha256(
        json.dumps(result.to_dict(), sort_keys=True).encode()
    ).hexdigest()
    return digest, deployment.engine.events_processed


@pytest.mark.parametrize("mode", ADMISSION_MODES)
@pytest.mark.parametrize("policy", SHARD_POLICIES)
@pytest.mark.parametrize("scenario", sorted(PINS["configs"]))
def test_empty_fault_plan_is_byte_identical_to_pre_fault_main(
    scenario, policy, mode
):
    pin = PINS["pins"][f"{scenario}/{policy}/{mode}"]

    digest, events = _fingerprint(scenario, policy, mode)
    assert digest == pin["sha256"], "no-plan run diverged from pre-fault main"
    assert events == pin["events_processed"]

    digest, events = _fingerprint(scenario, policy, mode, fault_plan=FaultPlan())
    assert digest == pin["sha256"], "an empty FaultPlan() perturbed the run"
    assert events == pin["events_processed"]


# ---------------------------------------------------------------------------
# Kill/heal semantics
# ---------------------------------------------------------------------------


def run_faulted_fleet(
    plan,
    shards=3,
    good=6,
    bad=6,
    capacity=18.0,
    duration=12.0,
    **config_kwargs,
):
    """Build, populate and run a small fleet with a fault plan."""
    topology, hosts, thinner_hosts = build_fleet(
        uniform_bandwidths(good + bad, 2 * MBIT), shards
    )
    config = DeploymentConfig(
        server_capacity_rps=capacity,
        seed=0,
        thinner_shards=shards,
        fault_plan=plan,
        **config_kwargs,
    )
    deployment = Deployment(topology, thinner_hosts, config)
    build_mixed_population(deployment, hosts, good, bad)
    deployment.run(duration)
    return deployment, deployment.results()


def _assert_invariants(deployment):
    """The cross-cutting conservation laws every faulted run must keep."""
    injector = deployment.fault_injector
    # Client-count conservation: every client is pinned to exactly one shard.
    assert sum(deployment._router.counts) == len(deployment.clients)
    dead_hosts = {
        deployment.thinner_hosts[shard]
        for shard, alive in enumerate(injector.alive)
        if not alive
    }
    for shard, alive in enumerate(injector.alive):
        if not alive:
            # Nothing contends at a dead thinner.
            assert deployment.thinners[shard].contenders() == []
    for client in deployment.clients:
        stats = client.stats
        # Request accounting: everything issued is served, denied, dropped,
        # in flight, or backlogged — kills must not leak requests.
        assert stats.issued == (
            stats.served
            + stats.denied
            + stats.dropped
            + client.outstanding
            + len(client.backlog)
        )
        # No payment channel stays open toward a killed thinner.
        for channel in client.channels.values():
            if channel.is_open:
                assert channel.thinner_host not in dead_hosts


@pytest.mark.parametrize("mode", ADMISSION_MODES)
def test_kill_evicts_and_clients_repin_to_survivors(mode):
    plan = kill_heal_pulse(1, kill_at_s=4.0, heal_at_s=20.0, repin_ttl_s=1.0)
    deployment, result = run_faulted_fleet(plan, admission_mode=mode)
    injector = deployment.fault_injector
    assert injector.kills == 1
    assert injector.heals == 0  # heal scheduled after the run ends
    assert injector.repinned_clients > 0
    assert injector.orphaned_requests > 0
    assert not injector.alive[1]
    # Everyone left the dead shard for the survivors.
    assert deployment._router.counts[1] == 0
    assert not any(client.shard == 1 for client in deployment.clients)
    # The access link went down with the shard.
    host = deployment.thinner_hosts[1]
    assert not host.access.up.is_up and not host.access.down.is_up
    # Service continued on the survivors after the kill.
    assert result.total_served > 0
    _assert_invariants(deployment)
    assert result.failover is not None
    assert result.failover.kills == 1


def test_heal_rejoins_but_repinned_clients_stay_put():
    plan = kill_heal_pulse(1, kill_at_s=4.0, heal_at_s=8.0, repin_ttl_s=1.0)
    deployment, result = run_faulted_fleet(plan)
    injector = deployment.fault_injector
    assert injector.kills == 1 and injector.heals == 1
    assert injector.alive == [True, True, True]
    host = deployment.thinner_hosts[1]
    assert host.access.up.is_up and host.access.down.is_up
    # Sticky DNS: healed shards only receive *future* re-pins, and with no
    # further kills nobody re-resolves, so the shard stays empty.
    assert deployment._router.counts[1] == 0
    _assert_invariants(deployment)
    assert [action for _t, action, _s in result.failover.timeline] == [
        "kill",
        "heal",
    ]


def test_failover_metrics_round_trip_and_stay_optional():
    plan = kill_heal_pulse(1, kill_at_s=4.0, heal_at_s=8.0, repin_ttl_s=1.0)
    _deployment, result = run_faulted_fleet(plan)
    payload = result.to_dict()
    assert "failover" in payload
    from repro.metrics.collector import RunResult

    rebuilt = RunResult.from_dict(payload)
    assert rebuilt.failover is not None
    assert rebuilt.to_dict() == payload
    # Fault-free results carry no failover key and parse to None.
    plain = RunResult.from_dict(
        {k: v for k, v in payload.items() if k != "failover"}
    )
    assert plain.failover is None
    assert "failover" not in plain.to_dict()


def test_pooled_slot_offers_skip_dead_shards():
    class _Server:
        busy = False
        current = None
        on_request_done = None
        on_ready = None

    pool = PooledAdmission(_Server())
    offered = []
    for index in range(3):
        view = pool.view()
        view.on_ready = lambda index=index: offered.append(index)
    pool.set_alive(1, False)
    pool._slot_freed()
    assert 1 not in offered
    assert offered == [0, 2]
    offered.clear()
    pool.set_alive(1, True)
    pool._slot_freed()
    assert offered == [0, 1, 2]


def test_pooled_reclaim_only_returns_the_owners_slot():
    class _Request:
        request_id = 7

    class _Server:
        busy = True
        current = _Request()
        on_request_done = None
        on_ready = None

    server = _Server()
    pool = PooledAdmission(server)
    pool.view(), pool.view()
    pool._owner_by_request[7] = 0
    assert pool.reclaim(1) is None  # someone else's slot
    assert pool.reclaim(0) is server.current
    assert 7 not in pool._owner_by_request
    assert pool.reclaim(0) is None  # already reclaimed


def test_pooled_fleet_survives_shard_death_end_to_end():
    plan = kill_heal_pulse(0, kill_at_s=3.0, heal_at_s=30.0, repin_ttl_s=0.5)
    deployment, result = run_faulted_fleet(plan, admission_mode="pooled")
    assert not deployment._pool.alive[0]
    # The shared slot kept cycling through the survivors after the kill.
    assert result.total_served > 0
    current = deployment.server.current
    if current is not None:
        assert deployment._pool._owner_by_request[current.request_id] != 0
    _assert_invariants(deployment)


# ---------------------------------------------------------------------------
# Gray-failure semantics: degrade, lossy, stall
# ---------------------------------------------------------------------------


def _build_faulted_fleet(plan, good=6, bad=6, shards=3, retry_policy=None, **kwargs):
    """Like :func:`run_faulted_fleet` but without running (and with retries)."""
    topology, hosts, thinner_hosts = build_fleet(
        uniform_bandwidths(good + bad, 2 * MBIT), shards, **kwargs
    )
    config = DeploymentConfig(
        server_capacity_rps=18.0, seed=0, thinner_shards=shards, fault_plan=plan
    )
    deployment = Deployment(topology, thinner_hosts, config)
    specs = [
        PopulationSpec(count=good, client_class="good", retry_policy=retry_policy),
        PopulationSpec(count=bad, client_class="bad", retry_policy=retry_policy),
    ]
    build_population(deployment, hosts, specs)
    return deployment


def test_degrade_scales_the_access_link_and_restores():
    plan = gray_pulse((1,), 3.0, 8.0, factor=0.25)
    deployment = _build_faulted_fleet(plan, shard_bandwidth_bps=12 * MBIT)
    host = deployment.thinner_hosts[1]
    base_up = host.access.up.capacity_bps
    base_down = host.access.down.capacity_bps
    observed = {}

    def peek():
        observed["mid"] = (host.access.up.capacity_bps, host.access.up.is_up)

    deployment.engine.schedule_at(5.0, peek)
    deployment.run(12.0)
    # Mid-pulse the link ran at a quarter capacity but never went down.
    assert observed["mid"] == (0.25 * base_up, True)
    # The restore put both directions back at their base capacity.
    assert host.access.up.capacity_bps == base_up
    assert host.access.down.capacity_bps == base_down
    injector = deployment.fault_injector
    assert injector.degrades == 1
    assert injector.capacity_factor == [1.0, 1.0, 1.0]
    assert [action for _t, action, _s in injector.timeline] == ["degrade", "restore"]
    # Degrades never touch the dispatch masks.
    assert injector.alive == [True, True, True]
    assert deployment._router.alive == [True, True, True]
    _assert_invariants(deployment)


def test_lossy_drops_completed_uploads():
    plan = gray_pulse((0, 1, 2), 2.0, 10.0, loss_p=0.5)
    deployment = _build_faulted_fleet(plan)
    deployment.run(12.0)
    injector = deployment.fault_injector
    assert injector.lossy_uploads > 0
    assert injector.loss_p == [0.0, 0.0, 0.0]  # lossless restored
    # Without a retry policy every lost upload finalises as a client drop.
    assert sum(client.stats.dropped for client in deployment.clients) > 0
    _assert_invariants(deployment)
    result = deployment.results()
    assert result.failover.lossy_uploads == injector.lossy_uploads


def test_stall_freezes_admission_and_resume_recovers():
    plan = gray_pulse((1,), 3.0, 8.0, stall=True)
    deployment = _build_faulted_fleet(plan)
    snapshots = {}

    def snap(label):
        snapshots[label] = [t.stats.requests_admitted for t in deployment.thinners]

    deployment.engine.schedule_at(3.5, snap, "early")
    deployment.engine.schedule_at(7.5, snap, "late")
    deployment.run(12.0)
    injector = deployment.fault_injector
    assert injector.stalls == 1
    assert injector.stalled == [False, False, False]  # resumed
    # The stalled shard granted nothing while stalled; the others kept going.
    assert snapshots["late"][1] == snapshots["early"][1]
    assert sum(snapshots["late"]) > sum(snapshots["early"])
    # After the resume the shard grants admission again.
    final = [t.stats.requests_admitted for t in deployment.thinners]
    assert final[1] > snapshots["late"][1]
    _assert_invariants(deployment)


def test_retries_resend_lost_uploads_and_budget_suppresses():
    plan = gray_pulse((0, 1, 2), 2.0, 10.0, loss_p=0.5)
    naive = _build_faulted_fleet(plan, retry_policy=RetryPolicy.naive())
    naive.run(12.0)
    naive_result = naive.results()
    naive_retries = (
        naive_result.good.retries_attempted + naive_result.bad.retries_attempted
    )
    assert naive_retries > 0
    assert naive_result.failover.retries_attempted == naive_retries
    _assert_invariants(naive)

    budgeted = _build_faulted_fleet(plan, retry_policy=RetryPolicy.budgeted())
    budgeted.run(12.0)
    budgeted_result = budgeted.results()
    budgeted_retries = (
        budgeted_result.good.retries_attempted + budgeted_result.bad.retries_attempted
    )
    suppressed = (
        budgeted_result.good.retries_suppressed + budgeted_result.bad.retries_suppressed
    )
    # The token bucket retries less and records what it refused.
    assert 0 < budgeted_retries < naive_retries
    assert suppressed > 0
    _assert_invariants(budgeted)
    # The retry counters survive the metrics round trip.
    from repro.metrics.collector import RunResult

    payload = budgeted_result.to_dict()
    assert RunResult.from_dict(payload).to_dict() == payload


def test_retry_policy_validation_and_round_trip():
    policy = RetryPolicy.budgeted()
    assert RetryPolicy.from_dict(policy.to_dict()) == policy
    assert RetryPolicy.from_dict(RetryPolicy.naive().to_dict()) == RetryPolicy.naive()
    from repro.errors import ClientError

    for bad in (
        dict(base_backoff_s=-1.0),
        dict(max_backoff_s=-0.5),
        dict(max_attempts=-1),
        dict(budget=-1.0),
        dict(refill_per_s=-1.0),
    ):
        with pytest.raises(ClientError):
            replace(policy, **bad).validate()


# ---------------------------------------------------------------------------
# The kill/deadline double-count regression (the sweep must not re-deny)
# ---------------------------------------------------------------------------


def test_deny_is_a_noop_for_requests_already_finalised():
    deployment = _build_faulted_fleet(None, good=1, bad=1, shards=2)
    deployment.run(1.0)
    bad_client = next(c for c in deployment.clients if c.client_class == "bad")
    assert bad_client.backlog  # rate 40/s against window 20 backs up fast
    request = bad_client.backlog[0]
    # Simulate a kill (or thinner drop) landing exactly on the deadline
    # tick: the request reached a terminal state before the sweep saw it.
    request.state = RequestState.DROPPED
    denied_before = bad_client.stats.denied
    bad_client._deny(request)
    assert bad_client.stats.denied == denied_before
    # A pending request still gets denied exactly once.
    fresh = bad_client.backlog[1]
    bad_client._deny(fresh)
    assert bad_client.stats.denied == denied_before + 1
    assert fresh.state is RequestState.DENIED


def test_kill_on_exact_backlog_deadline_keeps_the_identity():
    # Phase 1: a fault-free run discovers a real backlog-head deadline on a
    # real shard.  Phase 2 re-runs the same seed with a kill scheduled at
    # exactly that tick, so the shard_failed abort and the 10-second denial
    # sweep land in the same engine timestamp.
    probe = _build_faulted_fleet(None)
    probe.run(6.0)
    candidates = sorted(
        (client.backlog[0].issued_at + client.backlog_timeout, client.shard)
        for client in probe.clients
        if client.backlog
    )
    assert candidates, "expected backlogged clients in an oversubscribed fleet"
    deadline, shard = candidates[0]
    plan = kill_heal_pulse(shard, kill_at_s=deadline, heal_at_s=deadline + 100.0)
    deployment = _build_faulted_fleet(plan)
    deployment.run(deadline + 2.0)
    assert deployment.fault_injector.kills == 1
    for client in deployment.clients:
        stats = client.stats
        assert stats.issued == (
            stats.served
            + stats.denied
            + stats.dropped
            + client.outstanding
            + len(client.backlog)
        ), "a request was double-counted at the kill/deadline tick"


# ---------------------------------------------------------------------------
# Validation at the deployment boundary
# ---------------------------------------------------------------------------


def test_quantum_with_fault_plan_is_rejected():
    config = DeploymentConfig(
        server_capacity_rps=10.0,
        defense="quantum",
        thinner_shards=2,
        fault_plan=kill_heal_pulse(0, 1.0, 2.0),
    )
    with pytest.raises(ExperimentError, match="does not support fault injection"):
        config.validate()


def test_single_shard_with_fault_plan_is_rejected():
    config = DeploymentConfig(
        server_capacity_rps=10.0,
        fault_plan=kill_heal_pulse(0, 1.0, 2.0),
    )
    with pytest.raises(ExperimentError, match="thinner_shards > 1"):
        config.validate()
    spec = build_scenario("fleet-lan", thinner_shards=2, duration=5.0)
    spec = replace(spec, fault_plan=kill_heal_pulse(5, 1.0, 2.0))
    with pytest.raises(ExperimentError):
        spec.validate()  # shard 5 out of range for a 2-shard fleet


def test_empty_plan_wires_no_injector():
    _deployment, result = run_faulted_fleet(None, duration=2.0)
    assert _deployment.fault_injector is None
    assert result.failover is None
    _deployment, result = run_faulted_fleet(FaultPlan(), duration=2.0)
    assert _deployment.fault_injector is None
    assert result.failover is None


def test_injector_requires_a_sharded_fleet():
    topology, hosts, thinner_host = build_fleet(uniform_bandwidths(4, 2 * MBIT), 2)
    config = DeploymentConfig(server_capacity_rps=10.0, thinner_shards=2)
    deployment = Deployment(topology, thinner_host, config)

    class _One:
        config = DeploymentConfig(server_capacity_rps=10.0)

    with pytest.raises(FaultError):
        FaultInjector(_One(), kill_heal_pulse(0, 1.0, 2.0))
    # And a well-formed fleet accepts one.
    injector = FaultInjector(deployment, kill_heal_pulse(0, 1.0, 2.0))
    assert injector.alive == [True, True]


# ---------------------------------------------------------------------------
# The fleet-failover scenario and experiment
# ---------------------------------------------------------------------------


def test_fleet_failover_scenario_runs_and_recovers_small():
    result = build_scenario(
        "fleet-failover",
        good_clients=6,
        bad_clients=6,
        thinner_shards=3,
        capacity_rps=30.0,
        kill_at_s=4.0,
        heal_at_s=8.0,
        repin_ttl_s=1.0,
        duration=12.0,
    ).run()
    failover = result.failover
    assert failover is not None
    assert failover.kills == 1 and failover.heals == 1
    assert failover.repinned_clients > 0
    # The sampled service curve is monotone cumulative counts.
    times = [t for t, _served in failover.service_samples]
    served = [s for _t, s in failover.service_samples]
    assert times == sorted(times)
    assert served == sorted(served)


def test_failover_experiment_reports_recovery():
    from repro.experiments.base import ExperimentScale
    from repro.experiments.failover import failover_pulse, format_failover

    outcome = failover_pulse(
        ExperimentScale(duration=12.0, client_scale=0.24, seed=0),
        shards=3,
        repin_ttl_s=1.0,
    )
    assert outcome.kills == 1 and outcome.heals == 1
    assert outcome.pre_kill_rate_rps > 0
    assert 0.0 <= outcome.dip_ratio <= outcome.recovery_ratio + 1.0
    text = format_failover(outcome)
    assert "kill/heal pulse" in text
    assert "recovery ratio" in text


# ---------------------------------------------------------------------------
# Randomized property tests (slow: the dedicated CI job runs these)
# ---------------------------------------------------------------------------


def _random_plan(seed, shards=3, duration=10.0, events=8):
    rng = random.Random(seed)
    return FaultPlan(
        events=tuple(
            FaultEvent(
                at_s=round(rng.uniform(0.5, duration - 0.5), 3),
                action=rng.choice(("kill", "heal")),
                shard=rng.randrange(shards),
            )
            for _ in range(events)
        ),
        repin_ttl_s=rng.choice((0.25, 1.0, 3.0)),
    )


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("mode", ADMISSION_MODES)
def test_random_schedules_preserve_invariants(seed, mode):
    plan = _random_plan(seed)
    deployment, result = run_faulted_fleet(
        plan, duration=10.0, admission_mode=mode
    )
    injector = deployment.fault_injector
    _assert_invariants(deployment)
    # Kills and heals alternate per shard, so executed heals never exceed
    # executed kills and the timeline matches the counters.
    assert injector.heals <= injector.kills
    assert injector.kills + injector.heals == len(injector.timeline)
    assert result.failover.orphaned_requests == injector.orphaned_requests


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_schedule_counters_are_monotone(seed):
    plan = _random_plan(seed)
    topology, hosts, thinner_hosts = build_fleet(uniform_bandwidths(12, 2 * MBIT), 3)
    config = DeploymentConfig(
        server_capacity_rps=18.0, seed=0, thinner_shards=3, fault_plan=plan
    )
    deployment = Deployment(topology, thinner_hosts, config)
    build_mixed_population(deployment, hosts, 6, 6)

    counters = ("kills", "heals", "repinned_clients", "orphaned_requests")
    snapshots = []
    injector = deployment.fault_injector

    def snapshot():
        snapshots.append(
            {name: getattr(injector, name) for name in counters}
            | {"timeline": len(injector.timeline)}
        )

    for at in (2.5, 5.0, 7.5):
        deployment.engine.schedule_at(at, snapshot)
    deployment.run(10.0)
    snapshot()

    for earlier, later in zip(snapshots, snapshots[1:]):
        for name, value in earlier.items():
            assert value <= later[name], f"{name} went backwards"


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_schedules_are_deterministic(seed):
    plan = _random_plan(seed)
    _d1, first = run_faulted_fleet(plan, duration=10.0)
    _d2, second = run_faulted_fleet(plan, duration=10.0)
    assert first.to_dict() == second.to_dict()


def _random_gray_plan(seed, shards=3, duration=10.0, events=10):
    """A schedule drawing from the whole fault vocabulary, gray and binary."""
    rng = random.Random(seed)
    drawn = []
    for _ in range(events):
        action = rng.choice(
            ("kill", "heal", "degrade", "restore", "lossy", "lossless", "stall", "resume")
        )
        kwargs = {}
        if action == "degrade":
            kwargs["factor"] = round(rng.uniform(0.05, 1.0), 3)
        elif action == "lossy":
            kwargs["loss_p"] = round(rng.uniform(0.0, 0.9), 3)
        drawn.append(
            FaultEvent(
                at_s=round(rng.uniform(0.5, duration - 0.5), 3),
                action=action,
                shard=rng.randrange(shards),
                **kwargs,
            )
        )
    return FaultPlan(events=tuple(drawn), repin_ttl_s=rng.choice((0.25, 1.0, 3.0)))


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("mode", ADMISSION_MODES)
def test_random_gray_schedules_preserve_invariants(seed, mode):
    plan = _random_gray_plan(seed)
    deployment, result = run_faulted_fleet(plan, duration=10.0, admission_mode=mode)
    injector = deployment.fault_injector
    _assert_invariants(deployment)
    for shard, host in enumerate(deployment.thinner_hosts):
        # Administrative liveness tracks the injector's view exactly.
        assert host.access.up.is_up == injector.alive[shard]
        assert host.access.down.is_up == injector.alive[shard]
        # Degrades scale from the base capacity, so the final factor fully
        # determines the final capacity — no compounding, no drift.
        factor = injector.capacity_factor[shard]
        assert 0.0 < factor <= 1.0
        assert host.access.up.capacity_bps == pytest.approx(
            host.access.up.base_capacity_bps * factor
        )
        assert host.access.down.capacity_bps == pytest.approx(
            host.access.down.base_capacity_bps * factor
        )
        assert 0.0 <= injector.loss_p[shard] <= 1.0
    # Every executed transition is on the timeline; no counter double-counts.
    assert injector.heals <= injector.kills
    assert result.failover.orphaned_requests == injector.orphaned_requests
    assert result.failover.lossy_uploads == injector.lossy_uploads
    assert result.failover.degrades == injector.degrades
    assert result.failover.stalls == injector.stalls


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_gray_schedules_are_deterministic(seed):
    plan = _random_gray_plan(seed)
    _d1, first = run_faulted_fleet(plan, duration=10.0)
    _d2, second = run_faulted_fleet(plan, duration=10.0)
    assert first.to_dict() == second.to_dict()


@pytest.mark.slow
@pytest.mark.parametrize("seed", [4, 5, 6])
def test_random_gray_schedules_with_retries_preserve_accounting(seed):
    """Retries under random gray faults never break request conservation."""
    plan = _random_gray_plan(seed, events=8)
    topology, hosts, thinner_hosts = build_fleet(uniform_bandwidths(12, 2 * MBIT), 3)
    config = DeploymentConfig(
        server_capacity_rps=18.0, seed=0, thinner_shards=3, fault_plan=plan
    )
    deployment = Deployment(topology, thinner_hosts, config)
    policy = RetryPolicy.budgeted()
    build_population(
        deployment,
        hosts,
        [
            PopulationSpec(count=6, client_class="good", retry_policy=policy),
            PopulationSpec(count=6, client_class="bad", retry_policy=policy),
        ],
    )
    deployment.run(10.0)
    injector = deployment.fault_injector
    _assert_invariants(deployment)
    retries = sum(client.stats.retries_attempted for client in deployment.clients)
    suppressed = sum(client.stats.retries_suppressed for client in deployment.clients)
    assert retries >= 0 and suppressed >= 0
    failover = deployment.results().failover
    assert failover.retries_attempted == retries
    assert failover.retries_suppressed == suppressed
    assert failover.lossy_uploads == injector.lossy_uploads
