"""The sharded thinner fleet (§4.3 scale-out).

Covers the dispatch policies, both admission modes, the per-shard metrics
breakdown, the fleet provisioning experiment against the closed form, and —
load-bearing for every existing figure — that a one-shard deployment is
indistinguishable from the historical single-thinner path.
"""

import pytest

from repro.analysis.provisioning import payment_traffic_estimate
from repro.clients.population import build_mixed_population
from repro.constants import MBIT
from repro.core.fleet import HealthProbeSpec, PooledAdmission, ShardRouter
from repro.core.frontend import Deployment, DeploymentConfig
from repro.errors import ExperimentError, ThinnerError, TopologyError
from repro.experiments.base import ExperimentScale
from repro.experiments.fleet import fleet_provisioning_curve, format_fleet
from repro.metrics.collector import ShardMetrics
from repro.rng import StreamFactory
from repro.scenarios.registry import build_scenario
from repro.simnet.topology import build_fleet, uniform_bandwidths


def make_fleet_deployment(
    shards=3,
    good=6,
    bad=6,
    capacity=12.0,
    duration=10.0,
    **config_kwargs,
):
    """Build, populate and run a small fleet; returns (deployment, result)."""
    topology, hosts, thinner_hosts = build_fleet(
        uniform_bandwidths(good + bad, 2 * MBIT), shards
    )
    config = DeploymentConfig(
        server_capacity_rps=capacity, seed=0, thinner_shards=shards, **config_kwargs
    )
    deployment = Deployment(topology, thinner_hosts, config)
    build_mixed_population(deployment, hosts, good, bad)
    deployment.run(duration)
    return deployment, deployment.results()


# ---------------------------------------------------------------------------
# ShardRouter
# ---------------------------------------------------------------------------


def test_router_hash_policy_is_stable_and_order_independent():
    names = [f"client-{i:03d}" for i in range(20)]
    first = [ShardRouter(4, "hash").assign(name) for name in names]
    second = [ShardRouter(4, "hash").assign(name) for name in reversed(names)]
    assert first == list(reversed(second))
    assert set(first) <= set(range(4))


def test_router_least_loaded_balances_exactly():
    router = ShardRouter(3, "least-loaded")
    for i in range(9):
        router.assign(f"c{i}")
    assert router.counts == [3, 3, 3]


def test_router_random_policy_is_seeded():
    draws = [
        [ShardRouter(5, "random", rng=StreamFactory(7).stream("shard-dispatch")).assign(f"c{i}") for i in range(10)]
        for _ in range(2)
    ]
    assert draws[0] == draws[1]


def test_router_single_shard_consumes_no_randomness():
    router = ShardRouter(1, "random")  # no rng needed for one shard
    assert router.assign("anyone") == 0


def test_router_validates_inputs():
    with pytest.raises(ThinnerError):
        ShardRouter(0)
    with pytest.raises(ThinnerError):
        ShardRouter(2, "round-robin")
    with pytest.raises(ThinnerError):
        ShardRouter(2, "random")  # rng required above one shard


# ---------------------------------------------------------------------------
# build_fleet
# ---------------------------------------------------------------------------


def test_build_fleet_splits_the_aggregate_across_shards():
    topology, clients, thinners = build_fleet(
        uniform_bandwidths(4, 2 * MBIT), 4, fleet_bandwidth_bps=400 * MBIT
    )
    assert [host.name for host in thinners] == [
        "thinner-00", "thinner-01", "thinner-02", "thinner-03",
    ]
    for host in thinners:
        assert host.upload_capacity_bps == pytest.approx(100 * MBIT)
    assert len(clients) == 4


def test_build_fleet_validates_inputs():
    with pytest.raises(TopologyError):
        build_fleet([], 2)
    with pytest.raises(TopologyError):
        build_fleet(uniform_bandwidths(2, MBIT), 0)
    with pytest.raises(TopologyError):
        build_fleet(uniform_bandwidths(2, MBIT), 2, client_delays_s=[0.0])


# ---------------------------------------------------------------------------
# Fleet deployments
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["partitioned", "pooled"])
def test_fleet_serves_the_full_population(mode):
    deployment, result = make_fleet_deployment(admission_mode=mode)
    assert len(deployment.thinners) == 3
    assert result.total_served > 0
    # Every shard got clients (hash over client-NNN names spreads) and the
    # shard breakdown accounts for every served request.
    assert sum(s.clients for s in result.shards) == 12
    assert sum(s.requests_served for s in result.shards) == result.total_served
    assert result.good_allocation + result.bad_allocation == pytest.approx(1.0)


def test_partitioned_mode_splits_server_capacity():
    deployment, _result = make_fleet_deployment(admission_mode="partitioned")
    assert len(deployment.servers) == 3
    for server in deployment.servers:
        assert server.capacity_rps == pytest.approx(4.0)


def test_pooled_mode_shares_one_server():
    deployment, result = make_fleet_deployment(admission_mode="pooled")
    assert len(deployment.servers) == 1
    assert deployment.servers[0].capacity_rps == pytest.approx(12.0)
    assert result.total_served == deployment.servers[0].stats.served


def test_pooled_and_partitioned_throughput_match_single_thinner():
    # Whatever the fleet arrangement, the back-end can only do c requests/s:
    # an over-subscribed run serves ~duration * c requests in every mode.
    _dep1, single = make_fleet_deployment(shards=1)
    _dep2, part = make_fleet_deployment(admission_mode="partitioned")
    _dep3, pooled = make_fleet_deployment(admission_mode="pooled")
    for result in (part, pooled):
        assert result.total_served == pytest.approx(single.total_served, rel=0.1)


def test_per_shard_metrics_sum_to_the_totals():
    deployment, result = make_fleet_deployment(admission_mode="partitioned")
    assert [s.shard for s in result.shards] == [0, 1, 2]
    assert [s.thinner_host for s in result.shards] == [
        "thinner-00", "thinner-01", "thinner-02",
    ]
    assert sum(s.auctions_held for s in result.shards) == result.auctions_held
    assert sum(s.free_admissions for s in result.shards) == result.free_admissions
    assert sum(s.payment_bytes_sunk for s in result.shards) == pytest.approx(
        result.payment_bytes_sunk
    )
    total_paid = sum(s.client_bytes_paid for s in result.shards)
    assert total_paid == pytest.approx(result.good.bytes_paid + result.bad.bytes_paid)
    for shard, thinner in zip(result.shards, deployment.thinners):
        assert shard.requests_received == thinner.stats.requests_received
        assert shard.clients == len(deployment.clients_of_shard(shard.shard))


def test_shard_metrics_round_trip_through_json():
    _deployment, result = make_fleet_deployment()
    rebuilt = result.from_json(result.to_json())
    assert [s.to_dict() for s in rebuilt.shards] == [s.to_dict() for s in result.shards]
    assert all(isinstance(s, ShardMetrics) for s in rebuilt.shards)


def test_clients_route_requests_to_their_assigned_shard():
    deployment, _result = make_fleet_deployment()
    for client in deployment.clients:
        assert client.thinner is deployment.thinners[client.shard]
        assert client.thinner_host is deployment.thinner_hosts[client.shard]
    # Each shard's received count is exactly its own clients' sent count
    # (no request ever crossed shards).
    for index, thinner in enumerate(deployment.thinners):
        sent = sum(c.stats.sent for c in deployment.clients_of_shard(index))
        assert thinner.stats.requests_received <= sent


@pytest.mark.parametrize("defense", ["speakup", "retry", "none", "quantum"])
def test_every_defense_runs_partitioned(defense):
    _deployment, result = make_fleet_deployment(
        shards=2, duration=6.0, defense=defense, admission_mode="partitioned"
    )
    assert result.total_served > 0


@pytest.mark.parametrize("defense", ["speakup", "retry", "none"])
def test_pooled_mode_supports_non_quantum_defenses(defense):
    _deployment, result = make_fleet_deployment(
        shards=2, duration=6.0, defense=defense, admission_mode="pooled"
    )
    assert result.total_served > 0


def test_fleet_runs_are_deterministic():
    _d1, first = make_fleet_deployment(admission_mode="pooled")
    _d2, second = make_fleet_deployment(admission_mode="pooled")
    assert first.to_dict() == second.to_dict()


# ---------------------------------------------------------------------------
# Configuration errors
# ---------------------------------------------------------------------------


def test_pooled_quantum_is_rejected():
    with pytest.raises(ExperimentError, match="quantum"):
        DeploymentConfig(
            thinner_shards=2, admission_mode="pooled", defense="quantum"
        ).validate()


def test_config_validates_fleet_knobs():
    with pytest.raises(ExperimentError):
        DeploymentConfig(thinner_shards=0).validate()
    with pytest.raises(ExperimentError, match="shard_policy"):
        DeploymentConfig(shard_policy="sticky").validate()
    with pytest.raises(ExperimentError, match="admission_mode"):
        DeploymentConfig(admission_mode="shared").validate()


def test_deployment_needs_one_host_per_shard():
    topology, _hosts, thinner_hosts = build_fleet(uniform_bandwidths(4, 2 * MBIT), 2)
    with pytest.raises(ExperimentError, match="thinner_shards"):
        Deployment(topology, thinner_hosts[0], DeploymentConfig(thinner_shards=2))
    with pytest.raises(ExperimentError, match="thinner_shards"):
        Deployment(topology, thinner_hosts, DeploymentConfig())


def test_thinner_factory_is_single_shard_only():
    topology, _hosts, thinner_hosts = build_fleet(uniform_bandwidths(4, 2 * MBIT), 2)
    with pytest.raises(ExperimentError, match="factories"):
        Deployment(
            topology,
            thinner_hosts,
            DeploymentConfig(thinner_shards=2),
            thinner_factory=lambda deployment: None,
        )


def test_pooled_admission_rejects_double_submit():
    from repro.httpd.messages import new_request
    from repro.httpd.server import EmulatedServer
    from repro.simnet.engine import Engine

    engine = Engine()
    server = EmulatedServer(engine, 10.0, rng=StreamFactory(0).stream("server"))
    pool = PooledAdmission(server)
    view_a, view_b = pool.view(), pool.view()
    view_a.submit(new_request(client_id="a", issued_at=0.0))
    with pytest.raises(Exception):
        view_b.submit(new_request(client_id="b", issued_at=0.0))


# ---------------------------------------------------------------------------
# The one-shard invariant
# ---------------------------------------------------------------------------


def test_fleet_lan_with_one_shard_equals_lan_baseline():
    """``thinner_shards=1`` must reproduce the single-thinner run exactly."""
    kwargs = dict(good_clients=3, bad_clients=3, capacity_rps=12.0, duration=8.0)
    baseline = build_scenario("lan-baseline", **kwargs)
    fleet = build_scenario("fleet-lan", thinner_shards=1, **kwargs)
    assert baseline.run().to_dict() == fleet.run().to_dict()


def test_scenario_validation_rejects_bad_fleet_specs():
    with pytest.raises(ExperimentError):
        build_scenario("fleet-lan", thinner_shards=0).validate()
    with pytest.raises(ExperimentError, match="shard_policy"):
        build_scenario("fleet-lan", shard_policy="sticky").validate()
    spec = build_scenario("shared-bottleneck").with_value("thinner_shards", 2)
    with pytest.raises(ExperimentError, match="lan"):
        spec.validate()


# ---------------------------------------------------------------------------
# The provisioning experiment (§4.3)
# ---------------------------------------------------------------------------


def test_fleet_provisioning_curve_tracks_the_closed_form():
    rows = fleet_provisioning_curve(ExperimentScale.test(), shard_counts=(1, 2, 4))
    assert [row.shards for row in rows] == [1, 2, 4]
    for row in rows:
        # The closed form is computed from the measured bandwidths.
        assert row.predicted_fleet_bps == pytest.approx(
            payment_traffic_estimate(row.bad_bandwidth_bps, row.good_bandwidth_bps)
        )
        assert row.predicted_shard_bps == pytest.approx(
            row.predicted_fleet_bps / row.shards
        )
        # Stated tolerance: at test scale the fleet sinks 50-100% of the
        # closed-form (G+B) estimate (quiescent gaps, slow start, and request
        # RTTs keep it below 1; anything below half would mean the fleet is
        # not absorbing the attack).
        assert 0.5 <= row.fleet_utilisation <= 1.0
        assert row.shard_imbalance >= 1.0
    # The provisioning curve: per-shard load falls as shards are added.
    means = [row.observed_shard_mean_bps for row in rows]
    assert means[0] > means[1] > means[2]
    # And the per-shard mean stays within the stated 50% band of (G+B)/N.
    for row in rows:
        assert row.observed_shard_mean_bps <= row.predicted_shard_bps
        assert row.observed_shard_mean_bps >= 0.5 * row.predicted_shard_bps


def test_format_fleet_renders_a_table():
    rows = fleet_provisioning_curve(ExperimentScale.test(), shard_counts=(1, 2))
    table = format_fleet(rows)
    assert "Section 4.3" in table
    assert "predicted/shard" in table


def test_fleet_provisioning_campaign_matches_direct_curve(tmp_path):
    from repro.experiments.fleet import fleet_provisioning_campaign

    scale = ExperimentScale.test()
    direct = fleet_provisioning_curve(scale, shard_counts=(1, 2))
    directory = str(tmp_path / "campaign")
    via_campaign = fleet_provisioning_campaign(
        scale, directory, shard_counts=(1, 2), jobs=2
    )
    assert via_campaign == direct
    # A second call resumes the finished campaign (a no-op) and re-streams
    # the same rows from the spools.
    assert fleet_provisioning_campaign(scale, directory, shard_counts=(1, 2)) == direct


# ---------------------------------------------------------------------------
# Health prober: gray-failure ejection and probation readmission
# ---------------------------------------------------------------------------


def test_probe_spec_validates_and_round_trips():
    spec = HealthProbeSpec(interval_s=0.25, alpha=0.5, eject_fraction=0.2)
    spec.validate()
    assert HealthProbeSpec.from_dict(spec.to_dict()) == spec
    for bad in (
        dict(interval_s=0.0),
        dict(alpha=0.0),
        dict(alpha=1.5),
        dict(eject_fraction=0.0),
        dict(eject_fraction=1.0),
        dict(holddown_s=-1.0),
        dict(min_samples=0),
    ):
        with pytest.raises(ThinnerError):
            HealthProbeSpec(**bad).validate()


def test_router_ejection_mask_narrows_reassign():
    router = ShardRouter(3, "least-loaded")
    for i in range(6):
        router.assign(f"c{i}")
    router.set_ejected(1, True)
    assert router.routable_shards() == [0, 2]
    assert router.live_shards() == [0, 1, 2]  # liveness mask untouched
    # Reassignment lands only on routable shards.
    for i in range(6):
        assert router.reassign(f"c{i}", i % 3) in (0, 2)
    # Readmission widens the candidate set again.
    router.set_ejected(1, False)
    assert router.routable_shards() == [0, 1, 2]
    with pytest.raises(ThinnerError):
        router.set_ejected(9, True)


def test_router_prefers_sick_shard_over_no_shard():
    router = ShardRouter(2, "hash")
    router.assign("c0")
    router.set_alive(1, False)
    router.set_ejected(0, True)
    # Everything routable is gone: liveness wins over the ejection mask.
    assert router.reassign("c0", 0) == 0


def test_prober_ejects_a_stalled_shard_and_readmits_after_holddown():
    spec = build_scenario(
        "fleet-brownout",
        good_clients=5,
        bad_clients=5,
        thinner_shards=4,
        capacity_rps=20.0,
        duration=12.0,
        fault="stall",
        fault_shard=0,
        start_at_s=4.0,
        end_at_s=8.0,
        health_probe=True,
        probe_interval_s=0.5,
        holddown_s=3.0,
    )
    deployment = spec.build()
    deployment.run(spec.duration)
    result = deployment.results()
    prober = deployment.health_prober
    assert prober is not None
    assert prober.ejections >= 1
    assert prober.readmits >= 1
    # The eject precedes its readmit and names the stalled shard.
    events = [(kind, shard) for _at, kind, shard in prober.timeline]
    assert events.index(("eject", 0)) < events.index(("readmit", 0))
    # Probation cleared every ejection by the end of the run.
    assert deployment._router.ejected == [False, False, False, False]
    # Re-pinned clients are sticky: nobody migrates back after readmission.
    assert deployment._router.counts[0] == 0
    assert sum(deployment._router.counts) == len(deployment.clients)
    # The prober's story lands in the failover metrics and survives JSON.
    failover = result.failover
    assert failover.ejections == prober.ejections
    assert failover.readmits == prober.readmits
    assert failover.ejected_repins == prober.repinned_clients
    round_tripped = type(failover).from_dict(failover.to_dict())
    assert round_tripped.ejections == failover.ejections
    assert round_tripped.readmits == failover.readmits


def test_prober_is_quiet_on_a_healthy_fleet():
    spec = build_scenario(
        "fleet-brownout",
        good_clients=5,
        bad_clients=5,
        thinner_shards=4,
        capacity_rps=20.0,
        duration=8.0,
        fault="stall",
        fault_shard=0,
        start_at_s=20.0,  # pulse never lands inside the run
        end_at_s=21.0,
        health_probe=True,
    )
    deployment = spec.build()
    deployment.run(spec.duration)
    prober = deployment.health_prober
    assert prober.ejections == 0
    assert prober.readmits == 0
    assert prober.probe_samples > 0
    assert deployment._router.ejected == [False] * 4
