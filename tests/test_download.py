"""Tests for the §7.7 HTTP download model."""

import pytest

from repro.constants import MBIT, milliseconds
from repro.errors import SimulationError
from repro.httpd.download import DownloadModel
from repro.rng import RandomStream
from repro.simnet.engine import Engine
from repro.simnet.network import FluidNetwork
from repro.simnet.topology import build_dumbbell, uniform_bandwidths


def build_model(uploaders=0):
    topology, clients, victim, thinner, web_server, cable = build_dumbbell(
        left_bandwidths_bps=uniform_bandwidths(10, 2 * MBIT),
        bottleneck_bandwidth_bps=1 * MBIT,
        bottleneck_delay_s=milliseconds(100),
    )
    engine = Engine()
    network = FluidNetwork(engine, topology)
    for host in clients[:uploaders]:
        network.send(host, thinner, label="payment")
    engine.run(until=1.0)
    model = DownloadModel(network, victim, web_server, cable)
    return engine, network, model


def test_idle_bottleneck_is_not_congested():
    _engine, _network, model = build_model(uploaders=0)
    assert not model.uplink_congested()
    assert model.effective_rtt() == pytest.approx(model.base_rtt())


def test_saturated_uplink_inflates_effective_rtt():
    _engine, _network, model = build_model(uploaders=10)
    assert model.uplink_congested()
    assert model.effective_rtt() > model.base_rtt()


def test_download_latency_inflates_under_speakup_traffic():
    _engine, _network, idle_model = build_model(uploaders=0)
    _engine2, _network2, busy_model = build_model(uploaders=10)
    for size in (1_000, 64_000):
        idle = idle_model.download(size)
        busy = busy_model.download(size)
        assert busy.latency > idle.latency * 2.0
    # Small transfers suffer proportionally more (the paper's 6x vs 4.5x shape).
    small_inflation = busy_model.download(1_000).latency / idle_model.download(1_000).latency
    large_inflation = busy_model.download(256_000).latency / idle_model.download(256_000).latency
    assert small_inflation >= large_inflation * 0.8


def test_latency_increases_with_size():
    _engine, _network, model = build_model(uploaders=10)
    latencies = [model.download(size).latency for size in (1_000, 16_000, 256_000)]
    assert latencies == sorted(latencies)


def test_stochastic_sampling_reports_variance():
    _engine, _network, model = build_model(uploaders=10)
    rng = RandomStream(0, "downloads")
    samples = model.repeated_downloads(4_000, 50, rng)
    assert len(samples) == 50
    latencies = {round(sample.latency, 6) for sample in samples}
    # Loss is stochastic, so not every download takes the same time.
    assert len(latencies) > 1
    assert any(sample.request_retransmitted for sample in samples) or True


def test_parameter_validation():
    _engine, _network, model = build_model()
    with pytest.raises(SimulationError):
        model.download(0)
    with pytest.raises(SimulationError):
        model.repeated_downloads(1000, 0, RandomStream(0, "x"))
    from repro.simnet.topology import build_dumbbell as _bd  # silence lint
    with pytest.raises(SimulationError):
        DownloadModel(_network, model.victim, model.web_server, model.bottleneck,
                      congested_loss_rate=1.5)


def test_download_result_inflation_property():
    _engine, _network, model = build_model(uploaders=10)
    result = model.download(10_000)
    assert result.inflation_over >= 1.0
    assert result.effective_rtt >= result.base_rtt
