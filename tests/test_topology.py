"""Tests for links, hosts, and topology routing."""

import pytest

from repro.constants import MBIT, milliseconds
from repro.errors import TopologyError
from repro.simnet.host import make_host
from repro.simnet.link import DuplexLink, Link, path_delay, path_min_capacity
from repro.simnet.topology import (
    Topology,
    build_bottleneck,
    build_dumbbell,
    build_lan,
    uniform_bandwidths,
)


def test_link_rejects_bad_parameters():
    with pytest.raises(TopologyError):
        Link("bad", 0.0)
    with pytest.raises(TopologyError):
        Link("bad", 1 * MBIT, delay_s=-1.0)


def test_duplex_link_directions_are_independent():
    cable = DuplexLink("c", 10 * MBIT, delay_s=0.01, down_capacity_bps=50 * MBIT)
    assert cable.up.capacity_bps == 10 * MBIT
    assert cable.down.capacity_bps == 50 * MBIT
    assert cable.rtt == pytest.approx(0.02)


def test_path_helpers():
    links = [Link("a", 2 * MBIT, 0.001), Link("b", 10 * MBIT, 0.002)]
    assert path_delay(links) == pytest.approx(0.003)
    assert path_min_capacity(links) == 2 * MBIT
    with pytest.raises(TopologyError):
        path_min_capacity([])


def test_host_properties():
    host = make_host("h", upload_bps=2 * MBIT, download_bps=8 * MBIT, delay_s=0.005,
                     extra_delay_s=0.05)
    assert host.upload_capacity_bps == 2 * MBIT
    assert host.download_capacity_bps == 8 * MBIT
    assert host.one_way_delay_to_access() == pytest.approx(0.055)


def test_topology_path_and_rtt():
    topology, clients, thinner = build_lan(uniform_bandwidths(2, 2 * MBIT))
    path = topology.path(clients[0], thinner)
    assert path[0] is clients[0].uplink
    assert path[-1] is thinner.downlink
    # Symmetric LAN: RTT is twice the sum of the two access delays.
    assert topology.rtt(clients[0], thinner) == pytest.approx(
        2 * (clients[0].access.delay_s + thinner.access.delay_s)
    )


def test_topology_rejects_self_path_and_unknown_hosts():
    topology, clients, thinner = build_lan(uniform_bandwidths(2, 2 * MBIT))
    with pytest.raises(TopologyError):
        topology.path(clients[0], clients[0])
    stranger = make_host("stranger", 2 * MBIT)
    with pytest.raises(TopologyError):
        topology.path(stranger, thinner)
    with pytest.raises(TopologyError):
        topology.host("nobody")


def test_topology_rejects_duplicate_hosts():
    topology = Topology()
    host = make_host("h", 2 * MBIT)
    topology.add_host(host)
    with pytest.raises(TopologyError):
        topology.add_host(host)


def test_build_lan_respects_per_client_delays():
    delays = [0.0, 0.1]
    topology, clients, thinner = build_lan(
        uniform_bandwidths(2, 2 * MBIT), client_delays_s=delays
    )
    rtt_near = topology.rtt(clients[0], thinner)
    rtt_far = topology.rtt(clients[1], thinner)
    assert rtt_far - rtt_near == pytest.approx(0.2)


def test_build_lan_validations():
    with pytest.raises(TopologyError):
        build_lan([])
    with pytest.raises(TopologyError):
        build_lan([2 * MBIT], client_delays_s=[0.0, 0.0])


def test_build_bottleneck_routes_through_shared_cable():
    topology, behind, direct, thinner, cable = build_bottleneck(
        bottlenecked_bandwidths_bps=uniform_bandwidths(3, 2 * MBIT),
        direct_bandwidths_bps=uniform_bandwidths(2, 2 * MBIT),
        bottleneck_bandwidth_bps=5 * MBIT,
    )
    behind_path = topology.path(behind[0], thinner)
    direct_path = topology.path(direct[0], thinner)
    assert cable.up in behind_path
    assert cable.up not in direct_path
    assert topology.shared_link("l") is cable


def test_build_dumbbell_places_victim_behind_bottleneck():
    topology, clients, victim, thinner, web_server, cable = build_dumbbell(
        left_bandwidths_bps=uniform_bandwidths(2, 2 * MBIT),
        bottleneck_bandwidth_bps=1 * MBIT,
        bottleneck_delay_s=milliseconds(100),
    )
    assert cable.up in topology.path(victim, web_server)
    assert cable.down in topology.path(web_server, victim)
    # RTT between victim and web server includes the 100 ms each way.
    assert topology.rtt(victim, web_server) >= 0.2


def test_uniform_bandwidths():
    assert uniform_bandwidths(3, 2 * MBIT) == [2 * MBIT] * 3
    assert uniform_bandwidths(0, 2 * MBIT) == []
    with pytest.raises(TopologyError):
        uniform_bandwidths(-1, 2 * MBIT)
