"""Tests for links, hosts, and topology routing.

The fabric section is a property suite over generated fat-tree and
leaf-spine fabrics: randomized shape parameters (drawn from a seeded RNG,
so each parametrization is a different but reproducible point) with
structural invariants asserted on every draw — host counts, per-tier link
counts and capacities, path existence between every client/thinner pair,
ECMP run-twice determinism, and hash balance across equal-cost paths.
"""

import random

import pytest

from repro.constants import MBIT, milliseconds
from repro.errors import TopologyError
from repro.simnet.host import make_host
from repro.simnet.link import DuplexLink, Link, path_delay, path_min_capacity
from repro.simnet.topology import (
    Topology,
    build_bottleneck,
    build_dumbbell,
    build_fat_tree,
    build_fleet,
    build_lan,
    build_leaf_spine,
    uniform_bandwidths,
)


def test_link_rejects_bad_parameters():
    with pytest.raises(TopologyError):
        Link("bad", 0.0)
    with pytest.raises(TopologyError):
        Link("bad", 1 * MBIT, delay_s=-1.0)


def test_duplex_link_directions_are_independent():
    cable = DuplexLink("c", 10 * MBIT, delay_s=0.01, down_capacity_bps=50 * MBIT)
    assert cable.up.capacity_bps == 10 * MBIT
    assert cable.down.capacity_bps == 50 * MBIT
    assert cable.rtt == pytest.approx(0.02)


def test_path_helpers():
    links = [Link("a", 2 * MBIT, 0.001), Link("b", 10 * MBIT, 0.002)]
    assert path_delay(links) == pytest.approx(0.003)
    assert path_min_capacity(links) == 2 * MBIT
    with pytest.raises(TopologyError):
        path_min_capacity([])


def test_host_properties():
    host = make_host("h", upload_bps=2 * MBIT, download_bps=8 * MBIT, delay_s=0.005,
                     extra_delay_s=0.05)
    assert host.upload_capacity_bps == 2 * MBIT
    assert host.download_capacity_bps == 8 * MBIT
    assert host.one_way_delay_to_access() == pytest.approx(0.055)


def test_topology_path_and_rtt():
    topology, clients, thinner = build_lan(uniform_bandwidths(2, 2 * MBIT))
    path = topology.path(clients[0], thinner)
    assert path[0] is clients[0].uplink
    assert path[-1] is thinner.downlink
    # Symmetric LAN: RTT is twice the sum of the two access delays.
    assert topology.rtt(clients[0], thinner) == pytest.approx(
        2 * (clients[0].access.delay_s + thinner.access.delay_s)
    )


def test_topology_rejects_self_path_and_unknown_hosts():
    topology, clients, thinner = build_lan(uniform_bandwidths(2, 2 * MBIT))
    with pytest.raises(TopologyError):
        topology.path(clients[0], clients[0])
    stranger = make_host("stranger", 2 * MBIT)
    with pytest.raises(TopologyError):
        topology.path(stranger, thinner)
    with pytest.raises(TopologyError):
        topology.host("nobody")


def test_topology_rejects_duplicate_hosts():
    topology = Topology()
    host = make_host("h", 2 * MBIT)
    topology.add_host(host)
    with pytest.raises(TopologyError):
        topology.add_host(host)


def test_build_lan_respects_per_client_delays():
    delays = [0.0, 0.1]
    topology, clients, thinner = build_lan(
        uniform_bandwidths(2, 2 * MBIT), client_delays_s=delays
    )
    rtt_near = topology.rtt(clients[0], thinner)
    rtt_far = topology.rtt(clients[1], thinner)
    assert rtt_far - rtt_near == pytest.approx(0.2)


def test_build_lan_validations():
    with pytest.raises(TopologyError):
        build_lan([])
    with pytest.raises(TopologyError):
        build_lan([2 * MBIT], client_delays_s=[0.0, 0.0])


def test_build_bottleneck_routes_through_shared_cable():
    topology, behind, direct, thinner, cable = build_bottleneck(
        bottlenecked_bandwidths_bps=uniform_bandwidths(3, 2 * MBIT),
        direct_bandwidths_bps=uniform_bandwidths(2, 2 * MBIT),
        bottleneck_bandwidth_bps=5 * MBIT,
    )
    behind_path = topology.path(behind[0], thinner)
    direct_path = topology.path(direct[0], thinner)
    assert cable.up in behind_path
    assert cable.up not in direct_path
    assert topology.shared_link("l") is cable


def test_build_dumbbell_places_victim_behind_bottleneck():
    topology, clients, victim, thinner, web_server, cable = build_dumbbell(
        left_bandwidths_bps=uniform_bandwidths(2, 2 * MBIT),
        bottleneck_bandwidth_bps=1 * MBIT,
        bottleneck_delay_s=milliseconds(100),
    )
    assert cable.up in topology.path(victim, web_server)
    assert cable.down in topology.path(web_server, victim)
    # RTT between victim and web server includes the 100 ms each way.
    assert topology.rtt(victim, web_server) >= 0.2


# ---------------------------------------------------------------------------
# Fabric property suite (fat-tree and leaf-spine)
# ---------------------------------------------------------------------------


def _leaf_spine_draw(rng):
    """A randomized but reproducible leaf-spine population."""
    leaves = rng.randint(2, 6)
    spines = rng.randint(2, 4)
    clients = rng.randint(12, 40)
    shards = rng.randint(2, 8)
    oversub = rng.choice([1.0, 2.0, 4.0])
    pairs = rng.randint(0, 4)
    return dict(
        client_bandwidths_bps=uniform_bandwidths(clients, 2 * MBIT),
        thinner_shards=shards,
        leaves=leaves,
        spines=spines,
        oversubscription=oversub,
        cross_traffic_pairs=pairs,
        ecmp_seed=rng.randint(0, 2**31),
    )


def _fat_tree_draw(rng):
    """A randomized but reproducible fat-tree population."""
    k = rng.choice([2, 4, 6])
    clients = rng.randint(12, 40)
    shards = rng.randint(2, 8)
    oversub = rng.choice([1.0, 2.0, 4.0])
    pairs = rng.randint(0, 4)
    return dict(
        client_bandwidths_bps=uniform_bandwidths(clients, 2 * MBIT),
        thinner_shards=shards,
        k=k,
        oversubscription=oversub,
        cross_traffic_pairs=pairs,
        ecmp_seed=rng.randint(0, 2**31),
    )


def _path_names(topology, src, dst):
    return tuple(link.name for link in topology.path(src, dst))


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_leaf_spine_structure_and_paths(seed):
    """Host/link counts, uplink sizing, and universal reachability."""
    rng = random.Random(seed)
    kwargs = _leaf_spine_draw(rng)
    topology, clients, thinners = build_leaf_spine(**kwargs)

    expected_hosts = (
        len(kwargs["client_bandwidths_bps"])
        + kwargs["thinner_shards"]
        + 2 * kwargs["cross_traffic_pairs"]
    )
    assert len(topology.hosts) == expected_hosts
    assert len(clients) == len(kwargs["client_bandwidths_bps"])
    assert len(thinners) == kwargs["thinner_shards"]
    assert len(topology.cross_pairs) == kwargs["cross_traffic_pairs"]

    # One shared cable per (leaf, spine) pair, each sized so the mesh is
    # nonblocking for the aggregate client upload at 1:1 oversubscription.
    leaves, spines = kwargs["leaves"], kwargs["spines"]
    uplinks = topology.shared_links
    assert len(uplinks) == leaves * spines
    aggregate = sum(kwargs["client_bandwidths_bps"])
    expected_capacity = aggregate / (leaves * spines * kwargs["oversubscription"])
    for cable in uplinks:
        assert cable.up.capacity_bps == pytest.approx(expected_capacity)
        assert cable.down.capacity_bps == pytest.approx(expected_capacity)

    # Every client reaches every thinner (and back) over a valid path:
    # 2 links when they share a leaf, 4 links across the fabric.
    for client in clients:
        for thinner in thinners:
            for src, dst in ((client, thinner), (thinner, client)):
                path = topology.path(src, dst)
                assert path[0] is src.uplink
                assert path[-1] is dst.downlink
                assert path_min_capacity(path) > 0
                same_leaf = topology.edge_of(client) == topology.edge_of(thinner)
                assert len(path) == (2 if same_leaf else 4)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_fat_tree_structure_and_paths(seed):
    """Per-tier link counts/capacities and tier-appropriate path lengths."""
    rng = random.Random(seed)
    kwargs = _fat_tree_draw(rng)
    topology, clients, thinners = build_fat_tree(**kwargs)

    k = kwargs["k"]
    half = k // 2
    assert topology.edges == k * half
    expected_hosts = (
        len(kwargs["client_bandwidths_bps"])
        + kwargs["thinner_shards"]
        + 2 * kwargs["cross_traffic_pairs"]
    )
    assert len(topology.hosts) == expected_hosts

    # k pods x half x half edge-agg cables plus k pods x half^2 core cables.
    assert len(topology.shared_links) == 2 * k * half * half
    aggregate = sum(kwargs["client_bandwidths_bps"])
    edge_capacity = aggregate / (k * half * half)
    core_capacity = edge_capacity / kwargs["oversubscription"]
    for pod in range(k):
        for edge in range(half):
            for agg in range(half):
                cable = topology.edge_agg_link(pod, edge, agg)
                assert cable.up.capacity_bps == pytest.approx(edge_capacity)
        for core in range(half * half):
            cable = topology.pod_core_link(pod, core)
            assert cable.up.capacity_bps == pytest.approx(core_capacity)

    # Path length is fixed by the tier distance between the endpoints'
    # edge switches: 2 same-edge, 4 same-pod, 6 inter-pod.
    for client in clients:
        for thinner in thinners:
            path = topology.path(client, thinner)
            assert path[0] is client.uplink
            assert path[-1] is thinner.downlink
            assert path_min_capacity(path) > 0
            src_pod = topology.edge_of(client) // half
            dst_pod = topology.edge_of(thinner) // half
            if topology.edge_of(client) == topology.edge_of(thinner):
                assert len(path) == 2
            elif src_pod == dst_pod:
                assert len(path) == 4
            else:
                assert len(path) == 6


@pytest.mark.parametrize("builder,draw", [
    (build_leaf_spine, _leaf_spine_draw),
    (build_fat_tree, _fat_tree_draw),
])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_ecmp_is_deterministic_across_rebuilds(builder, draw, seed):
    """The same build arguments pick the same equal-cost path every time."""
    rng = random.Random(seed)
    kwargs = draw(rng)
    first, clients_a, thinners_a = builder(**kwargs)
    second, clients_b, thinners_b = builder(**kwargs)
    for client_a, client_b in zip(clients_a, clients_b):
        for thinner_a, thinner_b in zip(thinners_a, thinners_b):
            assert _path_names(first, client_a, thinner_a) == _path_names(
                second, client_b, thinner_b
            )
    # Within one build, asking twice returns the memoized object itself.
    path = first.path(clients_a[0], thinners_a[0])
    assert first.path(clients_a[0], thinners_a[0]) is path


def test_ecmp_seed_moves_path_choices():
    """A different ecmp seed re-rolls at least one equal-cost choice."""
    kwargs = dict(
        client_bandwidths_bps=uniform_bandwidths(24, 2 * MBIT),
        thinner_shards=4,
        leaves=4,
        spines=3,
    )
    base, clients, thinners = build_leaf_spine(ecmp_seed=0, **kwargs)
    other, clients_b, thinners_b = build_leaf_spine(ecmp_seed=1, **kwargs)
    moved = sum(
        _path_names(base, client, thinner)
        != _path_names(other, client_b, thinner_b)
        for client, client_b in zip(clients, clients_b)
        for thinner, thinner_b in zip(thinners, thinners_b)
    )
    assert moved > 0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_leaf_spine_ecmp_balance_across_spines(seed):
    """Cross-leaf flow pairs spread across the equal-cost spines.

    CRC32 over distinct (src, dst) names should use every spine and keep
    the spread within a loose constant factor of uniform — the property
    that makes the oversubscribed core contend evenly rather than
    collapsing onto one uplink.
    """
    rng = random.Random(seed)
    spines = rng.randint(2, 4)
    topology, clients, thinners = build_leaf_spine(
        uniform_bandwidths(60, 2 * MBIT),
        thinner_shards=6,
        leaves=4,
        spines=spines,
        ecmp_seed=rng.randint(0, 2**31),
    )
    spine_hits = [0] * spines
    for client in clients:
        for thinner in thinners:
            if topology.edge_of(client) == topology.edge_of(thinner):
                continue
            path = topology.path(client, thinner)
            # The second hop is the leaf->spine cable; its name encodes
            # the spine index the ECMP hash picked.
            spine_hits[int(path[1].name.split("-spine")[1].split(".")[0])] += 1
    total = sum(spine_hits)
    assert total > 0
    mean = total / spines
    for hits in spine_hits:
        assert 0.5 * mean <= hits <= 1.6 * mean, spine_hits


def test_fabric_builders_validate_arguments():
    bandwidths = uniform_bandwidths(8, 2 * MBIT)
    with pytest.raises(TopologyError):
        build_fat_tree(bandwidths, thinner_shards=2, k=3)  # odd k
    with pytest.raises(TopologyError):
        build_fat_tree(bandwidths, thinner_shards=2, oversubscription=0.0)
    with pytest.raises(TopologyError):
        build_leaf_spine(bandwidths, thinner_shards=2, leaves=0)
    with pytest.raises(TopologyError):
        build_leaf_spine(bandwidths, thinner_shards=2, spines=0)
    with pytest.raises(TopologyError):
        build_leaf_spine([], thinner_shards=1)
    with pytest.raises(TopologyError, match="must not exceed the client count"):
        build_leaf_spine(bandwidths, thinner_shards=9)
    with pytest.raises(TopologyError, match="must not exceed the client count"):
        build_fat_tree(bandwidths, thinner_shards=9)


def test_build_fleet_rejects_more_shards_than_clients():
    """Empty shards would skew health baselines; the star builder says no."""
    with pytest.raises(TopologyError, match="must not exceed the client count"):
        build_fleet(uniform_bandwidths(3, 2 * MBIT), thinner_shards=4)
    # The boundary case (one client per shard) stays legal.
    topology, clients, thinners = build_fleet(
        uniform_bandwidths(3, 2 * MBIT), thinner_shards=3
    )
    assert len(thinners) == 3


def test_uniform_bandwidths():
    assert uniform_bandwidths(3, 2 * MBIT) == [2 * MBIT] * 3
    assert uniform_bandwidths(0, 2 * MBIT) == []
    with pytest.raises(TopologyError):
        uniform_bandwidths(-1, 2 * MBIT)
