"""Tests for the emulated server (service times, callbacks, SUSPEND/RESUME/ABORT)."""

import pytest

from repro.errors import ServerError
from repro.httpd.messages import RequestState, new_request
from repro.httpd.server import EmulatedServer, ServerState
from repro.rng import RandomStream
from repro.simnet.engine import Engine


def make_server(capacity=10.0, jitter=0.1, seed=0):
    engine = Engine()
    server = EmulatedServer(engine, capacity, RandomStream(seed, "server"), jitter=jitter)
    return engine, server


def test_capacity_must_be_positive():
    engine = Engine()
    with pytest.raises(ServerError):
        EmulatedServer(engine, 0.0, RandomStream(0, "s"))


def test_serves_one_request_with_jittered_service_time():
    engine, server = make_server(capacity=10.0)
    done = []
    server.on_request_done = lambda request: done.append(engine.now)
    request = new_request("c", issued_at=0.0)
    server.submit(request)
    assert server.busy
    engine.run()
    assert len(done) == 1
    assert 0.09 <= done[0] <= 0.11
    assert request.state == RequestState.SERVED
    assert request.service_time == pytest.approx(done[0])
    assert server.state == ServerState.IDLE


def test_on_ready_fires_after_completion():
    engine, server = make_server()
    order = []
    server.on_request_done = lambda request: order.append("done")
    server.on_ready = lambda: order.append("ready")
    server.submit(new_request("c", issued_at=0.0))
    engine.run()
    assert order == ["done", "ready"]


def test_submit_while_busy_raises():
    engine, server = make_server()
    server.submit(new_request("c", issued_at=0.0))
    with pytest.raises(ServerError):
        server.submit(new_request("c", issued_at=0.0))


def test_difficulty_scales_service_time():
    engine, server = make_server(capacity=10.0, jitter=0.0)
    easy_done = []
    server.on_request_done = lambda request: easy_done.append(engine.now)
    server.submit(new_request("c", issued_at=0.0, difficulty=1.0))
    engine.run()
    engine2, server2 = make_server(capacity=10.0, jitter=0.0)
    hard_done = []
    server2.on_request_done = lambda request: hard_done.append(engine2.now)
    server2.submit(new_request("c", issued_at=0.0, difficulty=5.0))
    engine2.run()
    assert hard_done[0] == pytest.approx(5 * easy_done[0])


def test_suspend_preserves_remaining_work():
    engine, server = make_server(capacity=1.0, jitter=0.0)
    done = []
    server.on_request_done = lambda request: done.append(engine.now)
    request = new_request("c", issued_at=0.0)
    server.submit(request)

    engine.run(until=0.4)
    suspended = server.suspend()
    assert suspended is request
    assert request.state == RequestState.SUSPENDED
    assert request.suspend_count == 1
    assert not server.busy
    assert server.remaining_work(request) == pytest.approx(0.6)

    # Idle for a while, then resume: total work is still one second.
    engine.run(until=2.0)
    server.resume(request)
    engine.run()
    assert done == [pytest.approx(2.6)]
    assert server.stats.suspensions == 1
    assert server.stats.resumptions == 1


def test_suspend_without_active_request_raises():
    engine, server = make_server()
    with pytest.raises(ServerError):
        server.suspend()


def test_resume_unknown_request_raises():
    engine, server = make_server()
    with pytest.raises(ServerError):
        server.resume(new_request("c", issued_at=0.0))


def test_abort_in_progress_frees_server_and_notifies_ready():
    engine, server = make_server(capacity=1.0, jitter=0.0)
    ready = []
    server.on_ready = lambda: ready.append(engine.now)
    request = new_request("c", issued_at=0.0)
    server.submit(request)
    engine.run(until=0.3)
    server.abort(request)
    assert not server.busy
    assert request.state == RequestState.DROPPED
    assert server.stats.aborted == 1
    assert ready == [pytest.approx(0.3)]
    engine.run()
    assert server.stats.served == 0


def test_stats_track_classes_and_categories():
    engine, server = make_server(capacity=10.0, jitter=0.0)
    server.submit(new_request("good-1", issued_at=0.0, client_class="good", category="cat-1"))
    engine.run()
    server.submit(new_request("bad-1", issued_at=engine.now, client_class="bad", category="cat-2"))
    engine.run()
    allocation = server.stats.allocation_by_class()
    assert allocation == {"good": 0.5, "bad": 0.5}
    assert server.stats.allocation_by_category() == {"cat-1": 0.5, "cat-2": 0.5}
    assert server.stats.busy_time == pytest.approx(0.2)
    assert server.utilisation(engine.now) == pytest.approx(0.2 / engine.now)


def test_utilisation_requires_positive_duration():
    engine, server = make_server()
    with pytest.raises(ServerError):
        server.utilisation(0.0)


def test_mean_service_time():
    engine, server = make_server(capacity=50.0)
    assert server.mean_service_time == pytest.approx(0.02)
