"""Tests for max-min fair allocation (progressive filling)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MBIT
from repro.simnet.bandwidth import link_utilisations, max_min_fair_rates, waterfill
from repro.simnet.flow import Flow
from repro.simnet.host import make_host
from repro.simnet.link import Link


def _flow(path, cap=None):
    src = make_host("src", 10 * MBIT)
    dst = make_host("dst", 10 * MBIT)
    return Flow(src, dst, path, rate_cap_bps=cap)


def test_single_flow_gets_full_link():
    link = Link("l", 10 * MBIT)
    flow = _flow([link])
    rates = max_min_fair_rates([flow])
    assert rates[flow] == pytest.approx(10 * MBIT)


def test_two_flows_split_link_evenly():
    link = Link("l", 10 * MBIT)
    flows = [_flow([link]) for _ in range(2)]
    rates = max_min_fair_rates(flows)
    assert rates[flows[0]] == pytest.approx(5 * MBIT)
    assert rates[flows[1]] == pytest.approx(5 * MBIT)


def test_rate_cap_limits_a_flow_and_frees_capacity():
    link = Link("l", 10 * MBIT)
    capped = _flow([link], cap=2 * MBIT)
    open_flow = _flow([link])
    rates = max_min_fair_rates([capped, open_flow])
    assert rates[capped] == pytest.approx(2 * MBIT)
    assert rates[open_flow] == pytest.approx(8 * MBIT)


def test_max_min_classic_parking_lot():
    """One long flow across both links, one short flow per link."""
    l1 = Link("l1", 10 * MBIT)
    l2 = Link("l2", 10 * MBIT)
    long_flow = _flow([l1, l2])
    short1 = _flow([l1])
    short2 = _flow([l2])
    rates = max_min_fair_rates([long_flow, short1, short2])
    assert rates[long_flow] == pytest.approx(5 * MBIT)
    assert rates[short1] == pytest.approx(5 * MBIT)
    assert rates[short2] == pytest.approx(5 * MBIT)


def test_bottleneck_then_residual_share():
    """Flows limited elsewhere leave their unused share to the others."""
    narrow = Link("narrow", 1 * MBIT)
    wide = Link("wide", 10 * MBIT)
    limited = _flow([narrow, wide])
    free = _flow([wide])
    rates = max_min_fair_rates([limited, free])
    assert rates[limited] == pytest.approx(1 * MBIT)
    assert rates[free] == pytest.approx(9 * MBIT)


def test_empty_flow_list():
    assert max_min_fair_rates([]) == {}


def test_waterfill_excluded_link_acts_as_cap():
    """A link left out of the constraint set is folded into the flow's cap."""
    uplink = Link("up", 2 * MBIT)
    downlink = Link("down", 100 * MBIT)
    flow = _flow([uplink, downlink])
    rates = waterfill([flow], [downlink], {flow: uplink.capacity_bps})
    assert rates[flow] == pytest.approx(2 * MBIT)


def test_link_utilisations_reflect_assigned_rates():
    link = Link("l", 10 * MBIT)
    flows = [_flow([link]) for _ in range(2)]
    rates = max_min_fair_rates(flows)
    for flow in flows:
        flow.rate_bps = rates[flow]
    utilisation = link_utilisations(flows)
    assert utilisation[link] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Property-based tests: feasibility, work conservation, cap respect
# ---------------------------------------------------------------------------

@st.composite
def random_scenario(draw):
    """A random set of links and flows over them."""
    link_count = draw(st.integers(min_value=1, max_value=5))
    links = [
        Link(f"l{i}", draw(st.floats(min_value=0.5, max_value=50.0)) * MBIT)
        for i in range(link_count)
    ]
    flow_count = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for _ in range(flow_count):
        path_size = draw(st.integers(min_value=1, max_value=link_count))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=link_count - 1),
                min_size=path_size,
                max_size=path_size,
                unique=True,
            )
        )
        cap = draw(st.one_of(st.none(), st.floats(min_value=0.1, max_value=20.0)))
        flows.append(_flow([links[i] for i in indices], cap=None if cap is None else cap * MBIT))
    return links, flows


@settings(max_examples=80, deadline=None)
@given(random_scenario())
def test_allocation_is_feasible_and_respects_caps(scenario):
    """Property: no link over capacity, no flow over its cap, rates non-negative."""
    links, flows = scenario
    rates = max_min_fair_rates(flows)
    for flow in flows:
        assert rates[flow] >= 0.0
        assert rates[flow] <= flow.effective_cap() * (1 + 1e-9)
    for link in links:
        load = sum(rates[flow] for flow in flows if link in flow.path)
        assert load <= link.capacity_bps * (1 + 1e-6)


@settings(max_examples=80, deadline=None)
@given(random_scenario())
def test_allocation_is_work_conserving(scenario):
    """Property: every flow is limited by a saturated link or its own cap."""
    links, flows = scenario
    rates = max_min_fair_rates(flows)
    loads = {link: sum(rates[f] for f in flows if link in f.path) for link in links}
    for flow in flows:
        at_cap = rates[flow] >= flow.effective_cap() - 1.0  # 1 bit/s slack
        on_saturated_link = any(
            loads[link] >= link.capacity_bps - 1.0 for link in flow.path
        )
        assert at_cap or on_saturated_link


@settings(max_examples=60, deadline=None)
@given(random_scenario())
def test_equal_flows_get_equal_rates(scenario):
    """Property: flows with identical paths and caps receive identical rates."""
    links, flows = scenario
    rates = max_min_fair_rates(flows)
    by_signature = {}
    for flow in flows:
        signature = (tuple(id(link) for link in flow.path), flow.effective_cap())
        by_signature.setdefault(signature, []).append(rates[flow])
    for values in by_signature.values():
        assert max(values) - min(values) < 1.0  # within 1 bit/s
