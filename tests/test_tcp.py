"""Tests for the slow-start ramp and transfer-time estimates."""

import pytest

from repro.constants import MBIT
from repro.simnet.engine import Engine
from repro.simnet.network import FluidNetwork
from repro.simnet.tcp import SlowStartRamp, slow_start_rounds, slow_start_transfer_time
from repro.simnet.topology import build_lan, uniform_bandwidths


def make(bandwidth=2 * MBIT):
    topology, hosts, thinner = build_lan(uniform_bandwidths(1, bandwidth))
    engine = Engine()
    network = FluidNetwork(engine, topology)
    return engine, network, hosts[0], thinner


def test_zero_rtt_means_no_ramp():
    engine, network, client, thinner = make()
    ramp = SlowStartRamp(network)
    flow = network.send(client, thinner)
    ramp.attach(flow, rtt=0.0)
    assert flow.rate_cap_bps is None


def test_ramp_caps_then_doubles_then_releases():
    engine, network, client, thinner = make(bandwidth=100 * MBIT)
    ramp = SlowStartRamp(network)
    flow = network.send(client, thinner)
    rtt = 0.1
    ramp.attach(flow, rtt=rtt, ceiling_bps=100 * MBIT)
    initial = ramp.initial_rate(rtt)
    assert flow.rate_cap_bps == pytest.approx(initial)
    engine.run(until=0.15)
    assert flow.rate_cap_bps == pytest.approx(2 * initial)
    # After enough doublings the cap is removed entirely.
    engine.run(until=2.0)
    assert flow.rate_cap_bps is None


def test_ramp_never_caps_above_ceiling():
    engine, network, client, thinner = make(bandwidth=1 * MBIT)
    ramp = SlowStartRamp(network)
    flow = network.send(client, thinner)
    # Initial window over a tiny RTT already exceeds the 1 Mbit/s ceiling.
    ramp.attach(flow, rtt=0.001)
    assert flow.rate_cap_bps is None


def test_ramp_slows_initial_delivery():
    """With a large RTT the first seconds deliver fewer bytes than line rate."""
    engine, network, client, thinner = make(bandwidth=2 * MBIT)
    ramp = SlowStartRamp(network)
    flow = network.send(client, thinner)
    ramp.attach(flow, rtt=0.3)
    engine.run(until=1.0)
    assert network.delivered_bytes(flow) < 2 * MBIT * 1.0 / 8


def test_slow_start_rounds():
    assert slow_start_rounds(0) == 0
    assert slow_start_rounds(1) == 1
    # 2 + 4 + 8 segments cover 10 segments worth of data in 3 rounds.
    assert slow_start_rounds(10 * 1460) == 3


def test_transfer_time_monotone_in_size_and_rtt():
    small = slow_start_transfer_time(1_000, rtt=0.1, bottleneck_bps=1 * MBIT)
    large = slow_start_transfer_time(100_000, rtt=0.1, bottleneck_bps=1 * MBIT)
    assert large > small
    fast_rtt = slow_start_transfer_time(50_000, rtt=0.05, bottleneck_bps=1 * MBIT)
    slow_rtt = slow_start_transfer_time(50_000, rtt=0.5, bottleneck_bps=1 * MBIT)
    assert slow_rtt > fast_rtt


def test_transfer_time_degenerate_cases():
    assert slow_start_transfer_time(0, rtt=0.1, bottleneck_bps=1 * MBIT) == 0.0
    # Zero RTT degenerates to pure serialisation delay.
    assert slow_start_transfer_time(1_000_000, rtt=0.0, bottleneck_bps=8 * MBIT) == pytest.approx(1.0)


def test_large_transfer_approaches_bandwidth_limit():
    size = 10_000_000
    bottleneck = 10 * MBIT
    latency = slow_start_transfer_time(size, rtt=0.05, bottleneck_bps=bottleneck)
    serialisation = size * 8 / bottleneck
    assert latency >= serialisation
    assert latency < serialisation * 1.5
