"""Tests for payment channels (POST streams, quiescence, accounting)."""

import pytest

from repro.constants import MBIT
from repro.core.payment import PaymentChannel, PaymentChannelState
from repro.errors import PaymentError
from repro.simnet.engine import Engine
from repro.simnet.network import FluidNetwork
from repro.simnet.topology import build_lan, uniform_bandwidths


def make_channel(post_bytes=250_000, quiescent_rtts=2.0, bandwidth=2 * MBIT):
    topology, hosts, thinner = build_lan(uniform_bandwidths(1, bandwidth))
    engine = Engine()
    network = FluidNetwork(engine, topology)
    channel = PaymentChannel(
        network, hosts[0], thinner, request_id=1,
        post_bytes=post_bytes, quiescent_rtts=quiescent_rtts,
    )
    return engine, network, channel


def test_channel_parameter_validation():
    topology, hosts, thinner = build_lan(uniform_bandwidths(1, 2 * MBIT))
    network = FluidNetwork(Engine(), topology)
    with pytest.raises(PaymentError):
        PaymentChannel(network, hosts[0], thinner, request_id=1, post_bytes=0)
    with pytest.raises(PaymentError):
        PaymentChannel(network, hosts[0], thinner, request_id=1, quiescent_rtts=-1)


def test_open_starts_paying_and_cannot_reopen():
    engine, network, channel = make_channel()
    channel.open()
    assert channel.is_open
    assert channel.state == PaymentChannelState.PAYING
    with pytest.raises(PaymentError):
        channel.open()


def test_bytes_accumulate_at_access_rate():
    engine, network, channel = make_channel(post_bytes=10_000_000)
    channel.open()
    engine.run(until=2)
    # 2 Mbit/s for 2 s = 0.5 MB.
    assert channel.total_paid() == pytest.approx(500_000)
    assert channel.payment_rate_bps() == pytest.approx(2 * MBIT)


def test_posts_repeat_after_quiescent_gap():
    engine, network, channel = make_channel(post_bytes=250_000, quiescent_rtts=2.0)
    channel.open()
    # One POST takes 1 s at 2 Mbit/s; the gap is 2 * RTT = 8 ms.
    engine.run(until=0.5)
    assert channel.posts_completed == 0
    engine.run(until=1.004)
    assert channel.posts_completed == 1
    # During the gap no new bytes flow.
    paid_during_gap = channel.total_paid()
    engine.run(until=1.007)
    assert channel.total_paid() == pytest.approx(paid_during_gap)
    # After the gap the next POST starts.
    engine.run(until=3.0)
    assert channel.posts_completed >= 1
    assert channel.total_paid() > paid_during_gap


def test_close_commits_in_flight_bytes_and_stops_future_posts():
    engine, network, channel = make_channel(post_bytes=1_000_000)
    channel.open()
    engine.run(until=1)
    total = channel.close()
    assert total == pytest.approx(250_000)
    assert channel.state == PaymentChannelState.CLOSED
    assert not channel.is_open
    # Nothing more accrues after close.
    engine.run(until=5)
    assert channel.total_paid() == pytest.approx(250_000)
    assert network.active_flow_count() == 0
    # Closing twice is harmless.
    assert channel.close() == pytest.approx(250_000)


def test_peek_balance_matches_synced_balance():
    engine, network, channel = make_channel(post_bytes=5_000_000)
    channel.open()
    engine.run(until=1.5)
    peeked = channel.peek_balance(engine.now)
    assert peeked == pytest.approx(channel.balance(sync=True))


def test_consume_resets_the_bid_but_not_the_total():
    engine, network, channel = make_channel(post_bytes=10_000_000)
    channel.open()
    engine.run(until=2)
    consumed = channel.consume()
    assert consumed == pytest.approx(500_000)
    assert channel.balance() == pytest.approx(0.0)
    assert channel.total_paid() == pytest.approx(500_000)
    engine.run(until=3)
    assert channel.balance() == pytest.approx(250_000)
    assert channel.total_paid() == pytest.approx(750_000)


def test_post_completion_callback():
    completions = []
    engine, network, channel = make_channel(post_bytes=250_000)
    channel.on_post_complete = lambda ch, count: completions.append(count)
    channel.open()
    engine.run(until=2.2)
    assert completions and completions[0] == 1
