"""Tests for the pipeline (layered admission) defense."""

import pytest

from repro.clients.bad import BadClient
from repro.clients.good import GoodClient
from repro.constants import MBIT
from repro.core.auction import VirtualAuctionThinner
from repro.core.frontend import Deployment, DeploymentConfig
from repro.defenses import DefenseSpec, PipelineDefense
from repro.defenses.pipeline import PipelineThinner as _PipelineThinner
from repro.errors import DefenseError
from repro.metrics.collector import RunResult
from repro.scenarios.registry import build_scenario
from repro.simnet.topology import build_lan, uniform_bandwidths


def build_deployment(defense, good=2, bad=2, capacity=8.0, seed=0):
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(good + bad, 2 * MBIT))
    deployment = Deployment(
        topology,
        thinner_host,
        DeploymentConfig(server_capacity_rps=capacity, defense=defense, seed=seed),
    )
    for host in hosts[:good]:
        GoodClient(deployment, host)
    for host in hosts[good:]:
        BadClient(deployment, host)
    return deployment


def test_pipeline_builds_thinner_proxy_with_stages():
    deployment = build_deployment("ratelimit>speakup")
    assert isinstance(deployment.thinner, _PipelineThinner)
    assert isinstance(deployment.thinner.inner, VirtualAuctionThinner)
    assert [stage.name for stage in deployment.thinner.stages] == ["ratelimit"]


def test_single_stage_pipeline_is_the_admission_thinner_itself():
    defense = PipelineDefense(stages=("speakup",))
    topology, _hosts, thinner_host = build_lan(uniform_bandwidths(2, 2 * MBIT))
    deployment = Deployment(topology, thinner_host, DeploymentConfig())
    thinner = defense.build_thinner(deployment)
    assert isinstance(thinner, VirtualAuctionThinner)


def test_pipeline_rejects_non_screening_front_stage():
    with pytest.raises(DefenseError, match="filter stage"):
        PipelineDefense(stages=("speakup", "none"))
    with pytest.raises(DefenseError, match="at least one stage"):
        PipelineDefense(stages=())
    with pytest.raises(DefenseError, match="do not nest"):
        PipelineDefense(stages=(DefenseSpec("pipeline"), DefenseSpec("speakup")))


def test_pipeline_screens_and_attributes_drops_per_stage():
    deployment = build_deployment(
        DefenseSpec.make(
            "pipeline",
            stages=(
                DefenseSpec.make("ratelimit", allowed_rps=4.0),
                DefenseSpec.make("speakup"),
            ),
        )
    )
    deployment.run(12.0)
    result = deployment.results()

    stages = result.stages
    assert [stage.name for stage in stages] == ["ratelimit"]
    stage = stages[0]
    # Bad clients fire at 40 req/s against a 4 req/s bucket: most of their
    # requests must be screened out before the auction.
    assert stage.rejected > 0
    assert stage.screened >= stage.rejected
    assert stage.passed == stage.screened - stage.rejected

    counters = deployment.network.counters
    assert counters.filter_screened == stage.screened
    assert counters.filter_rejected == stage.rejected

    assert result.defense == "ratelimit>speakup"
    # Screened-out requests count as received-then-dropped at the thinner.
    stats = deployment.thinner.stats
    assert stats.requests_dropped >= stage.rejected
    assert stats.requests_received >= stage.screened


def test_pipeline_stage_metrics_round_trip():
    deployment = build_deployment("ratelimit>speakup")
    deployment.run(8.0)
    result = deployment.results()
    rebuilt = RunResult.from_dict(result.to_dict())
    assert [stage.to_dict() for stage in rebuilt.stages] == [
        stage.to_dict() for stage in result.stages
    ]
    assert rebuilt.shards[0].stages[0].screened > 0


def test_layered_lan_scenario_beats_undefended_baseline():
    layered_spec = build_scenario(
        "layered-lan", good_clients=3, bad_clients=3, capacity_rps=12.0,
        allowed_rps=4.0, duration=10.0,
    )
    layered = layered_spec.run()
    undefended = layered_spec.with_value("defense_spec", DefenseSpec("none")).run()
    assert layered.stages[0].rejected > 0
    assert layered.good_allocation >= undefended.good_allocation
    assert undefended.stages == []


def test_pipeline_payment_flows_through_register_payment():
    deployment = build_deployment("ratelimit>speakup")
    deployment.run(10.0)
    # Requests that passed the filter were auctioned: payment was sunk.
    assert deployment.thinner.stats.payment_bytes_sunk > 0
    assert deployment.thinner.prices.going_rate() >= 0.0
