"""Tests for the tracer."""

from repro.simnet.trace import TraceRecord, Tracer


def test_record_and_query_by_kind():
    tracer = Tracer()
    tracer.record("flow_start", flow_id=1)
    tracer.record("flow_stop", flow_id=1)
    tracer.record("flow_start", flow_id=2)
    assert len(tracer) == 3
    assert len(tracer.of_kind("flow_start")) == 2
    assert tracer.kinds() == {"flow_start": 2, "flow_stop": 1}


def test_record_field_access():
    record = TraceRecord("auction", {"winner": 7, "price": 100.0})
    assert record.winner == 7
    assert record.get("price") == 100.0
    assert record.get("missing", "default") == "default"
    try:
        record.nonexistent
    except AttributeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected AttributeError")


def test_where_predicate():
    tracer = Tracer()
    for index in range(5):
        tracer.record("tick", value=index)
    big = tracer.where(lambda record: record.value >= 3)
    assert [record.value for record in big] == [3, 4]


def test_max_records_bound():
    tracer = Tracer(max_records=2)
    for index in range(5):
        tracer.record("tick", value=index)
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    tracer.enabled = False
    tracer.record("tick")
    assert len(tracer) == 0


def test_clear():
    tracer = Tracer()
    tracer.record("tick")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0
    assert list(iter(tracer)) == []
