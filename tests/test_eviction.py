"""Dedicated coverage for contender eviction (``max_contenders`` / §6).

The paper motivates a bound on concurrent contenders with connection-
descriptor pressure: when a new request arrives at a full thinner, the
lowest-paying contender is dropped (ties evict the *latest* arrival), and
the arrival that triggered the eviction is itself exempt.  These tests
drive ``ThinnerBase`` directly with stub clients for precise control, plus
one end-to-end run checking the bid index stays consistent under eviction
churn.
"""

import pytest

from repro.constants import MBIT
from repro.core.auction import VirtualAuctionThinner
from repro.core.frontend import Deployment, DeploymentConfig
from repro.clients.population import build_mixed_population
from repro.httpd.messages import new_request
from repro.simnet.topology import build_lan, uniform_bandwidths


class StubClient:
    """Just enough client for ThinnerBase: a host, callbacks, optional paying."""

    def __init__(self, host, deployment=None, pays=False):
        self.host = host
        self.deployment = deployment
        self.pays = pays
        self.encouraged = []
        self.responses = []
        self.drops = []

    def on_encouraged(self, request):
        self.encouraged.append(request)
        if self.pays:
            channel = self.deployment.payment_channel(self.host, request)
            channel.open()
            self.deployment.thinner.register_payment(request, channel)

    def on_response(self, request, response):
        self.responses.append(request)

    def on_dropped(self, request, reason):
        self.drops.append((request, reason))


@pytest.fixture
def bounded_thinner():
    """A VirtualAuctionThinner with max_contenders=3 and a busy server."""
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(6, 2 * MBIT))
    config = DeploymentConfig(server_capacity_rps=10.0, max_contenders=3, seed=0)
    deployment = Deployment(topology, thinner_host, config)
    thinner = deployment.thinner
    assert isinstance(thinner, VirtualAuctionThinner)
    # Force the contending path: pretend a request is already being served.
    thinner._server_idle = False
    clients = [StubClient(host, deployment) for host in hosts]
    return deployment, thinner, clients


def arrive(deployment, thinner, client, issued_at=None):
    request = new_request(
        client_id=client.host.name,
        issued_at=deployment.engine.now if issued_at is None else issued_at,
        client_class="good",
    )
    thinner.receive_request(request, client)
    return request


def test_evict_on_arrival_keeps_bound_and_drops_lowest_bidder(bounded_thinner):
    deployment, thinner, clients = bounded_thinner
    engine = deployment.engine

    # The first two contenders pay; the third never opens a channel.
    clients[0].pays = clients[1].pays = True
    requests = []
    for client in clients[:3]:
        requests.append(arrive(deployment, thinner, client))
        engine.run(until=engine.now + 0.01)
    assert thinner.contending_count == 3

    # Let the encouragement round-trips complete and some payment flow.
    engine.run(until=engine.now + 0.5)
    bids = [cont.peek_bid(engine.now) for cont in thinner.contenders()]
    assert max(bids) > 0.0

    # ...then a fourth arrival must evict exactly one contender — the
    # lowest bidder — and never exceed the bound.
    before = {cont.request.request_id for cont in thinner.contenders()}
    lowest = min(
        thinner.contenders(), key=lambda c: (c.peek_bid(engine.now), -c.arrived_at)
    )
    fourth = arrive(deployment, thinner, clients[3])
    assert thinner.contending_count == 3
    after = {cont.request.request_id for cont in thinner.contenders()}
    assert fourth.request_id in after
    assert before - after == {lowest.request.request_id}
    assert thinner.stats.requests_dropped == 1


def test_exempt_protects_triggering_arrival_on_zero_bid_ties(bounded_thinner):
    deployment, thinner, clients = bounded_thinner
    engine = deployment.engine

    # Four arrivals at distinct times, no payment in flight anywhere: all
    # bids are zero, so the eviction tie-break (latest arrival loses) would
    # pick the triggering arrival itself — the exemption must protect it
    # and evict the latest of the *older* contenders instead.
    first = arrive(deployment, thinner, clients[0])
    engine.run(until=engine.now + 0.001)
    second = arrive(deployment, thinner, clients[1])
    engine.run(until=engine.now + 0.001)
    third = arrive(deployment, thinner, clients[2])
    engine.run(until=engine.now + 0.001)
    fourth = arrive(deployment, thinner, clients[3])

    remaining = {cont.request.request_id for cont in thinner.contenders()}
    assert remaining == {first.request_id, second.request_id, fourth.request_id}
    assert clients[2].drops == []  # drop notification still in flight
    engine.run(until=engine.now + 0.1)
    assert [req.request_id for req, _ in clients[2].drops] == [third.request_id]
    assert clients[2].drops[0][1] == "evicted"


def test_simultaneous_arrivals_evict_by_insertion_order(bounded_thinner):
    deployment, thinner, clients = bounded_thinner
    engine = deployment.engine

    # All four arrive at the same instant: identical arrived_at, identical
    # zero bids.  Insertion order is the last tie-break, preserving the
    # historical scan's first-wins `min()`: the *earliest inserted* of the
    # non-exempt contenders is the victim on fully identical keys.
    requests = [arrive(deployment, thinner, client) for client in clients[:4]]
    assert thinner.contending_count == 3
    remaining = {cont.request.request_id for cont in thinner.contenders()}
    assert remaining == {requests[1].request_id, requests[2].request_id,
                         requests[3].request_id}

    # A fifth simultaneous arrival evicts the (new) earliest-inserted one.
    fifth = arrive(deployment, thinner, clients[4])
    remaining = {cont.request.request_id for cont in thinner.contenders()}
    assert remaining == {requests[2].request_id, requests[3].request_id,
                         fifth.request_id}


def test_eviction_keeps_bid_index_consistent_end_to_end():
    """A full run under heavy eviction churn: the auction keeps finding the
    true highest bidder (the index contract test) and the bound holds."""
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(8, 2 * MBIT))
    config = DeploymentConfig(server_capacity_rps=8.0, max_contenders=4, seed=11)
    deployment = Deployment(topology, thinner_host, config)
    build_mixed_population(deployment, hosts, 4, 4)
    deployment.run(12.0)

    thinner = deployment.thinner
    assert thinner.contending_count <= 4
    assert thinner.stats.requests_dropped > 0
    dropped = sum(client.stats.dropped for client in deployment.clients)
    assert dropped == thinner.stats.requests_dropped
    # Index and contender map agree after the churn.
    assert len(thinner._bid_index) == thinner.contending_count
    result = deployment.results()
    assert result.total_served > 0
