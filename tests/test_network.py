"""Tests for the fluid network: flow lifecycle, integration, incremental rates."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MBIT
from repro.errors import FlowError
from repro.simnet.bandwidth import max_min_fair_rates
from repro.simnet.engine import Engine
from repro.simnet.flow import FlowState
from repro.simnet.network import FluidNetwork
from repro.simnet.topology import build_bottleneck, build_lan, uniform_bandwidths
from repro.simnet.trace import Tracer


def make_network(clients=3, bandwidth=2 * MBIT, incremental=True, tracer=None):
    topology, hosts, thinner = build_lan(uniform_bandwidths(clients, bandwidth))
    engine = Engine()
    network = FluidNetwork(engine, topology, tracer=tracer, incremental=incremental)
    return engine, network, hosts, thinner


def test_bounded_flow_completes_at_the_expected_time():
    engine, network, hosts, thinner = make_network()
    done = []
    network.send(hosts[0], thinner, size_bytes=1_000_000, on_complete=lambda f: done.append(engine.now))
    engine.run(until=10)
    # 1 MByte at 2 Mbit/s is exactly 4 seconds.
    assert done == [pytest.approx(4.0)]
    assert network.completed_flows == 1


def test_unbounded_flow_accumulates_bytes_until_stopped():
    engine, network, hosts, thinner = make_network()
    flow = network.send(hosts[0], thinner, label="stream")
    engine.run(until=8)
    assert network.delivered_bytes(flow) == pytest.approx(2 * MBIT * 8 / 8)
    delivered = network.stop_flow(flow)
    assert delivered == pytest.approx(2_000_000)
    assert flow.state == FlowState.STOPPED


def test_two_flows_from_same_host_share_its_uplink():
    engine, network, hosts, thinner = make_network()
    first = network.send(hosts[0], thinner)
    second = network.send(hosts[0], thinner)
    engine.run(until=4)
    assert network.delivered_bytes(first) == pytest.approx(network.delivered_bytes(second))
    total = network.delivered_bytes(first) + network.delivered_bytes(second)
    assert total == pytest.approx(2 * MBIT * 4 / 8)


def test_stopping_one_flow_speeds_up_the_other():
    engine, network, hosts, thinner = make_network()
    first = network.send(hosts[0], thinner)
    second = network.send(hosts[0], thinner)
    engine.run(until=2)
    network.stop_flow(first)
    engine.run(until=4)
    # Second flow: 1 Mbit/s for 2 s then 2 Mbit/s for 2 s = 0.75 MB.
    assert network.delivered_bytes(second) == pytest.approx(750_000)


def test_completion_time_adapts_when_competition_leaves():
    engine, network, hosts, thinner = make_network()
    done = []
    network.send(hosts[0], thinner, size_bytes=1_000_000, on_complete=lambda f: done.append(engine.now))
    blocker = network.send(hosts[0], thinner)
    engine.run(until=2)      # bounded flow has 0.25 MB so far
    network.stop_flow(blocker)
    engine.run(until=10)
    # Remaining 0.75 MB at full 2 Mbit/s takes 3 more seconds.
    assert done == [pytest.approx(5.0)]


def test_rate_cap_is_respected_and_can_be_lifted():
    engine, network, hosts, thinner = make_network()
    flow = network.send(hosts[0], thinner, rate_cap_bps=0.5 * MBIT)
    engine.run(until=2)
    assert network.delivered_bytes(flow) == pytest.approx(0.5 * MBIT * 2 / 8)
    network.set_rate_cap(flow, None)
    engine.run(until=4)
    assert network.delivered_bytes(flow) == pytest.approx(0.125e6 + 2 * MBIT * 2 / 8 / 1e0)


def test_flow_cannot_start_twice():
    engine, network, hosts, thinner = make_network()
    flow = network.send(hosts[0], thinner)
    with pytest.raises(FlowError):
        network.start_flow(flow)


def test_stopping_finished_flow_is_a_noop():
    engine, network, hosts, thinner = make_network()
    flow = network.send(hosts[0], thinner, size_bytes=1000)
    engine.run(until=1)
    assert flow.state == FlowState.COMPLETED
    assert network.stop_flow(flow) == pytest.approx(1000)


def test_shared_bottleneck_constrains_aggregate():
    topology, behind, direct, thinner, cable = build_bottleneck(
        bottlenecked_bandwidths_bps=uniform_bandwidths(4, 2 * MBIT),
        direct_bandwidths_bps=uniform_bandwidths(1, 2 * MBIT),
        bottleneck_bandwidth_bps=4 * MBIT,
    )
    engine = Engine()
    network = FluidNetwork(engine, topology)
    flows = [network.send(host, thinner) for host in behind]
    direct_flow = network.send(direct[0], thinner)
    engine.run(until=4)
    behind_total = sum(network.delivered_bytes(flow) for flow in flows)
    # The four clients could send 8 Mbit/s but the cable passes only 4 Mbit/s.
    assert behind_total == pytest.approx(4 * MBIT * 4 / 8, rel=1e-6)
    assert network.delivered_bytes(direct_flow) == pytest.approx(2 * MBIT * 4 / 8)


def test_link_load_and_utilisation_queries():
    engine, network, hosts, thinner = make_network()
    flow = network.send(hosts[0], thinner)
    engine.run(until=1)
    uplink = hosts[0].uplink
    assert network.link_load_bps(uplink) == pytest.approx(2 * MBIT)
    assert network.link_utilisation(uplink) == pytest.approx(1.0)
    assert network.flows_on(uplink) == [flow]
    assert network.aggregate_rate_bps() == pytest.approx(2 * MBIT)


def test_tracer_records_flow_lifecycle():
    tracer = Tracer()
    engine, network, hosts, thinner = make_network(tracer=tracer)
    network.send(hosts[0], thinner, size_bytes=1000)
    engine.run(until=1)
    kinds = tracer.kinds()
    assert kinds.get("flow_start") == 1
    assert kinds.get("flow_complete") == 1


def test_total_delivered_bytes_accumulates():
    engine, network, hosts, thinner = make_network()
    network.send(hosts[0], thinner, size_bytes=1000)
    network.send(hosts[1], thinner, size_bytes=2000)
    engine.run(until=2)
    assert network.total_delivered_bytes == pytest.approx(3000)


# ---------------------------------------------------------------------------
# Property: the incremental allocator always matches the global reference
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),      # which client host
            st.integers(min_value=0, max_value=2),      # 0: start, 1: stop oldest, 2: advance time
        ),
        min_size=1,
        max_size=25,
    )
)
def test_incremental_rates_match_global_recomputation(operations):
    """Property: after any sequence of flow starts/stops, the incremental
    component-based allocation equals the brute-force global max-min rates.

    ``sync()`` settles the deferred dirty-set recomputation before the rates
    are compared (exactly what the engine does before firing each event)."""
    topology, hosts, thinner = build_lan(uniform_bandwidths(4, 2 * MBIT))
    engine = Engine()
    network = FluidNetwork(engine, topology, incremental=True)
    live = []
    clock = 0.0
    for host_index, action in operations:
        if action == 0:
            live.append(network.send(hosts[host_index], thinner))
        elif action == 1 and live:
            network.stop_flow(live.pop(0))
        else:
            clock += 0.05
            engine.run(until=clock)

    network.sync()
    active = network.active_flows
    expected = max_min_fair_rates(active)
    for flow in active:
        assert flow.rate_bps == pytest.approx(expected[flow], rel=1e-6, abs=1e-3)


def _assert_matches_global(network):
    network.sync()
    active = network.active_flows
    expected = max_min_fair_rates(active)
    for flow in active:
        assert flow.rate_bps == pytest.approx(expected[flow], rel=1e-6, abs=1e-3)


@pytest.mark.parametrize("seed", [7, 19, 42])
def test_incremental_matches_global_on_200_flow_topologies(seed):
    """Property at scale: the dirty-component waterfill path (batched
    recomputation, entry-grouped potential load, signature cache) agrees
    with the global reference on randomized ~200-flow topologies, through
    cap changes, detaches, and time advances.

    The shared cable is deliberately oversubscribed so components span many
    hosts and exceed the rate cache's minimum size — this exercises the
    cached path, not just tiny per-uplink waterfills.
    """
    rng = random.Random(seed)
    tier_mbit = (0.5, 1.0, 2.0, 5.0)
    topology, behind, direct, thinner, _cable = build_bottleneck(
        bottlenecked_bandwidths_bps=[rng.choice(tier_mbit) * MBIT for _ in range(30)],
        direct_bandwidths_bps=[rng.choice(tier_mbit) * MBIT for _ in range(30)],
        bottleneck_bandwidth_bps=20 * MBIT,
    )
    hosts = list(behind) + list(direct)
    engine = Engine()
    network = FluidNetwork(engine, topology)

    caps = (None, 0.25 * MBIT, 0.75 * MBIT, 3 * MBIT)
    flows = [
        network.send(rng.choice(hosts), thinner, rate_cap_bps=rng.choice(caps))
        for _ in range(200)
    ]
    assert network.active_flow_count() == 200

    clock = 0.0
    for step in range(150):
        op = rng.random()
        if op < 0.25 and flows:
            network.stop_flow(flows.pop(rng.randrange(len(flows))))
        elif op < 0.55 and flows:
            network.set_rate_cap(rng.choice(flows), rng.choice(caps))
        elif op < 0.75:
            flows.append(
                network.send(rng.choice(hosts), thinner, rate_cap_bps=rng.choice(caps))
            )
        else:
            clock += 0.01
            engine.run(until=clock)
        if step % 25 == 24:
            _assert_matches_global(network)

    _assert_matches_global(network)
    # The oversubscribed cable must have produced components wide enough to
    # engage the signature cache at least once.
    counters = network.counters
    assert counters.cache_hits + counters.cache_misses > 0
    assert counters.flows_touched > 0
