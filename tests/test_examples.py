"""The example scripts must stay runnable (they are part of the public API)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLE_FILES) >= 3
    assert any(path.name == "quickstart.py" for path in EXAMPLE_FILES)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_defines_main(path):
    module = load_example(path)
    assert callable(getattr(module, "main", None))


def test_quickstart_example_runs_end_to_end(capsys):
    module = load_example(EXAMPLES_DIR / "quickstart.py")
    # Shrink the scenario so the example stays fast under test.
    module.GOOD_CLIENTS = 3
    module.BAD_CLIENTS = 3
    module.CAPACITY_RPS = 12.0
    module.DURATION = 8.0
    module.main()
    output = capsys.readouterr().out
    assert "speakup" in output
    assert "none" in output


#: Per-example test-scale overrides: every example must run end to end in
#: CI, so each gets its module-level knobs shrunk to a few clients and a
#: few simulated seconds (shared_bottleneck keeps 12 behind-cable hosts —
#: its main() sweeps good/bad splits of that fixed neighbourhood).
EXAMPLE_TEST_SCALE = {
    "quickstart": dict(GOOD_CLIENTS=3, BAD_CLIENTS=3, CAPACITY_RPS=12.0, DURATION=6.0),
    "attacked_search_site": dict(
        GOOD_CLIENTS=4, BAD_CLIENTS=4, CAPACITY_RPS=12.0, DURATION=6.0
    ),
    "heterogeneous_requests": dict(
        GOOD_CLIENTS=3, BAD_CLIENTS=3, CAPACITY_RPS=10.0, DURATION=6.0
    ),
    "shared_bottleneck_neighbourhood": dict(
        DIRECT_GOOD=2, DIRECT_BAD=2, CAPACITY_RPS=12.0, DURATION=6.0
    ),
}


def test_every_example_has_a_test_scale():
    assert sorted(EXAMPLE_TEST_SCALE) == [path.stem for path in EXAMPLE_FILES]


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs_end_to_end_at_test_scale(path, capsys):
    """Every example script's main() completes and prints its table."""
    module = load_example(path)
    for name, value in EXAMPLE_TEST_SCALE[path.stem].items():
        assert hasattr(module, name), f"{path.name} lost its {name} knob"
        setattr(module, name, value)
    module.main()
    output = capsys.readouterr().out
    assert "---" in output  # every example prints at least one table
