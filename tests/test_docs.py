"""The documentation stays in sync with the code.

``docs/SCENARIOS.md`` is rendered from the scenario registry by
``speakup-repro scenarios --doc``; if a scenario is added or a knob changes,
the checked-in file must be regenerated.  These tests fail with the exact
regeneration command when it is stale.

``docs/TUTORIAL.md`` promises that every command it shows runs; the smoke
tests here extract each CLI invocation from its ``sh`` code blocks and
execute it in-process.  A markdown link check over ``docs/`` and the README
keeps relative links from rotting.
"""

import os
import re
import shlex

import pytest

from repro.cli import main
from repro.scenarios.registry import scenario_markdown, scenario_names

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
SCENARIOS_MD = os.path.join(REPO_ROOT, "docs", "SCENARIOS.md")
ARCHITECTURE_MD = os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md")
TUTORIAL_MD = os.path.join(REPO_ROOT, "docs", "TUTORIAL.md")
PAPER_MAP_MD = os.path.join(REPO_ROOT, "docs", "PAPER_MAP.md")


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def test_scenario_gallery_is_up_to_date():
    with open(SCENARIOS_MD, "r", encoding="utf-8") as handle:
        committed = handle.read()
    generated = scenario_markdown()
    assert committed == generated, (
        "docs/SCENARIOS.md is out of date with the scenario registry; "
        "regenerate it with:\n"
        "  PYTHONPATH=src python -m repro.cli scenarios --doc > docs/SCENARIOS.md"
    )


def test_scenario_gallery_mentions_every_scenario():
    gallery = scenario_markdown()
    for name in scenario_names():
        assert f"## `{name}`" in gallery


def test_architecture_doc_mentions_every_subpackage():
    with open(ARCHITECTURE_MD, "r", encoding="utf-8") as handle:
        architecture = handle.read()
    src = os.path.join(REPO_ROOT, "src", "repro")
    subpackages = sorted(
        entry
        for entry in os.listdir(src)
        if os.path.isdir(os.path.join(src, entry)) and not entry.startswith("__")
    )
    for subpackage in subpackages:
        assert f"{subpackage}/" in architecture or f"`{subpackage}" in architecture, (
            f"docs/ARCHITECTURE.md does not mention subpackage {subpackage!r}"
        )


# ---------------------------------------------------------------------------
# The tutorial's commands all run
# ---------------------------------------------------------------------------


def _sh_blocks(markdown: str):
    """The contents of every ``` sh``` fenced block, in order."""
    return re.findall(r"```sh\n(.*?)```", markdown, flags=re.DOTALL)


def _cli_invocations(markdown: str):
    """Every `python -m repro.cli ...` / `speakup-repro ...` command in
    the document's ``sh`` blocks, as argv lists (continuations joined)."""
    commands = []
    for block in _sh_blocks(markdown):
        joined = block.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if line.startswith("python -m repro.cli "):
                commands.append(shlex.split(line[len("python -m repro.cli "):]))
            elif line.startswith("speakup-repro "):
                commands.append(shlex.split(line[len("speakup-repro "):]))
    return commands

TUTORIAL_COMMANDS = _cli_invocations(_read(TUTORIAL_MD))


def test_tutorial_contains_the_promised_walkthrough():
    tutorial = _read(TUTORIAL_MD)
    # install → first scenario → sweep → a paper figure → the fleet.
    for needle in ("Install", "demo", "scenarios", "sweep", "figure2", "fleet"):
        assert needle in tutorial
    assert len(TUTORIAL_COMMANDS) >= 5


@pytest.mark.parametrize(
    "argv", TUTORIAL_COMMANDS, ids=[" ".join(c[:2]) for c in TUTORIAL_COMMANDS]
)
def test_tutorial_command_runs(argv, capsys):
    """Every CLI command shown in the tutorial exits 0 — except the §11
    campaign walkthrough, whose crash-rehearsal commands document exit
    code 4 (incomplete campaign, resume to finish)."""
    allowed = {0}
    if argv and argv[0] == "campaign":
        allowed = {0, 4}
        if argv[1] == "run" and "--dir" in argv:
            # The walkthrough starts from scratch; `campaign run` refuses
            # to clobber the directory a previous suite run left behind.
            import shutil

            shutil.rmtree(argv[argv.index("--dir") + 1], ignore_errors=True)
    assert main(argv) in allowed
    assert capsys.readouterr().out  # every tutorial command prints something


# ---------------------------------------------------------------------------
# The paper map covers the reproduction
# ---------------------------------------------------------------------------


def test_paper_map_mentions_every_experiment_module():
    paper_map = _read(PAPER_MAP_MD)
    experiments = os.path.join(REPO_ROOT, "src", "repro", "experiments")
    modules = sorted(
        entry[:-3]
        for entry in os.listdir(experiments)
        if entry.endswith(".py") and entry not in ("__init__.py", "base.py")
    )
    for module in modules:
        assert f"{module}.py" in paper_map, (
            f"docs/PAPER_MAP.md does not mention experiments/{module}.py"
        )


def test_paper_map_mentions_every_figure_and_key_sections():
    paper_map = _read(PAPER_MAP_MD)
    for figure in range(2, 10):
        # Accept both "Figure 8" and grouped forms like "Figures 4, 5".
        mentioned = re.search(rf"Figures?\s[\d, and]*\b{figure}\b", paper_map)
        assert mentioned or f"figure{figure}" in paper_map, (
            f"docs/PAPER_MAP.md does not mention Figure {figure}"
        )
    for section in ("§3.3", "§4.3", "§5", "§6", "§7.4", "Theorem 3.1"):
        assert section in paper_map


# ---------------------------------------------------------------------------
# Markdown links resolve
# ---------------------------------------------------------------------------


def _markdown_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    for entry in sorted(os.listdir(DOCS_DIR)):
        if entry.endswith(".md"):
            files.append(os.path.join(DOCS_DIR, entry))
    return files


_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_markdown_links_resolve():
    """Every relative markdown link in docs/ and the README points at a file."""
    problems = []
    for path in _markdown_files():
        base = os.path.dirname(path)
        for target in _LINK_PATTERN.findall(_read(path)):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0])
            )
            if not os.path.exists(target_path):
                problems.append(f"{os.path.relpath(path, REPO_ROOT)} -> {target}")
    assert not problems, "broken relative links:\n" + "\n".join(problems)
