"""The generated documentation stays in sync with the code.

``docs/SCENARIOS.md`` is rendered from the scenario registry by
``speakup-repro scenarios --doc``; if a scenario is added or a knob changes,
the checked-in file must be regenerated.  These tests fail with the exact
regeneration command when it is stale.
"""

import os

from repro.scenarios.registry import scenario_markdown, scenario_names

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCENARIOS_MD = os.path.join(REPO_ROOT, "docs", "SCENARIOS.md")
ARCHITECTURE_MD = os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md")


def test_scenario_gallery_is_up_to_date():
    with open(SCENARIOS_MD, "r", encoding="utf-8") as handle:
        committed = handle.read()
    generated = scenario_markdown()
    assert committed == generated, (
        "docs/SCENARIOS.md is out of date with the scenario registry; "
        "regenerate it with:\n"
        "  PYTHONPATH=src python -m repro.cli scenarios --doc > docs/SCENARIOS.md"
    )


def test_scenario_gallery_mentions_every_scenario():
    gallery = scenario_markdown()
    for name in scenario_names():
        assert f"## `{name}`" in gallery


def test_architecture_doc_mentions_every_subpackage():
    with open(ARCHITECTURE_MD, "r", encoding="utf-8") as handle:
        architecture = handle.read()
    src = os.path.join(REPO_ROOT, "src", "repro")
    subpackages = sorted(
        entry
        for entry in os.listdir(src)
        if os.path.isdir(os.path.join(src, entry)) and not entry.startswith("__")
    )
    for subpackage in subpackages:
        assert f"{subpackage}/" in architecture or f"`{subpackage}" in architecture, (
            f"docs/ARCHITECTURE.md does not mention subpackage {subpackage!r}"
        )
