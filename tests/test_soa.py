"""Struct-of-arrays equivalence: the vectorized paths change nothing but speed.

The fluid network keeps every flow/link/channel scalar in a
:class:`~repro.simnet.soa.SoAStore` and picks, per component (and per dirty
batch in the kinetic bid index), between a scalar index-based path and a
vectorized numpy path.  ``DeploymentConfig.vectorized`` pins the choice for a
whole run, which gives an end-to-end property: the same scenario run both
ways must produce bit-identical rates, auction outcomes, and counters.
"""

import dataclasses
import random

import pytest

from repro.scenarios.registry import build_scenario
from repro.scenarios.spec import freeze_overrides
from repro.simnet.soa import SoAStore


def _run(spec, vectorized, vec_component_sizes=None):
    spec = dataclasses.replace(
        spec, config_overrides=freeze_overrides({"vectorized": vectorized})
    )
    deployment = spec.build()
    assert deployment.network.vectorized is vectorized
    if vec_component_sizes is not None:
        # Observe (without altering) every array-path flush: record the
        # component width, then delegate to the real implementation.
        inner = deployment.network._flush_component_vec

        def _spy(flows):
            vec_component_sizes.append(len(flows))
            return inner(flows)

        deployment.network._flush_component_vec = _spy
    deployment.run(spec.duration)
    result = deployment.results()
    network = deployment.network
    # ``label`` embeds a globally increasing request id, which keeps counting
    # across the two in-process runs — compare the kind, not the id.
    flows = sorted(
        (flow.label.split(":")[0], flow.state.value, flow.rate_bps, flow.delivered_bytes)
        for flow in network._active
    )
    return {
        "counters": network.counters.snapshot(),
        "served": result.total_served,
        "good_allocation": result.good_allocation,
        "total_delivered": network.total_delivered_bytes,
        "flows": flows,
    }


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_vectorized_and_scalar_paths_are_bit_identical(seed):
    """A ≥500-flow component through both paths: identical rates and winners.

    The population is drawn from a seeded RNG so each parametrization checks
    a different topology/population point; the bad cohort keeps >500
    concurrent payment POSTs crossing one under-provisioned thinner link, so
    the vectorized run exercises the wide-component waterfill while the
    scalar run takes the index-based loop over the same store.
    """
    rng = random.Random(seed)
    spec = build_scenario(
        "soa-mega",
        good_clients=rng.randint(150, 250),
        bad_clients=rng.randint(260, 330),
        bad_window=2,
        good_rate=2.0,
        duration=0.1,
        seed=seed,
    )
    scalar = _run(spec, vectorized=False)
    vector = _run(spec, vectorized=True)

    # The run must actually have driven wide components down the array path.
    counters = vector["counters"]
    assert counters["waterfill_calls"] > 0
    assert counters["flows_touched"] >= 500
    assert (
        counters["flows_touched"] / counters["waterfill_calls"] >= 64
    ), "components never reached the vectorized threshold"

    assert scalar["counters"] == vector["counters"]
    assert scalar["served"] == vector["served"]
    assert scalar["good_allocation"] == vector["good_allocation"]
    assert scalar["total_delivered"] == vector["total_delivered"]
    assert scalar["flows"] == vector["flows"]


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_fat_tree_components_are_identical_down_both_paths(seed):
    """Multi-level fabric components through scalar and vectorized waterfill.

    Star topologies couple flows only through access links; a fat-tree
    couples them through shared edge/aggregation/core cables too, so one
    component spans clients on many edge switches, the fabric tiers, and
    several thinner downlinks at once — a component shape no other test
    drives.  The population is drawn from a seeded RNG; both paths must
    produce bit-identical rates, auction winners, and counters.
    """
    rng = random.Random(seed)
    spec = build_scenario(
        "fabric-mega",
        good_clients=rng.randint(60, 90),
        bad_clients=rng.randint(220, 280),
        thinner_shards=rng.randint(4, 8),
        fabric="fat-tree",
        fabric_k=4,
        oversubscription=4.0,
        cross_traffic_pairs=rng.randint(2, 6),
        bad_window=2,
        good_rate=2.0,
        duration=0.1,
        seed=seed,
    )
    vec_component_sizes = []
    scalar = _run(spec, vectorized=False)
    vector = _run(spec, vectorized=True, vec_component_sizes=vec_component_sizes)

    # The run must actually have pushed multi-level fabric components down
    # the array path (unlike soa-mega, a fabric mixes wide converging
    # components with many narrow same-edge ones, so the *average* size is
    # meaningless — count the vectorized flushes themselves).
    assert len(vec_component_sizes) > 0, "no component reached the array path"
    assert max(vec_component_sizes) >= 64
    assert vector["counters"]["flows_touched"] >= 500

    assert scalar["counters"] == vector["counters"]
    assert scalar["served"] == vector["served"]
    assert scalar["good_allocation"] == vector["good_allocation"]
    assert scalar["total_delivered"] == vector["total_delivered"]
    assert scalar["flows"] == vector["flows"]


def _run_with_capacity_changes(spec, vectorized, changes):
    """Like :func:`_run`, but rescale thinner access capacity mid-run.

    ``changes`` is a list of ``(at_s, factor)`` pairs; each one scales both
    directions of the thinner host's access link through
    ``Link.set_capacity_factor`` — the same entry point the gray-failure
    ``degrade`` fault uses — so every waterfill after it sees a different
    capacity vector than the one the flows were admitted under.
    """
    spec = dataclasses.replace(
        spec, config_overrides=freeze_overrides({"vectorized": vectorized})
    )
    deployment = spec.build()
    network = deployment.network
    host = deployment.thinner_hosts[0]
    for at_s, factor in changes:
        for link in (host.access.up, host.access.down):
            deployment.engine.schedule_at(
                at_s,
                lambda link=link, factor=factor: link.set_capacity_factor(
                    factor, network=network
                ),
            )
    deployment.run(spec.duration)
    result = deployment.results()
    flows = sorted(
        (flow.label.split(":")[0], flow.state.value, flow.rate_bps, flow.delivered_bytes)
        for flow in network._active
    )
    return {
        "counters": network.counters.snapshot(),
        "served": result.total_served,
        "good_allocation": result.good_allocation,
        "total_delivered": network.total_delivered_bytes,
        "flows": flows,
    }


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_capacity_changes_keep_scalar_and_vector_paths_identical(seed):
    """Mid-run capacity rescales reallocate identically down both paths.

    A degrade-style capacity change re-derives every crossing flow's bound
    and triggers a fresh waterfill over a component whose membership did not
    change — a different code shape than admission/retirement churn, and the
    one the gray-failure fault layer leans on.  The schedule is drawn from a
    seeded RNG so each parametrization stresses different epochs.
    """
    rng = random.Random(seed)
    spec = build_scenario(
        "soa-mega",
        good_clients=rng.randint(150, 250),
        bad_clients=rng.randint(260, 330),
        bad_window=2,
        good_rate=2.0,
        duration=0.1,
        seed=seed,
    )
    changes = sorted(
        (round(rng.uniform(0.01, 0.09), 4), round(rng.uniform(0.3, 1.0), 3))
        for _ in range(rng.randint(3, 5))
    )
    scalar = _run_with_capacity_changes(spec, False, changes)
    vector = _run_with_capacity_changes(spec, True, changes)

    counters = vector["counters"]
    assert counters["waterfill_calls"] > 0
    assert counters["flows_touched"] >= 500

    assert scalar["counters"] == vector["counters"]
    assert scalar["served"] == vector["served"]
    assert scalar["good_allocation"] == vector["good_allocation"]
    assert scalar["total_delivered"] == vector["total_delivered"]
    assert scalar["flows"] == vector["flows"]


def _tiny_net():
    from repro.constants import MBIT
    from repro.simnet.topology import build_lan, uniform_bandwidths

    topology, hosts, thinner_host = build_lan(uniform_bandwidths(2, 2 * MBIT))
    path = topology.path(hosts[0], thinner_host)
    return hosts[0], thinner_host, path


def test_store_release_freezes_scalar_state():
    """Detached views keep their final values without holding a row."""
    from repro.simnet.flow import Flow

    store = SoAStore()
    src, dst, path = _tiny_net()
    link = path[0]
    store.register_link(link)
    flow = Flow(src, dst, [link], size_bytes=1000.0)
    fid = store.acquire_flow(flow, (link._lid,))
    flow._fid = fid
    flow._soa = store
    store.fm_rate[fid] = 123.0
    store.fm_delivered[fid] = 456.0
    assert flow.rate_bps == 123.0
    store.release_flow(flow)
    assert flow._fid == -1
    assert flow.rate_bps == 123.0
    assert flow.delivered_bytes == 456.0


def test_store_growth_rebinds_views():
    """Row acquisition past capacity grows arrays and refreshes memoryviews."""
    from repro.simnet.flow import Flow

    store = SoAStore()
    src, dst, path = _tiny_net()
    link = path[0]
    store.register_link(link)
    flows = []
    for i in range(2000):
        flow = Flow(src, dst, [link], size_bytes=1000.0)
        fid = store.acquire_flow(flow, (link._lid,))
        flow._fid = fid
        flow._soa = store
        store.fm_rate[fid] = float(i)
        flows.append(flow)
    # Growth doubled the arrays several times; every earlier row survived
    # and the memoryviews track the latest buffers.
    assert len(store.fm_rate) == len(store.f_rate)
    for i, flow in enumerate(flows):
        assert flow.rate_bps == float(i)
