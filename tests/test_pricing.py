"""Tests for the price book."""

import pytest

from repro.core.pricing import PriceBook


def test_empty_book_defaults():
    book = PriceBook()
    assert len(book) == 0
    assert book.going_rate() == 0.0
    assert book.average() == 0.0
    assert book.average_by_class() == {}
    assert book.percentile(0.9) == 0.0
    assert book.free_admissions() == 0
    assert book.total_revenue_bytes() == 0.0


def test_record_and_averages_by_class():
    book = PriceBook()
    book.record(1.0, 100.0, "good", 1)
    book.record(2.0, 300.0, "good", 2)
    book.record(3.0, 500.0, "bad", 3)
    assert book.going_rate() == 500.0
    assert book.average() == pytest.approx(300.0)
    assert book.average(client_class="good") == pytest.approx(200.0)
    assert book.average_by_class() == {"good": 200.0, "bad": 500.0}
    assert book.total_revenue_bytes() == 900.0
    assert book.total_revenue_bytes("bad") == 500.0


def test_average_since_window():
    book = PriceBook()
    book.record(1.0, 100.0, "good", 1)
    book.record(10.0, 300.0, "good", 2)
    assert book.average(since=5.0) == pytest.approx(300.0)


def test_percentile_and_free_admissions():
    book = PriceBook()
    for index, price in enumerate([0.0, 10.0, 20.0, 30.0, 40.0]):
        book.record(float(index), price, "good", index)
    assert book.percentile(0.5) == 20.0
    assert book.percentile(1.0) == 40.0
    assert book.percentile(0.0) == 0.0
    assert book.free_admissions() == 1
    with pytest.raises(ValueError):
        book.percentile(1.5)


def test_negative_price_rejected():
    book = PriceBook()
    with pytest.raises(ValueError):
        book.record(0.0, -1.0, "good", 1)


def test_history_and_samples_are_copies():
    book = PriceBook()
    book.record(1.0, 5.0, "good", 1)
    history = book.history()
    assert history == [(1.0, 5.0)]
    samples = book.samples
    samples.clear()
    assert len(book) == 1
