"""Tests for the perf instrumentation layer and the tracked bench harness."""

import json

import pytest

from repro.constants import MBIT
from repro.errors import ExperimentError
from repro.perf.bench import (
    BENCH_CASES,
    BenchCase,
    append_entry,
    check_regression,
    latest_entry,
    load_document,
    make_entry,
    run_case,
)
from repro.perf.counters import SimCounters
from repro.simnet.engine import Engine
from repro.simnet.network import FluidNetwork
from repro.simnet.topology import build_lan, uniform_bandwidths

TINY_CASE = BenchCase(
    name="tiny",
    scenario="lan-baseline",
    args=dict(good_clients=2, bad_clients=2, capacity_rps=10.0, duration=2.0),
    quick_args=dict(duration=1.0),
)


# ---------------------------------------------------------------------------
# SimCounters
# ---------------------------------------------------------------------------


def test_counters_snapshot_and_reset():
    counters = SimCounters()
    counters.waterfill_calls += 3
    counters.flows_touched += 12
    snapshot = counters.snapshot()
    assert snapshot["waterfill_calls"] == 3
    assert snapshot["flows_touched"] == 12
    assert set(snapshot) == set(SimCounters.__slots__)
    counters.reset()
    assert all(value == 0 for value in counters.snapshot().values())


def test_network_increments_counters():
    topology, hosts, thinner = build_lan(uniform_bandwidths(2, 2 * MBIT))
    engine = Engine()
    network = FluidNetwork(engine, topology)
    network.send(hosts[0], thinner, size_bytes=100_000)
    network.send(hosts[1], thinner, size_bytes=100_000)
    engine.run(until=2.0)
    counters = network.counters
    assert counters.reallocations >= 2
    assert counters.waterfill_calls >= 1
    assert counters.flows_touched >= 2
    # Deferred batching never runs more recomputations than changes.
    assert counters.flushes <= counters.reallocations


def test_batching_collapses_same_instant_changes():
    """A start immediately followed by a cap change (the slow-start pattern)
    is one flush, not two."""
    topology, hosts, thinner = build_lan(uniform_bandwidths(1, 2 * MBIT))
    engine = Engine()
    network = FluidNetwork(engine, topology)
    flow = network.send(hosts[0], thinner, size_bytes=1_000_000)
    network.set_rate_cap(flow, 1 * MBIT)
    assert network.counters.reallocations == 2
    engine.run(until=0.1)
    assert network.counters.flushes == 1


# ---------------------------------------------------------------------------
# The bench harness
# ---------------------------------------------------------------------------


def test_bench_case_overrides_merge_quick():
    assert TINY_CASE.overrides(False)["duration"] == 2.0
    assert TINY_CASE.overrides(True)["duration"] == 1.0
    assert TINY_CASE.overrides(True)["good_clients"] == 2


def test_pinned_suite_shape():
    names = [case.name for case in BENCH_CASES]
    assert names == [
        "lan-small", "tiers-medium", "stress-mega", "thinner-mega", "fleet-mega",
        "fleet-failover", "fleet-brownout", "adaptive-pulse", "soa-mega",
        "rollup-mega", "fabric-mega",
    ]
    assert BENCH_CASES[2].scenario == "stress-mega"
    assert BENCH_CASES[3].scenario == "thinner-mega"
    assert BENCH_CASES[4].scenario == "fleet-mega"
    assert BENCH_CASES[5].scenario == "fleet-failover"
    assert BENCH_CASES[6].scenario == "fleet-brownout"
    assert BENCH_CASES[7].scenario == "adaptive-pulse"
    assert BENCH_CASES[8].scenario == "soa-mega"
    assert BENCH_CASES[9].scenario == "rollup-mega"
    assert BENCH_CASES[10].scenario == "fabric-mega"


def test_run_case_measures_and_fingerprints():
    measurement = run_case(TINY_CASE, quick=True)
    assert measurement.case == "tiny"
    assert measurement.quick is True
    assert measurement.events > 0
    assert measurement.events_per_s > 0
    assert measurement.clients == 4
    assert measurement.sim_s == 1.0
    assert "waterfill_calls" in measurement.counters
    payload = measurement.to_dict()
    assert payload["case"] == "tiny"
    json.dumps(payload)  # JSON-ready


def test_entry_append_and_load_round_trip(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    measurement = run_case(TINY_CASE, quick=True)
    entry = make_entry([measurement], label="unit", quick=True)
    assert entry["mode"] == "quick"
    document = append_entry(path, entry)
    assert len(document["entries"]) == 1
    reloaded = load_document(path)
    assert reloaded["entries"][0]["label"] == "unit"
    assert reloaded["entries"][0]["cases"]["tiny"]["events"] == measurement.events
    # Appending accumulates rather than overwriting.
    append_entry(path, make_entry([measurement], label="second", quick=True))
    assert [e["label"] for e in load_document(path)["entries"]] == ["unit", "second"]


def test_latest_entry_filters_by_mode():
    document = {
        "entries": [
            {"mode": "full", "label": "a"},
            {"mode": "quick", "label": "b"},
            {"mode": "full", "label": "c"},
        ]
    }
    assert latest_entry(document, "full")["label"] == "c"
    assert latest_entry(document, "quick")["label"] == "b"
    assert latest_entry(document, "nope") is None


def test_check_regression_flags_only_real_regressions():
    measurement = run_case(TINY_CASE, quick=True)
    baseline_cases = {
        "tiny": {"events_per_s": measurement.events_per_s / 3.0},
        "unrelated": {"events_per_s": 1e9},
    }
    baseline = {"date": "2026-01-01", "cases": baseline_cases}
    # Fresh run is ~3x the committed rate: no problem reported.
    assert check_regression([measurement], baseline, tolerance=0.3) == []
    # Committed rate 100x the fresh one: flagged.
    baseline_cases["tiny"]["events_per_s"] = measurement.events_per_s * 100.0
    problems = check_regression([measurement], baseline, tolerance=0.3)
    assert len(problems) == 1 and "tiny" in problems[0]
    with pytest.raises(ExperimentError):
        check_regression([measurement], baseline, tolerance=1.5)


def test_check_regression_counter_signal_is_machine_independent():
    """The flows-touched-per-event signal flags algorithmic cliffs even when
    the wall-clock rate looks fine (e.g. the baseline ran on a slower box)."""
    measurement = run_case(TINY_CASE, quick=True)
    fresh_work = measurement.counters["flows_touched"] / measurement.events
    committed = {
        "events_per_s": measurement.events_per_s / 10.0,  # much slower machine
        "events": measurement.events,
        "counters": {"flows_touched": measurement.counters["flows_touched"]},
    }
    baseline = {"date": "2026-01-01", "cases": {"tiny": dict(committed)}}
    # Identical work per event: clean.
    assert check_regression([measurement], baseline, tolerance=0.3) == []
    # Committed entry did a third of the per-event work: the fresh run's
    # allocator touches 3x the flows per event -> flagged despite the
    # fresh wall-clock rate being 10x the committed one.
    baseline["cases"]["tiny"]["counters"]["flows_touched"] = (
        measurement.counters["flows_touched"] / 3.0
    )
    problems = check_regression([measurement], baseline, tolerance=0.3)
    assert len(problems) == 1
    assert "flows touched per event" in problems[0]
    assert f"{fresh_work:.2f}" in problems[0]


def test_quick_scale_bench_exercises_rate_cache():
    """The quick-mode blind spot from PR 2: no pinned quick case drove the
    component-signature rate cache (stress-mega components sit below the
    16-flow threshold).  The thinner-mega quick case must produce real
    cache traffic — window-20 bad clients put 21-flow components through
    the allocator — so CI actually covers the cache path."""
    case = next(c for c in BENCH_CASES if c.name == "thinner-mega")
    small = BenchCase(
        name=case.name,
        scenario=case.scenario,
        args=case.args,
        # The pinned quick args, shrunk further so the suite stays fast;
        # same shape (window-20 bad cohort) so the cache still engages.
        quick_args=dict(case.quick_args, good_clients=80, flash_clients=10,
                        bad_clients=20, capacity_rps=40.0, duration=1.0),
    )
    measurement = run_case(small, quick=True)
    counters = measurement.counters
    assert counters["cache_hits"] + counters["cache_misses"] > 0
    assert counters["cache_hits"] > 0
    # The case is auction-bound by construction: admission decisions happen
    # and each one is far cheaper than a full scan of the contender set.
    assert counters["auctions_held"] > 0
    assert counters["contenders_scanned"] > 0


def test_check_regression_flags_admission_work_growth():
    """The contenders-scanned-per-auction signal (the CI gate for the
    kinetic bid index) trips when admission work regresses toward O(n)."""
    measurement = run_case(TINY_CASE, quick=True)
    auctions = measurement.counters["auctions_held"]
    scanned = measurement.counters["contenders_scanned"]
    assert auctions > 0 and scanned > 0
    committed = {
        "events_per_s": measurement.events_per_s,
        "events": measurement.events,
        "counters": {
            "flows_touched": measurement.counters["flows_touched"],
            "auctions_held": auctions,
            "contenders_scanned": scanned,
        },
    }
    baseline = {"date": "2026-01-01", "cases": {"tiny": committed}}
    # Identical admission work: clean.
    assert check_regression([measurement], baseline, tolerance=0.3, signals="work") == []
    # The committed entry did a third of the per-auction work: flagged.
    committed["counters"]["contenders_scanned"] = scanned / 3.0
    problems = check_regression([measurement], baseline, tolerance=0.3, signals="work")
    assert len(problems) == 1
    assert "contenders scanned per auction" in problems[0]
    # Entries that predate the admission counters are skipped, not tripped.
    committed["counters"].pop("contenders_scanned")
    committed["counters"].pop("auctions_held")
    assert check_regression([measurement], baseline, tolerance=0.3, signals="work") == []


def test_committed_bench_file_has_pr3_admission_pair():
    """The PR 3 acceptance artifact: baseline (O(n) auction scans) and
    optimised (kinetic bid index + batched arrivals) full-mode entries,
    recorded back-to-back on one machine, with thinner-mega events/sec
    improved at least 10x and per-auction admission work collapsed."""
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    document = load_document(os.path.join(repo_root, "BENCH_speakup.json"))
    full = [entry for entry in document["entries"] if entry["mode"] == "full"]
    baselines = [e for e in full if e["label"].startswith("PR3 baseline")]
    optimised = [e for e in full if e["label"].startswith("PR3: kinetic")]
    assert baselines and optimised, (
        "the PR 3 baseline/optimised full-mode entry pair must stay in "
        "BENCH_speakup.json — it is the acceptance artifact for the "
        "kinetic bid index"
    )
    base_case = baselines[-1]["cases"]["thinner-mega"]
    new_case = optimised[-1]["cases"]["thinner-mega"]
    assert base_case["clients"] >= 50_000
    assert new_case["events_per_s"] >= 10.0 * base_case["events_per_s"], (
        f"thinner-mega: {new_case['events_per_s']:.0f} events/s is not >= 10x "
        f"the baseline {base_case['events_per_s']:.0f} events/s"
    )
    base_scan = (
        base_case["counters"]["contenders_scanned"]
        / base_case["counters"]["auctions_held"]
    )
    new_scan = (
        new_case["counters"]["contenders_scanned"]
        / new_case["counters"]["auctions_held"]
    )
    # O(n) scans touched tens of thousands of contenders per auction; the
    # kinetic index touches a few dozen (slope groups + stale pops).
    assert base_scan > 1_000
    assert new_scan < 100


def test_check_regression_work_signal_ignores_wall_clock():
    """signals='work' (the CI gate) never trips on events/sec differences."""
    measurement = run_case(TINY_CASE, quick=True)
    baseline = {
        "date": "2026-01-01",
        "cases": {
            "tiny": {
                # A wildly faster committed machine: rate signal would trip.
                "events_per_s": measurement.events_per_s * 100.0,
                "events": measurement.events,
                "counters": {"flows_touched": measurement.counters["flows_touched"]},
            }
        },
    }
    assert check_regression([measurement], baseline, tolerance=0.3) != []
    assert check_regression([measurement], baseline, tolerance=0.3, signals="work") == []
    with pytest.raises(ExperimentError):
        check_regression([measurement], baseline, signals="bogus")


def test_load_document_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ExperimentError):
        load_document(str(path))


def test_committed_bench_file_has_baseline_and_optimised_entries():
    """The acceptance contract: BENCH_speakup.json carries the trajectory —
    the PR 2 pre-optimisation baseline and its optimised follow-up, with the
    optimised stress-mega at least 2x the baseline events/sec.

    Matched by label so later entries (other PRs, other machines) never
    disturb the pinned pair: both PR 2 entries were recorded back-to-back
    on one machine, which is what makes their wall-clock ratio meaningful."""
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    document = load_document(os.path.join(repo_root, "BENCH_speakup.json"))
    full = [entry for entry in document["entries"] if entry["mode"] == "full"]
    baselines = [e for e in full if e["label"].startswith("PR2 baseline")]
    optimised = [e for e in full if e["label"].startswith("PR2: dirty-set")]
    assert baselines and optimised, (
        "the PR 2 baseline/optimised full-mode entry pair must stay in "
        "BENCH_speakup.json — it is the acceptance artifact for the "
        "dirty-set allocator"
    )
    base_case = baselines[0]["cases"]["stress-mega"]
    new_case = optimised[0]["cases"]["stress-mega"]
    # Same pinned config (identical deterministic event counts) ...
    assert new_case["events"] == base_case["events"]
    # ... and at least the promised speedup.
    assert new_case["events_per_s"] >= 2.0 * base_case["events_per_s"], (
        f"stress-mega: {new_case['events_per_s']:.0f} events/s is not >= 2x "
        f"the baseline {base_case['events_per_s']:.0f} events/s"
    )
