"""Tests for the workload clients (arrivals, windowing, backlog, stats)."""

import pytest

from repro.clients.bad import BadClient
from repro.clients.cheats import FocusedCheater, LurkingCheater
from repro.clients.good import GoodClient
from repro.clients.population import PopulationSpec, build_mixed_population, build_population
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.errors import ClientError
from repro.simnet.topology import build_lan, uniform_bandwidths
from tests.conftest import make_deployment


def build_empty_deployment(clients=4, capacity=10.0, defense="speakup", seed=0):
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(clients, 2 * MBIT))
    config = DeploymentConfig(server_capacity_rps=capacity, defense=defense, seed=seed)
    return Deployment(topology, thinner_host, config), hosts


def test_client_parameter_validation():
    deployment, hosts = build_empty_deployment()
    with pytest.raises(ClientError):
        GoodClient(deployment, hosts[0], rate_rps=0.0)
    with pytest.raises(ClientError):
        GoodClient(deployment, hosts[1], window=0)
    with pytest.raises(ClientError):
        GoodClient(deployment, hosts[2], backlog_timeout=0.0)


def test_default_rates_and_windows_match_the_paper():
    deployment, hosts = build_empty_deployment()
    good = GoodClient(deployment, hosts[0])
    bad = BadClient(deployment, hosts[1])
    assert (good.rate_rps, good.window, good.client_class) == (2.0, 1, "good")
    assert (bad.rate_rps, bad.window, bad.client_class) == (40.0, 20, "bad")


def test_good_client_window_limits_outstanding_requests():
    deployment, hosts = build_empty_deployment(clients=1, capacity=2.0)
    client = GoodClient(deployment, hosts[0])
    deployment.run(10.0)
    # Window is one: outstanding can never exceed it.
    assert client.outstanding <= 1
    assert client.stats.issued >= client.stats.sent
    assert client.stats.sent >= client.stats.served


def test_bad_client_keeps_many_requests_outstanding():
    deployment, hosts = build_empty_deployment(clients=1, capacity=1.0)
    client = BadClient(deployment, hosts[0])
    deployment.run(10.0)
    assert client.outstanding == client.window


def test_backlogged_requests_time_out_as_denials():
    deployment, hosts = build_empty_deployment(clients=1, capacity=0.5)
    client = BadClient(deployment, hosts[0], rate_rps=30.0, window=2)
    deployment.run(25.0)
    assert client.stats.denied > 0
    # Conservation: every issued request is accounted for exactly once.
    accounted = (client.stats.served + client.stats.denied + client.stats.dropped
                 + client.outstanding + len(client.backlog))
    assert accounted == client.stats.issued


def test_served_requests_record_payment_metrics():
    deployment, result = make_deployment(good=2, bad=2, capacity=8.0, duration=12.0)
    good_clients = deployment.good_clients
    assert any(client.stats.payment_times for client in good_clients)
    for client in good_clients:
        for payment_time in client.stats.payment_times:
            assert payment_time >= 0.0
        assert client.stats.served_fraction <= 1.0
        assert client.total_bytes_spent() >= client.stats.bytes_paid


def test_difficulty_callable_draws_per_request():
    deployment, hosts = build_empty_deployment(clients=1, capacity=20.0)
    client = GoodClient(deployment, hosts[0], difficulty=lambda c: c.rng.uniform(1.0, 3.0))
    deployment.run(5.0)
    assert client.stats.issued > 0


def test_population_builder_counts_and_classes():
    deployment, hosts = build_empty_deployment(clients=6)
    clients = build_mixed_population(deployment, hosts, good_count=4, bad_count=2)
    assert len(clients) == 6
    assert len(deployment.good_clients) == 4
    assert len(deployment.bad_clients) == 2
    assert deployment.aggregate_bandwidth_bps("good") == pytest.approx(4 * 2 * MBIT)


def test_population_builder_rejects_count_mismatch_and_bad_class():
    deployment, hosts = build_empty_deployment(clients=3)
    with pytest.raises(ClientError):
        build_mixed_population(deployment, hosts, good_count=1, bad_count=1)
    with pytest.raises(ClientError):
        build_population(deployment, hosts, [PopulationSpec(count=3, client_class="weird")])


def test_population_spec_defaults_follow_class():
    good_spec = PopulationSpec(count=1, client_class="good")
    bad_spec = PopulationSpec(count=1, client_class="bad")
    assert (good_spec.resolved_rate(), good_spec.resolved_window()) == (2.0, 1)
    assert (bad_spec.resolved_rate(), bad_spec.resolved_window()) == (40.0, 20)


def test_focused_cheater_uses_one_channel_at_a_time():
    deployment, hosts = build_empty_deployment(clients=2, capacity=4.0)
    cheater = FocusedCheater(deployment, hosts[0], rate_rps=10.0, window=5)
    GoodClient(deployment, hosts[1])
    deployment.run(12.0)
    open_channels = sum(1 for channel in cheater.channels.values() if channel.is_open)
    assert open_channels <= 1
    assert cheater.client_class == "bad"


def test_lurking_cheater_delays_payment():
    deployment, hosts = build_empty_deployment(clients=2, capacity=4.0)
    lurker = LurkingCheater(deployment, hosts[0], lurk_delay=2.0, rate_rps=5.0, window=3)
    GoodClient(deployment, hosts[1])
    deployment.run(10.0)
    assert lurker.stats.issued > 0
    with pytest.raises(ClientError):
        LurkingCheater(deployment, hosts[1], lurk_delay=-1.0)


def test_cheaters_cannot_beat_proportional_share_by_much():
    """Theorem 3.1 in action: timing games cannot grossly exceed the
    bandwidth-proportional share."""
    from repro.clients.population import build_population

    def run(factory):
        topology, hosts, thinner_host = build_lan(uniform_bandwidths(4, 2 * MBIT))
        deployment = Deployment(
            topology, thinner_host,
            DeploymentConfig(server_capacity_rps=10.0, defense="speakup", seed=4),
        )
        GoodClient(deployment, hosts[0])
        GoodClient(deployment, hosts[1])
        factory(deployment, hosts[2])
        factory(deployment, hosts[3])
        deployment.run(20.0)
        return deployment.results()

    focused = run(lambda dep, host: FocusedCheater(dep, host))
    plain = run(lambda dep, host: BadClient(dep, host))
    # Cheating with timing should not buy dramatically more than the plain
    # bad client strategy (both hold ~half the bandwidth).
    assert focused.bad_allocation < plain.bad_allocation + 0.2
    assert focused.bad_allocation < 0.75


# ---------------------------------------------------------------------------
# Batched arrival pregeneration
# ---------------------------------------------------------------------------


def test_arrival_batch_validation():
    deployment, hosts = build_empty_deployment()
    with pytest.raises(ClientError):
        GoodClient(deployment, hosts[0], arrival_batch=0)


def test_batched_arrivals_match_legacy_scheduler_exactly():
    """The pregenerated path must consume the client stream in the legacy
    order.  A trivially-callable difficulty forces the legacy per-event
    scheduler without drawing anything itself, so both runs must produce
    bit-identical request issue times and outcomes."""

    def run(difficulty):
        deployment, hosts = build_empty_deployment(clients=4, capacity=8.0, seed=9)
        clients = [
            GoodClient(deployment, hosts[0], difficulty=difficulty),
            GoodClient(deployment, hosts[1], difficulty=difficulty),
            BadClient(deployment, hosts[2], difficulty=difficulty),
            BadClient(deployment, hosts[3], difficulty=difficulty),
        ]
        assert clients[0]._batched_arrivals == (not callable(difficulty))
        deployment.run(8.0)
        return deployment

    batched = run(1.0)
    legacy = run(lambda client: 1.0)
    for client_b, client_l in zip(batched.clients, legacy.clients):
        assert client_b.stats.issued == client_l.stats.issued
        assert client_b.stats.served == client_l.stats.served
        assert client_b.stats.response_times == client_l.stats.response_times
        assert client_b.stats.prices == client_l.stats.prices
    assert batched.results().to_dict() == legacy.results().to_dict()


def test_batched_arrivals_match_legacy_under_modulation():
    """Same contract with thinning in play: the refill loop's
    gap/accept draw interleaving must match the per-event scheduler's."""

    def run(difficulty):
        deployment, hosts = build_empty_deployment(clients=2, capacity=8.0, seed=5)
        modulator = lambda now: 0.4 if now < 4.0 else 1.0
        for host in hosts:
            GoodClient(deployment, host, rate_rps=6.0,
                       rate_modulator=modulator, difficulty=difficulty)
        deployment.run(8.0)
        return [client.stats.issued for client in deployment.clients], deployment.results()

    batched_issued, batched_result = run(1.0)
    legacy_issued, legacy_result = run(lambda client: 1.0)
    assert batched_issued == legacy_issued
    assert batched_result.to_dict() == legacy_result.to_dict()


def test_idle_modulated_clients_cost_almost_no_events():
    """A floor-zero modulated cohort must not scale engine event count:
    thinned-away candidates die in the refill loop, not in the queue."""
    from repro.clients.base import MAX_CANDIDATES_PER_REFILL

    def run(modulator):
        deployment, hosts = build_empty_deployment(clients=4, capacity=10.0, seed=2)
        for host in hosts:
            GoodClient(deployment, host, rate_rps=50.0, rate_modulator=modulator)
        deployment.run(20.0)
        return deployment.engine.events_processed

    idle_events = run(lambda now: 0.0)
    # 4 clients x 50 candidates/s x 20 s = 4000 candidates; the legacy
    # scheduler would have burned one event per candidate.  Batched
    # pregeneration needs only ~one resume event per MAX_CANDIDATES.
    candidates = 4 * 50.0 * 20.0
    assert idle_events <= candidates / MAX_CANDIDATES_PER_REFILL + 16


def test_pregeneration_stops_near_run_horizon():
    """A short run must not pregenerate (or buffer) a whole batch of
    post-horizon arrivals for every client."""
    deployment, hosts = build_empty_deployment(clients=1, capacity=10.0, seed=3)
    client = GoodClient(deployment, hosts[0], rate_rps=1.0)
    deployment.run(0.5)
    # rate 1/s over 0.5 s: a handful of chained chunks at most, not the
    # full 64-draw batch (~64 simulated seconds of lookahead).
    assert len(client._pending_arrivals) <= 8
    assert client._gen_time < 40.0


def test_population_spec_threads_arrival_batch():
    deployment, hosts = build_empty_deployment(clients=2)
    clients = build_population(
        deployment, hosts,
        [PopulationSpec(count=2, client_class="good", arrival_batch=7)],
    )
    assert all(client.arrival_batch == 7 for client in clients)
