"""Tests for the adaptive (attack-triggered engagement) defense."""

import pytest

from repro.clients.bad import BadClient
from repro.clients.good import GoodClient
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.defenses import AdaptiveDefense, AdaptiveThinner, DefenseSpec
from repro.errors import DefenseError
from repro.experiments.adaptive import adaptive_engagement, format_adaptive
from repro.experiments.base import ExperimentScale
from repro.metrics.collector import EngagementMetrics, RunResult
from repro.scenarios.registry import build_scenario
from repro.simnet.topology import build_lan, uniform_bandwidths

#: A small pulse setup every test shares: capacity 20, pre-pulse good demand
#: 8 req/s (utilisation 0.4, below the 0.6 disengage threshold), one attack
#: pulse from t=10 to t=18, modest bad windows so the backlog drains fast.
PULSE = dict(
    good_clients=4,
    bad_clients=4,
    capacity_rps=20.0,
    pulse_start_s=10.0,
    pulse_length_s=8.0,
    bad_window=5,
    duration=48.0,
    check_interval_s=1.0,
)


def pulse_spec(**overrides):
    return build_scenario("adaptive-pulse", **{**PULSE, **overrides})


def test_adaptive_engages_during_pulse_and_disengages_around_it():
    result = pulse_spec().run()
    engagement = result.engagement
    assert engagement is not None

    pulse_start = PULSE["pulse_start_s"]
    pulse_end = pulse_start + PULSE["pulse_length_s"]
    # Disengaged before the pulse, engaged during it, disengaged after the
    # backlog drains, well before the run ends.
    assert not engagement.engaged_at(pulse_start - 1.0)
    assert engagement.engaged_at(pulse_start + 3.0)
    assert engagement.engaged_at(pulse_end - 1.0)
    assert not engagement.engaged_at(PULSE["duration"] - 1.0)
    assert not engagement.engaged_at_end

    # One engage and one disengage, in order, inside the run.
    assert engagement.engagements == 1
    assert engagement.first_engaged_at == pytest.approx(pulse_start, abs=3.0)
    assert engagement.last_disengaged_at is not None
    assert engagement.last_disengaged_at > pulse_end
    assert 0.0 < engagement.time_engaged < PULSE["duration"]


def test_adaptive_never_engages_without_an_attack():
    result = pulse_spec(bad_clients=0).run()
    engagement = result.engagement
    assert engagement.transitions == []
    assert engagement.engagements == 0
    assert engagement.time_engaged == 0.0
    # Peacetime means nobody pays a byte.
    assert result.payment_bytes_sunk == 0.0
    assert result.good.bytes_paid == 0.0


def test_adaptive_tracks_always_on_service_and_beats_undefended():
    adaptive = pulse_spec().run()
    always_on = pulse_spec().with_value("defense_spec.name", "speakup").run()
    off = pulse_spec().with_value("defense_spec.name", "none").run()
    # Engagement restores (most of) the good clients' allocation during the
    # pulse; the undefended baseline gives the pulse to the attackers.
    assert adaptive.good_allocation >= off.good_allocation
    assert adaptive.good_fraction_served >= off.good_fraction_served - 0.05
    assert adaptive.good_fraction_served >= always_on.good_fraction_served - 0.1
    # But the adaptive run charges payment only around the pulse.
    assert 0.0 < adaptive.payment_bytes_sunk <= always_on.payment_bytes_sunk


def test_adaptive_conserves_requests_across_switches():
    deployment = pulse_spec().build()
    deployment.run(PULSE["duration"])
    thinner = deployment.thinner
    assert isinstance(thinner, AdaptiveThinner)
    assert deployment.network.counters.engagement_switches >= 2
    stats = thinner.stats
    # Every received request is admitted, dropped, or still contending.
    assert stats.requests_received == (
        stats.requests_admitted + stats.requests_dropped + thinner.contending_count
    )
    assert stats.requests_served > 0


def test_adaptive_validation():
    with pytest.raises(DefenseError, match="disengage_threshold"):
        AdaptiveDefense(engage_threshold=0.5, disengage_threshold=0.8)
    with pytest.raises(DefenseError, match="check_interval"):
        AdaptiveDefense(check_interval=0.0)
    with pytest.raises(DefenseError, match="nest"):
        AdaptiveDefense(inner="adaptive")


def test_adaptive_metrics_round_trip():
    result = pulse_spec().run()
    rebuilt = RunResult.from_dict(result.to_dict())
    assert rebuilt.engagement is not None
    assert rebuilt.engagement.transitions == result.engagement.transitions
    assert rebuilt.engagement.time_engaged == pytest.approx(
        result.engagement.time_engaged
    )
    assert rebuilt.defense == "adaptive(speakup)"


def test_engagement_metrics_computations():
    metrics = EngagementMetrics(
        duration=20.0, transitions=[[4.0, True], [9.0, False], [15.0, True]]
    )
    assert metrics.engagements == 2
    assert metrics.first_engaged_at == 4.0
    assert metrics.last_disengaged_at == 9.0
    assert metrics.engaged_at_end
    assert metrics.time_engaged == pytest.approx(10.0)
    assert metrics.engaged_fraction == pytest.approx(0.5)
    assert not metrics.engaged_at(2.0)
    assert metrics.engaged_at(5.0)
    assert not metrics.engaged_at(10.0)
    assert metrics.engaged_at(16.0)


def test_adaptive_fleet_runs_per_shard_watchers():
    spec = build_scenario(
        "adaptive-pulse", good_clients=4, bad_clients=4, capacity_rps=20.0,
        pulse_start_s=6.0, pulse_length_s=6.0, bad_window=5,
        duration=30.0,
    )
    fleet = spec.with_values(
        {"thinner_shards": 2, "shard_policy": "least-loaded"}
    ).run()
    assert len(fleet.shards) == 2
    assert fleet.engagement is None  # the convenience view is single-shard only
    engagements = [shard.engagement for shard in fleet.shards]
    assert all(engagement is not None for engagement in engagements)
    # Both shards see the pulse and engage independently.
    assert all(engagement.engagements >= 1 for engagement in engagements)


def test_adaptive_engagement_experiment_rows():
    rows = adaptive_engagement(
        ExperimentScale(duration=16.0, client_scale=0.12, seed=3),
        check_intervals=(0.5, 2.0),
    )
    assert [row.mode for row in rows] == [
        "adaptive@0.5s", "adaptive@2s", "always-on", "off",
    ]
    by_mode = {row.mode: row for row in rows}
    assert by_mode["adaptive@0.5s"].engage_lag_s is not None
    assert by_mode["adaptive@0.5s"].engage_lag_s <= by_mode["adaptive@2s"].engage_lag_s
    assert by_mode["always-on"].engaged_fraction == 1.0
    assert by_mode["off"].payment_bytes_sunk == 0.0
    table = format_adaptive(rows)
    assert "always-on" in table and "engage lag" in table


def test_adaptive_with_pipeline_inner_surfaces_stage_metrics():
    result = pulse_spec(
        inner_defense="ratelimit>speakup", duration=24.0, pulse_start_s=6.0,
        pulse_length_s=6.0,
    ).run()
    # The engagement happened and the engaged side's screening stage kept
    # its per-stage attribution visible through the adaptive proxy.
    assert result.engagement.engagements >= 1
    assert [stage.name for stage in result.stages] == ["ratelimit"]
    assert result.stages[0].screened > 0
    assert result.defense == "adaptive(ratelimit>speakup)"


def test_adaptive_thinner_direct_wiring():
    topology, hosts, thinner_host = build_lan(uniform_bandwidths(4, 2 * MBIT))
    deployment = Deployment(
        topology,
        thinner_host,
        DeploymentConfig(
            server_capacity_rps=6.0,
            defense=DefenseSpec.make(
                "adaptive", engage_threshold=0.8, disengage_threshold=0.4,
                check_interval=0.5,
            ),
        ),
    )
    for host in hosts[:2]:
        GoodClient(deployment, host)
    for host in hosts[2:]:
        BadClient(deployment, host, rate_rps=40.0, window=10)
    deployment.run(12.0)
    thinner = deployment.thinner
    # The constant attack keeps utilisation pinned: engaged once, still on.
    assert thinner.engaged
    assert thinner.engagement_log and thinner.engagement_log[0][1] is True
    # The merged stats and prices read coherently through the proxy.
    assert thinner.stats.requests_received > 0
    assert len(thinner.prices) > 0
    assert thinner.contending_count == len(thinner.contenders())
