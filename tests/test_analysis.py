"""Tests for the closed-form analysis of §2–§4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.auction import (
    adversarial_advantage,
    auction_price,
    jittered_service_bound,
    post_gap_efficiency,
    theorem_3_1_bound,
)
from repro.analysis.botnet import (
    AVERAGE_BOT_BANDWIDTH_BPS,
    attack_bandwidth,
    clientele_needed_to_survive,
    defended_botnet_multiplier,
)
from repro.analysis.provisioning import (
    payment_traffic_estimate,
    thinner_connection_memory,
    thinner_cpu_headroom,
)
from repro.analysis.theory import (
    allocation_without_speakup,
    good_service_rate,
    ideal_allocation,
    ideal_capacity,
    required_provisioning_factor,
    surviving_good_fraction,
)
from repro.constants import GBIT, KBIT, MBIT
from repro.errors import AnalysisError


# -- §3.1 ---------------------------------------------------------------------

def test_ideal_allocation_basic_cases():
    assert ideal_allocation(50, 50) == pytest.approx(0.5)
    assert ideal_allocation(10, 90) == pytest.approx(0.1)
    assert ideal_allocation(100, 0) == pytest.approx(1.0)
    with pytest.raises(AnalysisError):
        ideal_allocation(0, 0)
    with pytest.raises(AnalysisError):
        ideal_allocation(-1, 1)


def test_good_service_rate_is_min_of_demand_and_share():
    # Demand below the proportional share: demand wins.
    assert good_service_rate(10, 50, 50, 100) == pytest.approx(10)
    # Demand above the share: the share wins.
    assert good_service_rate(80, 50, 50, 100) == pytest.approx(50)


def test_ideal_capacity_matches_paper_example():
    # B = G means a factor of two over the good demand (§3.1).
    assert ideal_capacity(50, 1.0, 1.0) == pytest.approx(100)
    assert required_provisioning_factor(1.0, 1.0) == pytest.approx(2.0)
    # The paper's §7.2 scenario: 25 good clients at 2 req/s, G = B.
    assert ideal_capacity(50, 50.0, 50.0) == pytest.approx(100)
    with pytest.raises(AnalysisError):
        ideal_capacity(10, 0.0, 1.0)


def test_surviving_good_fraction_spare_capacity_examples():
    # §2.1: 50% spare capacity and G = B leaves the good clients whole.
    assert surviving_good_fraction(0.5, 1.0) == pytest.approx(1.0)
    # 90% spare capacity needs only G = B/9.
    assert surviving_good_fraction(0.9, 1.0 / 9.0) == pytest.approx(1.0)
    # Less bandwidth than that and they are harmed.
    assert surviving_good_fraction(0.9, 1.0 / 20.0) < 1.0
    with pytest.raises(AnalysisError):
        surviving_good_fraction(1.5, 1.0)


def test_allocation_without_speakup_matches_illustration():
    # g = 2, B = 40 (in requests/s): good get 2/42 of an overloaded server.
    assert allocation_without_speakup(2, 40, 10) == pytest.approx(2 / 42)
    assert allocation_without_speakup(0, 0, 10) == 0.0


# -- §3.4 ---------------------------------------------------------------------

def test_theorem_bound_examples():
    assert theorem_3_1_bound(0.0) == 0.0
    assert theorem_3_1_bound(1.0) == pytest.approx(1.0)
    # epsilon/2 is a lower bound on the returned (tighter) expression.
    for epsilon in (0.1, 0.25, 0.5, 0.75):
        assert theorem_3_1_bound(epsilon) >= epsilon / 2.0
    with pytest.raises(AnalysisError):
        theorem_3_1_bound(1.5)


def test_jittered_bound_shrinks_with_jitter():
    base = theorem_3_1_bound(0.5)
    assert jittered_service_bound(0.5, 0.0) == pytest.approx(base)
    assert jittered_service_bound(0.5, 0.1) == pytest.approx(0.8 * base)
    with pytest.raises(AnalysisError):
        jittered_service_bound(0.5, 0.6)


def test_post_gap_efficiency_behaviour():
    # Large POST relative to the bandwidth-delay product: gaps negligible.
    big_post = post_gap_efficiency(1_000_000, 2 * MBIT, rtt=0.01)
    assert big_post > 0.99
    # Long RTTs with small POSTs hurt (the Figure 7 effect).
    long_rtt = post_gap_efficiency(100_000, 2 * MBIT, rtt=0.5)
    assert long_rtt < 0.5
    with pytest.raises(AnalysisError):
        post_gap_efficiency(0, 1, 0.1)


def test_auction_price_matches_figure5_upper_bound():
    # G = B = 50 Mbit/s, c = 100 req/s -> 125 KBytes per request.
    assert auction_price(50 * MBIT, 50 * MBIT, 100) == pytest.approx(125_000)
    with pytest.raises(AnalysisError):
        auction_price(1, 1, 0)


def test_adversarial_advantage():
    assert adversarial_advantage(115, 100) == pytest.approx(0.15)
    with pytest.raises(AnalysisError):
        adversarial_advantage(0, 100)


# -- §2.1 ---------------------------------------------------------------------

def test_attack_bandwidth_matches_paper_numbers():
    # 10,000 bots at ~100 Kbit/s, half used: 500 Mbit/s.
    assert attack_bandwidth(10_000) == pytest.approx(500 * MBIT)
    assert attack_bandwidth(100_000) == pytest.approx(5 * GBIT)


def test_clientele_needed_matches_paper_examples():
    # 90% spare capacity: ~1,000 good clients withstand 10,000 bots.
    needed = clientele_needed_to_survive(10_000, 0.9)
    assert needed == pytest.approx(556, rel=0.01) or needed <= 1000
    # And ~10,000 withstand 100,000 bots (same ratio, 10x).
    assert clientele_needed_to_survive(100_000, 0.9) <= 10_000
    with pytest.raises(AnalysisError):
        clientele_needed_to_survive(10, 1.5)


def test_defended_botnet_multiplier_increases_with_spare_capacity():
    assert defended_botnet_multiplier(0.9) > defended_botnet_multiplier(0.5)


# -- §4.3 ---------------------------------------------------------------------

def test_provisioning_helpers():
    assert payment_traffic_estimate(500 * MBIT, 100 * MBIT) == pytest.approx(600 * MBIT)
    assert thinner_connection_memory(100_000) == pytest.approx(100_000 * 32 * 1024)
    assert thinner_cpu_headroom(1.5 * GBIT, 300 * MBIT) == pytest.approx(5.0)
    with pytest.raises(AnalysisError):
        payment_traffic_estimate(-1, 0)
    with pytest.raises(AnalysisError):
        thinner_cpu_headroom(0, 1)


# -- properties ----------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=1.0, max_value=1e9), st.floats(min_value=0.0, max_value=1e9))
def test_ideal_allocation_is_a_valid_fraction(good, bad):
    share = ideal_allocation(good, bad)
    assert 0.0 < share <= 1.0


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=1e6),
    st.floats(min_value=0.1, max_value=1e6),
    st.floats(min_value=0.1, max_value=1e6),
)
def test_ideal_capacity_serves_good_demand_exactly(good_demand, good_bw, bad_bw):
    """Property: at c = c_id the proportional share equals the good demand."""
    capacity = ideal_capacity(good_demand, good_bw, bad_bw)
    share = ideal_allocation(good_bw, bad_bw) * capacity
    assert share == pytest.approx(good_demand, rel=1e-9)


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.001, max_value=1.0))
def test_theorem_bound_is_monotone_and_dominates_half_epsilon(epsilon):
    assert theorem_3_1_bound(epsilon) >= epsilon / 2.0
    assert theorem_3_1_bound(epsilon) <= epsilon
