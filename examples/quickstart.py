#!/usr/bin/env python
"""Quickstart: defend an attacked server with speak-up and see what changes.

The scenario mirrors the paper's illustration (Figure 1): a server that can
handle ``c`` requests per second, a legitimate clientele that only needs a
fraction of that, and a group of bots that issue requests twenty times
faster.  We run the same attack twice — once with no defense and once with
the speak-up thinner in front of the server — and print how the server's
attention was divided.

Run:  python examples/quickstart.py
"""

from repro import quick_demo
from repro.metrics.tables import format_table

GOOD_CLIENTS = 8
BAD_CLIENTS = 8
CAPACITY_RPS = 30.0
DURATION = 30.0


def main() -> None:
    rows = []
    for defense in ("none", "speakup"):
        result = quick_demo(
            good_clients=GOOD_CLIENTS,
            bad_clients=BAD_CLIENTS,
            capacity_rps=CAPACITY_RPS,
            duration=DURATION,
            defense=defense,
            seed=7,
        )
        rows.append(
            (
                defense,
                result.good_allocation,
                result.bad_allocation,
                result.good_fraction_served,
                result.ideal_good_allocation,
            )
        )

    print(
        format_table(
            headers=["defense", "good share", "bad share", "good served frac", "ideal good share"],
            rows=rows,
            title=(
                f"{GOOD_CLIENTS} good + {BAD_CLIENTS} bad clients, "
                f"server capacity {CAPACITY_RPS:.0f} req/s, {DURATION:.0f} simulated seconds"
            ),
        )
    )
    print()
    print("Without speak-up the bots dominate the server because they ask more often.")
    print("With speak-up both populations pay in bandwidth, and the good clients'")
    print("idle upload capacity buys back their bandwidth-proportional share.")


if __name__ == "__main__":
    main()
