#!/usr/bin/env python
"""Life behind a shared bottleneck when the thinner encourages everyone (§4.2, §7.6).

A neighbourhood of clients reaches the defended site through one shared
cable.  When some of those neighbours are bots, the encouragement to "speak
up" means the cable fills with payment traffic, and the good neighbours'
bids are squeezed before they ever reach the thinner.  The server itself
stays protected — the attacker cannot spend more than the cable — but the
good clients behind the cable get less than their bandwidth-proportional
share, which is exactly what Figure 8 of the paper measures.

This example varies how many of the bottlenecked clients are bots and
reports how the bottlenecked good clients fare, compared with good clients
that reach the thinner directly.

Run:  python examples/shared_bottleneck_neighbourhood.py
"""

from repro.clients.population import build_mixed_population
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.metrics.tables import format_table
from repro.simnet.topology import build_bottleneck, uniform_bandwidths

BEHIND_BOTTLENECK = 12
DIRECT_GOOD = 4
DIRECT_BAD = 4
BOTTLENECK_BANDWIDTH = 16 * MBIT   # the neighbourhood can generate 24 Mbit/s
CAPACITY_RPS = 25.0
DURATION = 30.0
SEED = 5


def run_split(good_behind: int):
    bad_behind = BEHIND_BOTTLENECK - good_behind
    topology, bottlenecked, direct, thinner_host, _link = build_bottleneck(
        bottlenecked_bandwidths_bps=uniform_bandwidths(BEHIND_BOTTLENECK, 2 * MBIT),
        direct_bandwidths_bps=uniform_bandwidths(DIRECT_GOOD + DIRECT_BAD, 2 * MBIT),
        bottleneck_bandwidth_bps=BOTTLENECK_BANDWIDTH,
    )
    config = DeploymentConfig(server_capacity_rps=CAPACITY_RPS, defense="speakup", seed=SEED)
    deployment = Deployment(topology, thinner_host, config)
    build_mixed_population(
        deployment, bottlenecked, good_count=good_behind, bad_count=bad_behind,
        good_category="behind-good", bad_category="behind-bad",
    )
    build_mixed_population(
        deployment, direct, good_count=DIRECT_GOOD, bad_count=DIRECT_BAD,
        good_category="direct-good", bad_category="direct-bad",
    )
    deployment.run(DURATION)
    return deployment.results()


def main() -> None:
    rows = []
    for good_behind in (3, 6, 9):
        result = run_split(good_behind)
        rows.append(
            (
                f"{good_behind}/{BEHIND_BOTTLENECK - good_behind}",
                result.allocation_by_category.get("behind-good", 0.0),
                result.allocation_by_category.get("behind-bad", 0.0),
                result.served_fraction_by_category.get("behind-good", 0.0),
                result.served_fraction_by_category.get("direct-good", 0.0),
            )
        )
    print(
        format_table(
            headers=[
                "good/bad behind cable",
                "server share: behind good",
                "server share: behind bad",
                "served frac: behind good",
                "served frac: direct good",
            ],
            rows=rows,
            title="Sharing a bottleneck with bots while the thinner encourages everyone",
        )
    )
    print()
    print("The server stays protected, but good clients stuck behind the same cable")
    print("as bots lose out to their neighbours' concurrent payment channels — the")
    print("collateral cost the paper quantifies in Figure 8.")


if __name__ == "__main__":
    main()
