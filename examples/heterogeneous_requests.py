#!/usr/bin/env python
"""Heterogeneous requests: why the thinner auctions every quantum (§5).

The threat model lets attackers send deliberately *hard* requests.  With the
flat auction of §3.3 a request pays once, at admission, no matter how long
it then occupies the server — so an attacker who only sends ten-quantum
requests buys ten times the server time per byte of payment.  The §5
extension keeps charging a request while it runs (one virtual auction per
scheduling quantum, with SUSPEND/RESUME on the server), which restores the
bandwidth-proportional allocation of server *time*.

This example runs the same mixed workload — good clients sending ordinary
requests, attackers sending only hard ones — under both thinners.

Run:  python examples/heterogeneous_requests.py
"""

from repro.clients.bad import BadClient
from repro.clients.good import GoodClient
from repro.clients.population import build_population, PopulationSpec
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.metrics.tables import format_table
from repro.simnet.topology import build_lan, uniform_bandwidths

GOOD_CLIENTS = 8
BAD_CLIENTS = 8
CAPACITY_RPS = 30.0        # capacity counted in ordinary (1-chunk) requests
HARD_REQUEST_CHUNKS = 5.0  # attackers' requests are five times as expensive
DURATION = 40.0
SEED = 3


def run_with(defense: str):
    topology, hosts, thinner_host = build_lan(
        uniform_bandwidths(GOOD_CLIENTS + BAD_CLIENTS, 2 * MBIT)
    )
    config = DeploymentConfig(server_capacity_rps=CAPACITY_RPS, defense=defense, seed=SEED)
    deployment = Deployment(topology, thinner_host, config)
    specs = [
        PopulationSpec(count=GOOD_CLIENTS, client_class="good", difficulty=1.0),
        # Attackers know which requests are hard and send only those, at a
        # lower rate so their *request* load looks unremarkable.
        PopulationSpec(count=BAD_CLIENTS, client_class="bad", rate_rps=8.0, window=8,
                       difficulty=HARD_REQUEST_CHUNKS),
    ]
    build_population(deployment, hosts, specs)
    deployment.run(DURATION)
    return deployment.results()


def main() -> None:
    rows = []
    for defense, label in (("speakup", "flat auction (charge at admission)"),
                           ("quantum", "quantum auction (charge per quantum)")):
        result = run_with(defense)
        busy_good = result.busy_allocation_by_class.get("good", 0.0)
        busy_bad = result.busy_allocation_by_class.get("bad", 0.0)
        rows.append((label, busy_good, busy_bad, result.good_fraction_served))
    print(
        format_table(
            headers=["thinner", "good share of server time", "bad share of server time",
                     "good served frac"],
            rows=rows,
            title=(
                f"Attackers send only {HARD_REQUEST_CHUNKS:.0f}-chunk requests; "
                "shares are of server busy time"
            ),
        )
    )
    print()
    print("Charging only at admission lets expensive requests buy server time at a")
    print("discount; auctioning every quantum makes attackers pay for every chunk,")
    print("pushing the split of server time back toward bandwidth proportions.")


if __name__ == "__main__":
    main()
