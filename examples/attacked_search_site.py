#!/usr/bin/env python
"""A search site under an extortionist application-level attack.

This is the scenario the paper's introduction motivates: a site whose
requests are computationally expensive (database searches), attacked by a
botnet that issues legitimate-looking queries.  We model a modest search
back-end, a clientele of mostly-quiescent good clients, and a botnet an
order of magnitude smaller in count but far more aggressive per host, and
compare three front-ends:

* no defense;
* per-address rate limiting (a detect-and-block baseline), against bots
  smart enough to stay under the rate limit;
* speak-up's virtual auction.

Run:  python examples/attacked_search_site.py
"""

from repro.clients.population import build_mixed_population
from repro.constants import MBIT
from repro.core.frontend import Deployment, DeploymentConfig
from repro.defenses.ratelimit import RateLimitDefense
from repro.metrics.tables import format_table
from repro.simnet.topology import build_lan, uniform_bandwidths

GOOD_CLIENTS = 12
BAD_CLIENTS = 12
CLIENT_BANDWIDTH = 2 * MBIT
CAPACITY_RPS = 40.0       # the search back-end's sustainable query rate
DURATION = 30.0
SEED = 11

#: Smart bots stay just under a typical per-address rate limit.
SMART_BOT_RATE = 3.5
SMART_BOT_WINDOW = 4
RATE_LIMIT_RPS = 4.0


def run_site(defense_label: str):
    """Run the attack against one front-end configuration."""
    topology, hosts, thinner_host = build_lan(
        uniform_bandwidths(GOOD_CLIENTS + BAD_CLIENTS, CLIENT_BANDWIDTH)
    )
    if defense_label == "ratelimit":
        config = DeploymentConfig(server_capacity_rps=CAPACITY_RPS, defense="none", seed=SEED)
        deployment = Deployment(
            topology,
            thinner_host,
            config,
            thinner_factory=RateLimitDefense(allowed_rps=RATE_LIMIT_RPS).build_thinner,
        )
    else:
        config = DeploymentConfig(
            server_capacity_rps=CAPACITY_RPS, defense=defense_label, seed=SEED
        )
        deployment = Deployment(topology, thinner_host, config)

    # Smart bots: below the rate limit, but still far more active than the
    # legitimate clientele, and they spend their bandwidth when asked.
    build_mixed_population(
        deployment,
        hosts,
        good_count=GOOD_CLIENTS,
        bad_count=BAD_CLIENTS,
        bad_rate=SMART_BOT_RATE,
        bad_window=SMART_BOT_WINDOW,
    )
    deployment.run(DURATION)
    return deployment.results()


def main() -> None:
    rows = []
    for defense in ("none", "ratelimit", "speakup"):
        result = run_site(defense)
        rows.append(
            (
                defense,
                result.good_allocation,
                result.good_fraction_served,
                result.good.payment_time.mean,
            )
        )
    print(
        format_table(
            headers=["front-end", "good share of server", "good served frac", "mean payment time (s)"],
            rows=rows,
            title="Search site under attack by smart bots (below the rate limit)",
        )
    )
    print()
    print("Rate limiting helps little once bots stay under the per-address limit;")
    print("speak-up does not need to tell good from bad — it charges everyone in")
    print("bandwidth, which the quiescent good clients have to spare.")


if __name__ == "__main__":
    main()
