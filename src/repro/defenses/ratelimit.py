"""Per-address rate limiting (a detect-and-block baseline).

§1 calls rate limiting "a special case of profiling in which the acceptable
request rate is the same for all clients".  The thinner keeps a token bucket
per observed client identity and drops requests that exceed it.  Its known
failure modes (per §8.1) are NAT — many legitimate clients behind one
address share one bucket — and spoofing — one attacker presenting many
identities gets many buckets.  The ablation benchmark exercises the latter
with a spoofing bad client.

Rate limiting can also run as a *screening stage* in front of another
admission policy (:class:`RateLimitFilter`): the ``pipeline`` composite uses
it to model the paper's point that speak-up composes with detect-and-block
front-filters — the bucket check screens contenders before they ever enter
the auction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import DefenseError
from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.defenses.base import Defense, FilterStage, registry
from repro.httpd.messages import Request


def observed_identity(request: Request) -> str:
    """The identity a detect-and-block defense can see.

    Spoofers override ``spoofed_id``; everyone else is their client id.
    """
    spoofed = getattr(request, "spoofed_id", None)
    if spoofed:
        return spoofed
    return request.client_id


@dataclass
class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, capacity ``burst``."""

    rate: float
    burst: float
    tokens: float
    last_refill: float

    def try_consume(self, now: float, amount: float = 1.0) -> bool:
        """Refill for elapsed time and consume ``amount`` tokens if available."""
        elapsed = now - self.last_refill
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last_refill = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


class _BucketTable:
    """Per-identity token buckets shared by the thinner and the filter."""

    def __init__(self, allowed_rps: float, burst: Optional[float]) -> None:
        if allowed_rps <= 0:
            raise DefenseError("allowed_rps must be positive")
        self.allowed_rps = allowed_rps
        self.burst = burst if burst is not None else max(1.0, allowed_rps)
        self._buckets: Dict[str, TokenBucket] = {}

    def admit(self, identity: str, now: float) -> bool:
        bucket = self._buckets.get(identity)
        if bucket is None:
            bucket = TokenBucket(
                rate=self.allowed_rps,
                burst=self.burst,
                tokens=self.burst,
                last_refill=now,
            )
            self._buckets[identity] = bucket
        return bucket.try_consume(now)


class RateLimitFilter(FilterStage):
    """Screen requests against per-identity token buckets (pipeline stage)."""

    name = "ratelimit"

    def __init__(self, allowed_rps: float = 4.0, burst: Optional[float] = None) -> None:
        super().__init__()
        self._table = _BucketTable(allowed_rps, burst)

    def screen(
        self, request: Request, client: ClientProtocol, now: float
    ) -> Optional[str]:
        if self._table.admit(observed_identity(request), now):
            return None
        return "rate-limited"


class RateLimitThinner(ThinnerBase):
    """Admit each identity at no more than ``allowed_rps`` requests/s."""

    def __init__(self, *args, allowed_rps: float, burst: Optional[float] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._table = _BucketTable(allowed_rps, burst)
        self.allowed_rps = self._table.allowed_rps
        self.burst = self._table.burst
        self.rejected = 0

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        if not self._table.admit(observed_identity(request), self.engine.now):
            self.rejected += 1
            self._drop(request, "rate-limited")
            return
        if self._server_idle and not self.server.busy:
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        self._add_contender(request, client)

    def _server_ready(self) -> None:
        if not self._contenders:
            self._server_idle = True
            return
        self._admit(self._oldest_contender(), price_bytes=0.0)


class RateLimitDefense(Defense):
    """Factory for :class:`RateLimitThinner` / :class:`RateLimitFilter`."""

    name = "ratelimit"

    def __init__(self, allowed_rps: float = 4.0, burst: Optional[float] = None) -> None:
        self.allowed_rps = allowed_rps
        self.burst = burst

    def build_thinner(self, deployment, shard: int = 0, server=None) -> RateLimitThinner:
        return RateLimitThinner(
            allowed_rps=self.allowed_rps,
            burst=self.burst,
            **self.thinner_kwargs(deployment, shard, server=server),
        )

    def build_filter(self, deployment, shard: int = 0) -> RateLimitFilter:
        return RateLimitFilter(allowed_rps=self.allowed_rps, burst=self.burst)

    def describe(self) -> str:
        return f"rate limit ({self.allowed_rps:g} req/s per address)"


registry.register(RateLimitDefense.name, RateLimitDefense)
