"""Per-address rate limiting (a detect-and-block baseline).

§1 calls rate limiting "a special case of profiling in which the acceptable
request rate is the same for all clients".  The thinner keeps a token bucket
per observed client identity and drops requests that exceed it.  Its known
failure modes (per §8.1) are NAT — many legitimate clients behind one
address share one bucket — and spoofing — one attacker presenting many
identities gets many buckets.  The ablation benchmark exercises the latter
with a spoofing bad client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import DefenseError
from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.defenses.base import Defense, registry
from repro.httpd.messages import Request


@dataclass
class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, capacity ``burst``."""

    rate: float
    burst: float
    tokens: float
    last_refill: float

    def try_consume(self, now: float, amount: float = 1.0) -> bool:
        """Refill for elapsed time and consume ``amount`` tokens if available."""
        elapsed = now - self.last_refill
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last_refill = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


class RateLimitThinner(ThinnerBase):
    """Admit each identity at no more than ``allowed_rps`` requests/s."""

    def __init__(self, *args, allowed_rps: float, burst: Optional[float] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if allowed_rps <= 0:
            raise DefenseError("allowed_rps must be positive")
        self.allowed_rps = allowed_rps
        self.burst = burst if burst is not None else max(1.0, allowed_rps)
        self._buckets: Dict[str, TokenBucket] = {}
        self.rejected = 0

    def _bucket_for(self, identity: str) -> TokenBucket:
        bucket = self._buckets.get(identity)
        if bucket is None:
            bucket = TokenBucket(
                rate=self.allowed_rps,
                burst=self.burst,
                tokens=self.burst,
                last_refill=self.engine.now,
            )
            self._buckets[identity] = bucket
        return bucket

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        identity = self._observed_identity(request, client)
        if not self._bucket_for(identity).try_consume(self.engine.now):
            self.rejected += 1
            self._drop(request, "rate-limited")
            return
        if self._server_idle and not self.server.busy:
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        self._add_contender(request, client)

    def _server_ready(self) -> None:
        if not self._contenders:
            self._server_idle = True
            return
        self._admit(self._oldest_contender(), price_bytes=0.0)

    @staticmethod
    def _observed_identity(request: Request, client: ClientProtocol) -> str:
        """The identity the defense can see — spoofers override ``spoofed_id``."""
        spoofed = getattr(request, "spoofed_id", None)
        if spoofed:
            return spoofed
        return request.client_id


class RateLimitDefense(Defense):
    """Factory for :class:`RateLimitThinner`."""

    name = "ratelimit"

    def __init__(self, allowed_rps: float = 4.0, burst: Optional[float] = None) -> None:
        self.allowed_rps = allowed_rps
        self.burst = burst

    def build_thinner(self, deployment) -> RateLimitThinner:
        return RateLimitThinner(
            engine=deployment.engine,
            network=deployment.network,
            server=deployment.server,
            host=deployment.thinner_host,
            allowed_rps=self.allowed_rps,
            burst=self.burst,
            encouragement_delay=deployment.config.encouragement_delay,
            payment_timeout=deployment.config.payment_timeout,
            max_contenders=deployment.config.max_contenders,
        )

    def describe(self) -> str:
        return f"rate limit ({self.allowed_rps:g} req/s per address)"


registry.register(RateLimitDefense.name, RateLimitDefense)
