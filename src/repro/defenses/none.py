"""No defense: the overloaded server randomly drops excess requests."""

from __future__ import annotations

from typing import Optional

from repro.core.admission import NoDefenseThinner
from repro.core.thinner import ThinnerBase
from repro.defenses.base import Defense, registry


class NoDefense(Defense):
    """The undefended baseline (the paper's "without speak-up" runs).

    ``policy`` ("random" or "fifo") defaults to the deployment's
    ``admission_policy`` knob, which is what the historical
    ``defense="none"`` string path always used.
    """

    name = "none"

    def __init__(self, policy: Optional[str] = None) -> None:
        self.policy = policy

    def build_thinner(self, deployment, shard: int = 0, server=None) -> ThinnerBase:
        policy = self.policy if self.policy is not None else deployment.config.admission_policy
        return NoDefenseThinner(
            rng=deployment.shard_stream("admission", shard),
            policy=policy,
            **self.thinner_kwargs(deployment, shard, server=server),
        )

    def describe(self) -> str:
        policy = self.policy if self.policy is not None else "admission_policy"
        return f"no defense ({policy} drop on overload)"


registry.register(NoDefense.name, NoDefense)
