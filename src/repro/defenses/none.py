"""No defense: the overloaded server randomly drops excess requests."""

from __future__ import annotations

from repro.core.admission import NoDefenseThinner
from repro.core.thinner import ThinnerBase
from repro.defenses.base import Defense, registry


class NoDefense(Defense):
    """The undefended baseline (the paper's "without speak-up" runs)."""

    name = "none"

    def __init__(self, policy: str = "random") -> None:
        self.policy = policy

    def build_thinner(self, deployment) -> ThinnerBase:
        return NoDefenseThinner(
            engine=deployment.engine,
            network=deployment.network,
            server=deployment.server,
            host=deployment.thinner_host,
            rng=deployment.streams.stream("admission"),
            policy=self.policy,
            encouragement_delay=deployment.config.encouragement_delay,
            payment_timeout=deployment.config.payment_timeout,
            max_contenders=deployment.config.max_contenders,
        )

    def describe(self) -> str:
        return f"no defense ({self.policy} drop on overload)"


registry.register(NoDefense.name, NoDefense)
