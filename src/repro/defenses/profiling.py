"""Historical profiling (the most commonly deployed detect-and-block defense).

§8.1: profiling products "build a historical profile of the defended
server's clientele and, when the server is attacked, block traffic violating
the profile".  We model the profile as a per-identity allowed request rate:
either supplied explicitly (what the operator learned before the attack) or
learned during the first ``learning_period`` seconds of the run.  The known
weakness the paper emphasises — bots smart enough to fly under the profiling
radar, or that built up a profile before attacking — corresponds here to bad
clients whose request rate stays at or below the learned baseline.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DefenseError
from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.defenses.base import Defense, registry
from repro.defenses.ratelimit import TokenBucket
from repro.httpd.messages import Request


class ProfilingThinner(ThinnerBase):
    """Enforce a learned (or given) per-identity demand profile."""

    def __init__(
        self,
        *args,
        baseline_profile: Optional[Dict[str, float]] = None,
        default_allowed_rps: float = 4.0,
        learning_period: float = 0.0,
        slack_factor: float = 1.5,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if default_allowed_rps <= 0:
            raise DefenseError("default_allowed_rps must be positive")
        if slack_factor < 1.0:
            raise DefenseError("slack_factor must be at least 1.0")
        self.baseline_profile = dict(baseline_profile or {})
        self.default_allowed_rps = default_allowed_rps
        self.learning_period = learning_period
        self.slack_factor = slack_factor
        self._observed: Dict[str, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self.rejected = 0

    # -- profile handling ------------------------------------------------------------

    def allowed_rate(self, identity: str) -> float:
        """The request rate the profile permits for ``identity``."""
        if identity in self.baseline_profile:
            return self.baseline_profile[identity] * self.slack_factor
        if self.learning_period > 0 and identity in self._observed:
            learned = self._observed[identity] / self.learning_period
            return max(learned, 0.1) * self.slack_factor
        return self.default_allowed_rps

    def _enforcing(self) -> bool:
        return self.engine.now >= self.learning_period

    def _bucket_for(self, identity: str) -> TokenBucket:
        bucket = self._buckets.get(identity)
        if bucket is None:
            rate = self.allowed_rate(identity)
            bucket = TokenBucket(rate=rate, burst=max(1.0, rate), tokens=max(1.0, rate),
                                 last_refill=self.engine.now)
            self._buckets[identity] = bucket
        return bucket

    # -- thinner behaviour --------------------------------------------------------------

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        identity = getattr(request, "spoofed_id", None) or request.client_id
        if not self._enforcing():
            self._observed[identity] = self._observed.get(identity, 0) + 1
        elif not self._bucket_for(identity).try_consume(self.engine.now):
            self.rejected += 1
            self._drop(request, "profile-violation")
            return
        if self._server_idle and not self.server.busy:
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        self._add_contender(request, client)

    def _server_ready(self) -> None:
        if not self._contenders:
            self._server_idle = True
            return
        self._admit(self._oldest_contender(), price_bytes=0.0)


class ProfilingDefense(Defense):
    """Factory for :class:`ProfilingThinner`."""

    name = "profiling"

    def __init__(
        self,
        baseline_profile: Optional[Dict[str, float]] = None,
        default_allowed_rps: float = 4.0,
        learning_period: float = 0.0,
        slack_factor: float = 1.5,
    ) -> None:
        self.baseline_profile = baseline_profile
        self.default_allowed_rps = default_allowed_rps
        self.learning_period = learning_period
        self.slack_factor = slack_factor

    def build_thinner(self, deployment) -> ProfilingThinner:
        return ProfilingThinner(
            engine=deployment.engine,
            network=deployment.network,
            server=deployment.server,
            host=deployment.thinner_host,
            baseline_profile=self.baseline_profile,
            default_allowed_rps=self.default_allowed_rps,
            learning_period=self.learning_period,
            slack_factor=self.slack_factor,
            encouragement_delay=deployment.config.encouragement_delay,
            payment_timeout=deployment.config.payment_timeout,
            max_contenders=deployment.config.max_contenders,
        )

    def describe(self) -> str:
        return f"profiling (default {self.default_allowed_rps:g} req/s, slack {self.slack_factor:g}x)"


registry.register(ProfilingDefense.name, ProfilingDefense)
