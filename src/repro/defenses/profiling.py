"""Historical profiling (the most commonly deployed detect-and-block defense).

§8.1: profiling products "build a historical profile of the defended
server's clientele and, when the server is attacked, block traffic violating
the profile".  We model the profile as a per-identity allowed request rate:
either supplied explicitly (what the operator learned before the attack) or
learned during the first ``learning_period`` seconds of the run.  The known
weakness the paper emphasises — bots smart enough to fly under the profiling
radar, or that built up a profile before attacking — corresponds here to bad
clients whose request rate stays at or below the learned baseline.

Profiling is exactly the front-filter the paper imagines layering *ahead* of
speak-up ("a profiling defense might run in front of the thinner, blocking
clients that violate the profile while the auction prices the rest"):
:class:`ProfilingFilter` packages the same profile enforcement as a pipeline
screening stage.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DefenseError
from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.defenses.base import Defense, FilterStage, registry
from repro.defenses.ratelimit import TokenBucket, observed_identity
from repro.httpd.messages import Request


class _ProfileTable:
    """Per-identity demand profile shared by the thinner and the filter."""

    def __init__(
        self,
        baseline_profile: Optional[Dict[str, float]],
        default_allowed_rps: float,
        learning_period: float,
        slack_factor: float,
    ) -> None:
        if default_allowed_rps <= 0:
            raise DefenseError("default_allowed_rps must be positive")
        if slack_factor < 1.0:
            raise DefenseError("slack_factor must be at least 1.0")
        self.baseline_profile = dict(baseline_profile or {})
        self.default_allowed_rps = default_allowed_rps
        self.learning_period = learning_period
        self.slack_factor = slack_factor
        self._observed: Dict[str, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}

    def allowed_rate(self, identity: str) -> float:
        """The request rate the profile permits for ``identity``."""
        if identity in self.baseline_profile:
            return self.baseline_profile[identity] * self.slack_factor
        if self.learning_period > 0 and identity in self._observed:
            learned = self._observed[identity] / self.learning_period
            return max(learned, 0.1) * self.slack_factor
        return self.default_allowed_rps

    def enforcing(self, now: float) -> bool:
        return now >= self.learning_period

    def observe(self, identity: str) -> None:
        self._observed[identity] = self._observed.get(identity, 0) + 1

    def admit(self, identity: str, now: float) -> bool:
        bucket = self._buckets.get(identity)
        if bucket is None:
            rate = self.allowed_rate(identity)
            bucket = TokenBucket(rate=rate, burst=max(1.0, rate), tokens=max(1.0, rate),
                                 last_refill=now)
            self._buckets[identity] = bucket
        return bucket.try_consume(now)


class ProfilingFilter(FilterStage):
    """Enforce a demand profile as a pipeline screening stage."""

    name = "profiling"

    def __init__(
        self,
        baseline_profile: Optional[Dict[str, float]] = None,
        default_allowed_rps: float = 4.0,
        learning_period: float = 0.0,
        slack_factor: float = 1.5,
    ) -> None:
        super().__init__()
        self._profile = _ProfileTable(
            baseline_profile, default_allowed_rps, learning_period, slack_factor
        )

    def allowed_rate(self, identity: str) -> float:
        return self._profile.allowed_rate(identity)

    def screen(
        self, request: Request, client: ClientProtocol, now: float
    ) -> Optional[str]:
        identity = observed_identity(request)
        if not self._profile.enforcing(now):
            self._profile.observe(identity)
            return None
        if self._profile.admit(identity, now):
            return None
        return "profile-violation"


class ProfilingThinner(ThinnerBase):
    """Enforce a learned (or given) per-identity demand profile."""

    def __init__(
        self,
        *args,
        baseline_profile: Optional[Dict[str, float]] = None,
        default_allowed_rps: float = 4.0,
        learning_period: float = 0.0,
        slack_factor: float = 1.5,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._profile = _ProfileTable(
            baseline_profile, default_allowed_rps, learning_period, slack_factor
        )
        self.baseline_profile = self._profile.baseline_profile
        self.default_allowed_rps = default_allowed_rps
        self.learning_period = learning_period
        self.slack_factor = slack_factor
        self.rejected = 0

    # -- profile handling ------------------------------------------------------------

    def allowed_rate(self, identity: str) -> float:
        """The request rate the profile permits for ``identity``."""
        return self._profile.allowed_rate(identity)

    def _enforcing(self) -> bool:
        return self._profile.enforcing(self.engine.now)

    # -- thinner behaviour --------------------------------------------------------------

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        identity = observed_identity(request)
        if not self._enforcing():
            self._profile.observe(identity)
        elif not self._profile.admit(identity, self.engine.now):
            self.rejected += 1
            self._drop(request, "profile-violation")
            return
        if self._server_idle and not self.server.busy:
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        self._add_contender(request, client)

    def _server_ready(self) -> None:
        if not self._contenders:
            self._server_idle = True
            return
        self._admit(self._oldest_contender(), price_bytes=0.0)


class ProfilingDefense(Defense):
    """Factory for :class:`ProfilingThinner` / :class:`ProfilingFilter`."""

    name = "profiling"

    def __init__(
        self,
        baseline_profile: Optional[Dict[str, float]] = None,
        default_allowed_rps: float = 4.0,
        learning_period: float = 0.0,
        slack_factor: float = 1.5,
    ) -> None:
        self.baseline_profile = baseline_profile
        self.default_allowed_rps = default_allowed_rps
        self.learning_period = learning_period
        self.slack_factor = slack_factor

    def _profile_kwargs(self) -> dict:
        return dict(
            baseline_profile=self.baseline_profile,
            default_allowed_rps=self.default_allowed_rps,
            learning_period=self.learning_period,
            slack_factor=self.slack_factor,
        )

    def build_thinner(self, deployment, shard: int = 0, server=None) -> ProfilingThinner:
        return ProfilingThinner(
            **self._profile_kwargs(),
            **self.thinner_kwargs(deployment, shard, server=server),
        )

    def build_filter(self, deployment, shard: int = 0) -> ProfilingFilter:
        return ProfilingFilter(**self._profile_kwargs())

    def describe(self) -> str:
        return f"profiling (default {self.default_allowed_rps:g} req/s, slack {self.slack_factor:g}x)"


registry.register(ProfilingDefense.name, ProfilingDefense)
