"""Admission policies: speak-up, its baselines, and composable layers.

§1 and §8 of the paper place speak-up in a taxonomy: massive
over-provisioning, detect-and-block (profiling, rate-limiting, CAPTCHAs,
capabilities), and currency schemes (proof-of-work, money, and — speak-up's
contribution — bandwidth).  This subpackage implements simplified but
functional versions of the detect-and-block and proof-of-work baselines so
the ablation benchmarks (``benchmarks/bench_ablation_baselines.py``) can
compare them against speak-up under the threat model the paper assumes
(spoofing, smart bots, unequal requests).

Defense selection is data: a frozen :class:`~repro.defenses.spec.DefenseSpec`
names a registered defense plus its factory kwargs, and two composites build
bigger policies out of smaller ones —

* :class:`~repro.defenses.pipeline.PipelineDefense` layers screening stages
  (ratelimit/profiling/captcha) in front of an admission defense
  (``defense="ratelimit>speakup"``), the paper's "speak-up composes with
  other defenses" point;
* :class:`~repro.defenses.adaptive.AdaptiveDefense` starts undefended and
  engages an inner defense only while a load watcher sees the server under
  attack — the paper's "the thinner does nothing in peacetime" design point.

Attach a defense to a deployment declaratively::

    DeploymentConfig(defense=DefenseSpec.make("ratelimit", allowed_rps=4.0))

or with the historical string sugar (``defense="speakup"``), or — for
hand-built setups — via the factory hook::

    Deployment(topology, thinner_host, config,
               thinner_factory=RateLimitDefense(allowed_rps=4.0).build_thinner)
"""

from repro.defenses.base import Defense, DefenseRegistry, FilterStage, registry
from repro.defenses.spec import DefenseSpec, normalise_defense
from repro.defenses.none import NoDefense
from repro.defenses.speakup import SpeakUpDefense
from repro.defenses.ratelimit import RateLimitDefense, RateLimitFilter, RateLimitThinner
from repro.defenses.profiling import ProfilingDefense, ProfilingFilter, ProfilingThinner
from repro.defenses.pow import ProofOfWorkDefense, ProofOfWorkThinner
from repro.defenses.captcha import CaptchaDefense, CaptchaFilter, CaptchaThinner
from repro.defenses.pipeline import PipelineDefense, PipelineThinner
from repro.defenses.adaptive import AdaptiveDefense, AdaptiveThinner

__all__ = [
    "Defense",
    "DefenseRegistry",
    "DefenseSpec",
    "FilterStage",
    "normalise_defense",
    "registry",
    "NoDefense",
    "SpeakUpDefense",
    "RateLimitDefense",
    "RateLimitFilter",
    "RateLimitThinner",
    "ProfilingDefense",
    "ProfilingFilter",
    "ProfilingThinner",
    "ProofOfWorkDefense",
    "ProofOfWorkThinner",
    "CaptchaDefense",
    "CaptchaFilter",
    "CaptchaThinner",
    "PipelineDefense",
    "PipelineThinner",
    "AdaptiveDefense",
    "AdaptiveThinner",
]
