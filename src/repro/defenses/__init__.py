"""Baseline application-level DDoS defenses for comparison with speak-up.

§1 and §8 of the paper place speak-up in a taxonomy: massive
over-provisioning, detect-and-block (profiling, rate-limiting, CAPTCHAs,
capabilities), and currency schemes (proof-of-work, money, and — speak-up's
contribution — bandwidth).  This subpackage implements simplified but
functional versions of the detect-and-block and proof-of-work baselines so
the ablation benchmarks (``benchmarks/bench_ablation_baselines.py``) can
compare them against speak-up under the threat model the paper assumes
(spoofing, smart bots, unequal requests).

Each defense is a thinner variant; attach one to a deployment with::

    Deployment(topology, thinner_host, config,
               thinner_factory=RateLimitDefense(allowed_rps=4.0).build_thinner)
"""

from repro.defenses.base import Defense, DefenseRegistry, registry
from repro.defenses.none import NoDefense
from repro.defenses.speakup import SpeakUpDefense
from repro.defenses.ratelimit import RateLimitDefense, RateLimitThinner
from repro.defenses.profiling import ProfilingDefense, ProfilingThinner
from repro.defenses.pow import ProofOfWorkDefense, ProofOfWorkThinner
from repro.defenses.captcha import CaptchaDefense, CaptchaThinner

__all__ = [
    "Defense",
    "DefenseRegistry",
    "registry",
    "NoDefense",
    "SpeakUpDefense",
    "RateLimitDefense",
    "RateLimitThinner",
    "ProfilingDefense",
    "ProfilingThinner",
    "ProofOfWorkDefense",
    "ProofOfWorkThinner",
    "CaptchaDefense",
    "CaptchaThinner",
]
