"""The Defense interface and registry.

A :class:`Defense` is a named factory that builds a thinner for a
deployment.  The registry lets experiments and the CLI select defenses by
name ("speakup", "ratelimit", "pow", ...) without importing each module.

Since the admission-policy redesign a defense is instantiated from a
:class:`~repro.defenses.spec.DefenseSpec` (name + typed kwargs) and builds
one thinner *per front-end shard*: :meth:`Defense.build_thinner` takes the
shard index so a §4.3 fleet gets independent per-shard policy state (own
token buckets, own engagement controller, own bid index), with the shard's
host, server, and stream-name suffix looked up through the deployment's
``shard_*`` helpers.  Defenses that can also run as a screening stage in
front of another admission policy (rate limiting, profiling, CAPTCHAs — the
paper's "other defenses" speak-up is compatible with) implement
:meth:`Defense.build_filter`, which the ``pipeline`` composite uses for its
front stages.
"""

from __future__ import annotations

import difflib
import inspect
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import DefenseError
from repro.core.thinner import ClientProtocol, ThinnerBase
from repro.httpd.messages import Request


class FilterStage:
    """One screening stage of a pipeline defense (drop-or-pass, stateful).

    A stage sees every arriving request *before* the admission thinner does
    and either passes it through (``None``) or names a drop reason.  Stages
    keep their own screened/rejected counts so a run can attribute drops per
    stage (see :class:`~repro.metrics.collector.StageMetrics`).
    """

    #: Short identifier, normally the owning defense's registry name.
    name: str = "filter"

    def __init__(self) -> None:
        self.screened = 0
        self.rejected = 0

    def screen(
        self, request: Request, client: ClientProtocol, now: float
    ) -> Optional[str]:
        """Return a drop reason to reject ``request``, or None to pass it."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"screened={self.screened}, rejected={self.rejected})"
        )


class Defense:
    """A named strategy for protecting the server."""

    #: Short identifier used by the registry, the CLI, and benchmark tables.
    name: str = "defense"

    def build_thinner(self, deployment, shard: int = 0, server=None) -> ThinnerBase:
        """Construct this defense's thinner for one front-end shard.

        ``shard`` is 0 for the (overwhelmingly common) single-thinner
        deployments; fleets call this once per shard and every call must
        return an independent thinner.  ``server`` overrides the shard's
        server (composite defenses interpose multiplexer views).
        """
        raise NotImplementedError

    def build_filter(self, deployment, shard: int = 0) -> FilterStage:
        """Construct this defense as a pipeline screening stage.

        Only detect-and-block defenses that can decide drop-or-pass at
        arrival time (rate limiting, profiling, CAPTCHAs) support this;
        everything else refuses with a one-line error.
        """
        raise DefenseError(
            f"defense {self.name!r} cannot run as a pipeline filter stage; "
            f"only screening defenses (ratelimit, profiling, captcha) can"
        )

    def supports_pooled_admission(self) -> bool:
        """Whether this defense works under the fleet's "pooled" mode.

        The quantum thinner suspends/resumes "the" active request, which is
        ill-defined on a shared slot another shard may hold, so the speak-up
        quantum variant (and any composite delegating to it) returns False.
        """
        return True

    def supports_fault_injection(self) -> bool:
        """Whether this defense's thinner survives a mid-run shard kill.

        Killing a shard evicts contenders and aborts the in-slot request —
        bookkeeping every thinner shares.  The quantum variant additionally
        parks *suspended* request slices on the server, which a kill would
        strand, so it (and any composite delegating to it) returns False.
        """
        return True

    def thinner_kwargs(self, deployment, shard: int = 0, server=None) -> dict:
        """The constructor kwargs every :class:`ThinnerBase` variant shares.

        ``server`` overrides the shard's server (composites such as the
        adaptive controller interpose a multiplexer view).
        """
        return dict(
            engine=deployment.engine,
            network=deployment.network,
            server=server if server is not None else deployment.shard_server(shard),
            host=deployment.thinner_hosts[shard],
            encouragement_delay=deployment.config.encouragement_delay,
            payment_timeout=deployment.config.payment_timeout,
            max_contenders=deployment.config.max_contenders,
        )

    def describe(self) -> str:
        """One-line human description (shown in benchmark output)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _close_matches_note(name: str, candidates) -> str:
    """A ``did you mean`` suffix for one-line errors (empty if nothing close)."""
    matches = difflib.get_close_matches(name, list(candidates), n=2, cutoff=0.6)
    if not matches:
        return ""
    quoted = " or ".join(repr(match) for match in matches)
    return f" (did you mean {quoted}?)"


class DefenseRegistry:
    """Name-to-factory registry of available defenses."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Defense]] = {}

    def register(self, name: str, factory: Callable[..., Defense]) -> None:
        """Register a defense factory under ``name``."""
        if name in self._factories:
            raise DefenseError(f"defense {name!r} is already registered")
        self._factories[name] = factory

    def create(self, name: str, **kwargs) -> Defense:
        """Instantiate the defense registered under ``name``.

        Unknown names and unknown factory keyword arguments both raise a
        one-line :class:`~repro.errors.DefenseError` listing the valid
        choices, with ``difflib`` close-match suggestions.
        """
        try:
            factory = self._factories[name]
        except KeyError:
            known = self.names()
            raise DefenseError(
                f"unknown defense {name!r}; expected one of {known}"
                + _close_matches_note(name, known)
            ) from None
        self._check_kwargs(name, factory, kwargs)
        return factory(**kwargs)

    @staticmethod
    def _check_kwargs(name: str, factory: Callable[..., Defense], kwargs: dict) -> None:
        parameters = inspect.signature(factory).parameters
        if any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        ):
            return
        accepted = sorted(p for p in parameters if p != "self")
        for key in kwargs:
            if key not in parameters:
                raise DefenseError(
                    f"unknown parameter {key!r} for defense {name!r}; "
                    f"expected one of {accepted}"
                    + _close_matches_note(key, accepted)
                )

    def parameters(self, name: str) -> List[Tuple[str, object]]:
        """The factory's (parameter, default) pairs, in signature order."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise DefenseError(
                f"unknown defense {name!r}; expected one of {self.names()}"
            ) from None
        return [
            (
                parameter.name,
                None
                if parameter.default is inspect.Parameter.empty
                else parameter.default,
            )
            for parameter in inspect.signature(factory).parameters.values()
            if parameter.name != "self"
        ]

    def names(self) -> list[str]:
        """All registered defense names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))


#: The process-wide registry; defense modules register themselves on import.
registry = DefenseRegistry()
