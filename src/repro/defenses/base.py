"""The Defense interface and registry.

A :class:`Defense` is a named factory that builds a thinner for a
deployment.  The registry lets experiments and the CLI select defenses by
name ("speakup", "ratelimit", "pow", ...) without importing each module.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator

from repro.errors import DefenseError
from repro.core.thinner import ThinnerBase


class Defense:
    """A named strategy for protecting the server."""

    #: Short identifier used by the registry, the CLI, and benchmark tables.
    name: str = "defense"

    def build_thinner(self, deployment) -> ThinnerBase:
        """Construct this defense's thinner for ``deployment``."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (shown in benchmark output)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class DefenseRegistry:
    """Name-to-factory registry of available defenses."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Defense]] = {}

    def register(self, name: str, factory: Callable[..., Defense]) -> None:
        """Register a defense factory under ``name``."""
        if name in self._factories:
            raise DefenseError(f"defense {name!r} is already registered")
        self._factories[name] = factory

    def create(self, name: str, **kwargs) -> Defense:
        """Instantiate the defense registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise DefenseError(
                f"unknown defense {name!r}; known: {sorted(self._factories)}"
            ) from None
        return factory(**kwargs)

    def names(self) -> list[str]:
        """All registered defense names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))


#: The process-wide registry; defense modules register themselves on import.
registry = DefenseRegistry()
