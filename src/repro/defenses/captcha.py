"""CAPTCHA / proof-of-humanity admission (a detect-and-block baseline).

§8.1: CAPTCHA defenses preferentially admit humans, but "can be thwarted by
bad humans ... or good bots (legitimate, non-human clientele or humans who
do not answer CAPTCHAs)".  We model each client class with a probability of
solving the challenge; requests whose challenge goes unsolved are dropped.
Setting a non-trivial solve probability for bad clients models hired
CAPTCHA farms; setting a sub-1.0 probability for good clients models
legitimate automated clientele (condition C4) that simply cannot answer.

As with the other detect-and-block defenses, the challenge can also screen
contenders ahead of another admission policy (:class:`CaptchaFilter`), e.g.
``"captcha>speakup"``: humans-only first, bandwidth-proportional pricing for
whoever passes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DefenseError
from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.defenses.base import Defense, FilterStage, registry
from repro.httpd.messages import Request
from repro.rng import RandomStream

#: Default solve probabilities per client class.
DEFAULT_SOLVE_PROBABILITIES = {"good": 0.95, "bad": 0.05}


def _merged_probabilities(overrides: Optional[Dict[str, float]]) -> Dict[str, float]:
    probabilities = dict(DEFAULT_SOLVE_PROBABILITIES)
    if overrides:
        probabilities.update(overrides)
    for cls, probability in probabilities.items():
        if not 0.0 <= probability <= 1.0:
            raise DefenseError(f"solve probability for {cls!r} must be in [0, 1]")
    return probabilities


class CaptchaFilter(FilterStage):
    """Screen requests by a per-class challenge-solve probability."""

    name = "captcha"

    def __init__(
        self,
        rng: RandomStream,
        solve_probabilities: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__()
        self.rng = rng
        self.solve_probabilities = _merged_probabilities(solve_probabilities)

    def screen(
        self, request: Request, client: ClientProtocol, now: float
    ) -> Optional[str]:
        probability = self.solve_probabilities.get(request.client_class, 1.0)
        if self.rng.bernoulli(probability):
            return None
        return "captcha-failed"


class CaptchaThinner(ThinnerBase):
    """Admit (FIFO) only requests whose CAPTCHA was answered."""

    def __init__(
        self,
        *args,
        rng: RandomStream,
        solve_probabilities: Optional[Dict[str, float]] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.rng = rng
        self.solve_probabilities = _merged_probabilities(solve_probabilities)
        self.challenges_failed = 0

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        probability = self.solve_probabilities.get(request.client_class, 1.0)
        if not self.rng.bernoulli(probability):
            self.challenges_failed += 1
            self._drop(request, "captcha-failed")
            return
        if self._server_idle and not self.server.busy:
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        self._add_contender(request, client)

    def _server_ready(self) -> None:
        if not self._contenders:
            self._server_idle = True
            return
        self._admit(self._oldest_contender(), price_bytes=0.0)


class CaptchaDefense(Defense):
    """Factory for :class:`CaptchaThinner` / :class:`CaptchaFilter`."""

    name = "captcha"

    def __init__(self, solve_probabilities: Optional[Dict[str, float]] = None) -> None:
        self.solve_probabilities = solve_probabilities

    def build_thinner(self, deployment, shard: int = 0, server=None) -> CaptchaThinner:
        return CaptchaThinner(
            rng=deployment.shard_stream("captcha", shard),
            solve_probabilities=self.solve_probabilities,
            **self.thinner_kwargs(deployment, shard, server=server),
        )

    def build_filter(self, deployment, shard: int = 0) -> CaptchaFilter:
        return CaptchaFilter(
            rng=deployment.shard_stream("captcha", shard),
            solve_probabilities=self.solve_probabilities,
        )

    def describe(self) -> str:
        return "captcha (proof of humanity)"


registry.register(CaptchaDefense.name, CaptchaDefense)
