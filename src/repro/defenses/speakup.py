"""Speak-up packaged as a Defense (the paper's contribution)."""

from __future__ import annotations

from typing import Optional

from repro.core.auction import VirtualAuctionThinner
from repro.core.quantum import QuantumAuctionThinner
from repro.core.retry import RandomDropThinner
from repro.core.thinner import ThinnerBase
from repro.defenses.base import Defense, registry
from repro.errors import DefenseError

#: The three speak-up encouragement/allocation mechanisms.
VARIANTS = ("auction", "retry", "quantum")


class SpeakUpDefense(Defense):
    """Bandwidth-as-currency defense; variant selects the mechanism.

    ``quantum_seconds`` applies to the ``"quantum"`` variant only and falls
    back to ``DeploymentConfig.quantum_seconds`` (and from there to the
    server's mean service time) when left unset, so the historical
    ``defense="quantum"`` string path is unchanged.
    """

    name = "speakup"

    def __init__(self, variant: str = "auction", quantum_seconds: Optional[float] = None) -> None:
        if variant not in VARIANTS:
            raise DefenseError(f"unknown speak-up variant {variant!r}; expected one of {VARIANTS}")
        self.variant = variant
        self.quantum_seconds = quantum_seconds

    def build_thinner(self, deployment, shard: int = 0, server=None) -> ThinnerBase:
        common = self.thinner_kwargs(deployment, shard, server=server)
        if self.variant == "auction":
            return VirtualAuctionThinner(**common)
        if self.variant == "retry":
            return RandomDropThinner(
                rng=deployment.shard_stream("retry-lottery", shard), **common
            )
        quantum_seconds = (
            self.quantum_seconds
            if self.quantum_seconds is not None
            else deployment.config.quantum_seconds
        )
        return QuantumAuctionThinner(
            quantum_seconds=quantum_seconds,
            suspend_abort_timeout=deployment.config.suspend_abort_timeout,
            **common,
        )

    def supports_pooled_admission(self) -> bool:
        # The quantum variant suspends/resumes the active request, which is
        # ill-defined on a pooled slot another shard may hold.
        return self.variant != "quantum"

    def supports_fault_injection(self) -> bool:
        # A shard kill would strand the quantum variant's suspended slices.
        return self.variant != "quantum"

    def describe(self) -> str:
        return f"speak-up ({self.variant})"


registry.register(SpeakUpDefense.name, SpeakUpDefense)
