"""Speak-up packaged as a Defense (the paper's contribution)."""

from __future__ import annotations

from typing import Optional

from repro.core.auction import VirtualAuctionThinner
from repro.core.quantum import QuantumAuctionThinner
from repro.core.retry import RandomDropThinner
from repro.core.thinner import ThinnerBase
from repro.defenses.base import Defense, registry
from repro.errors import DefenseError

#: The three speak-up encouragement/allocation mechanisms.
VARIANTS = ("auction", "retry", "quantum")


class SpeakUpDefense(Defense):
    """Bandwidth-as-currency defense; variant selects the mechanism."""

    name = "speakup"

    def __init__(self, variant: str = "auction", quantum_seconds: Optional[float] = None) -> None:
        if variant not in VARIANTS:
            raise DefenseError(f"unknown speak-up variant {variant!r}; expected one of {VARIANTS}")
        self.variant = variant
        self.quantum_seconds = quantum_seconds

    def build_thinner(self, deployment) -> ThinnerBase:
        common = dict(
            engine=deployment.engine,
            network=deployment.network,
            server=deployment.server,
            host=deployment.thinner_host,
            encouragement_delay=deployment.config.encouragement_delay,
            payment_timeout=deployment.config.payment_timeout,
            max_contenders=deployment.config.max_contenders,
        )
        if self.variant == "auction":
            return VirtualAuctionThinner(**common)
        if self.variant == "retry":
            return RandomDropThinner(rng=deployment.streams.stream("retry-lottery"), **common)
        return QuantumAuctionThinner(quantum_seconds=self.quantum_seconds, **common)

    def describe(self) -> str:
        return f"speak-up ({self.variant})"


registry.register(SpeakUpDefense.name, SpeakUpDefense)
