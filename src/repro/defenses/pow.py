"""Proof-of-work: the classic currency defense speak-up is contrasted with.

Computational puzzles (Dwork-Naor and the client-puzzle literature the paper
cites) charge CPU cycles instead of bandwidth.  We model each client as
owning ``cpu_power`` puzzle-units per second (``getattr(client,
'cpu_power', 1.0)``); once asked to pay, a contending request accrues
solved puzzles at that rate, and the thinner admits the contender with the
most solved puzzles — the same virtual-auction structure as speak-up, but
with CPU as the currency.  The comparison bench shows both schemes allocate
proportionally to the respective currency; which one favours the good
clients depends entirely on how that currency is distributed (§8.1's
point that "the good clients must have enough currency").
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DefenseError
from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.defenses.base import Defense, registry
from repro.httpd.messages import Request


class ProofOfWorkThinner(ThinnerBase):
    """Admit the contender with the most solved puzzles."""

    def __init__(self, *args, puzzle_cost: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if puzzle_cost <= 0:
            raise DefenseError("puzzle_cost must be positive")
        #: Work units per puzzle; higher cost means slower accrual for everyone.
        self.puzzle_cost = puzzle_cost
        self._paying_since: Dict[int, float] = {}
        self._cpu_power: Dict[int, float] = {}

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        if self._server_idle and not self.server.busy:
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        self._add_contender(request, client)
        # "Encouragement" here is the puzzle challenge; solving starts after
        # the challenge reaches the client.
        delay = self.network.topology.one_way_delay(self.host, client.host) + self.encouragement_delay
        self.engine.schedule_after(delay, self._start_solving, request, client)

    def _start_solving(self, request: Request, client: ClientProtocol) -> None:
        if request.request_id not in self._contenders:
            return
        request.encouraged_at = self.engine.now
        self._paying_since[request.request_id] = self.engine.now
        self._cpu_power[request.request_id] = float(getattr(client, "cpu_power", 1.0))

    def solved_puzzles(self, request_id: int) -> float:
        """Puzzles solved so far for one contending request."""
        since = self._paying_since.get(request_id)
        if since is None:
            return 0.0
        elapsed = self.engine.now - since
        return self._cpu_power.get(request_id, 1.0) * elapsed / self.puzzle_cost

    def _server_ready(self) -> None:
        if not self._contenders:
            self._server_idle = True
            return
        self.stats.auctions_held += 1
        winner = max(
            self._contenders.values(),
            key=lambda contender: (
                self.solved_puzzles(contender.request.request_id),
                -contender.arrived_at,
            ),
        )
        price = self.solved_puzzles(winner.request.request_id)
        self._paying_since.pop(winner.request.request_id, None)
        self._cpu_power.pop(winner.request.request_id, None)
        # Prices are recorded in "puzzles", not bytes, for this defense.
        self._admit(winner, price_bytes=price)


class ProofOfWorkDefense(Defense):
    """Factory for :class:`ProofOfWorkThinner`."""

    name = "pow"

    def __init__(self, puzzle_cost: float = 1.0) -> None:
        self.puzzle_cost = puzzle_cost

    def build_thinner(self, deployment, shard: int = 0, server=None) -> ProofOfWorkThinner:
        return ProofOfWorkThinner(
            puzzle_cost=self.puzzle_cost,
            **self.thinner_kwargs(deployment, shard, server=server),
        )

    def describe(self) -> str:
        return f"proof-of-work (puzzle cost {self.puzzle_cost:g})"


registry.register(ProofOfWorkDefense.name, ProofOfWorkDefense)
