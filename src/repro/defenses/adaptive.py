"""Attack-triggered engagement: speak-up only when the server needs it.

The paper's design point: speak-up is *not* meant to run in peacetime —
"when the server is not attacked, the thinner does nothing" and the defense
only charges clients bandwidth while the server is actually overloaded.
:class:`AdaptiveDefense` turns that into a runnable policy: the deployment
starts in **passthrough** (the undefended baseline — no encouragement, no
payments), a load watcher samples server utilisation every
``check_interval`` seconds, and when utilisation crosses the top of a
hysteresis band the controller **engages** an inner defense (speak-up by
default), migrating the waiting contenders into it.  When utilisation falls
back below the bottom of the band the inner defense **disengages** and the
deployment returns to passthrough.

Structure (mirroring :class:`~repro.core.fleet.PooledAdmission`): both the
passthrough thinner and the engaged thinner are real, fully-wired thinners,
each driving its own :class:`_EngagementServerView` of the shard's server;
an :class:`_EngagementMux` owns the real server callbacks and routes
``on_request_done`` to whichever thinner submitted the request and
``on_ready`` to the currently-active thinner.  Switching migrates the
inactive side's contenders (closing any open payment channels on
disengage — the clients stop paying, exactly as the paper promises for
peacetime) and appends a transition to the engagement log, which the
metrics collector surfaces as
:class:`~repro.metrics.collector.EngagementMetrics`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from repro.errors import DefenseError
from repro.core.admission import NoDefenseThinner
from repro.core.thinner import ClientProtocol, ThinnerBase, ThinnerStats
from repro.defenses.base import Defense, registry
from repro.defenses.spec import DefenseSpec, normalise_defense
from repro.httpd.messages import Request

#: Default hysteresis band and sampling cadence of the load watcher.
DEFAULT_ENGAGE_THRESHOLD = 0.9
DEFAULT_DISENGAGE_THRESHOLD = 0.6
DEFAULT_CHECK_INTERVAL = 1.0


class _EngagementServerView:
    """One inner thinner's view of the shard's server (cf. PooledServerView)."""

    def __init__(self, mux: "_EngagementMux") -> None:
        self._mux = mux
        self._server = mux.server
        #: Set by :class:`~repro.core.thinner.ThinnerBase` at construction.
        self.on_request_done: Optional[Callable[[Request], None]] = None
        self.on_ready: Optional[Callable[[], None]] = None

    # -- queries forwarded to the real server -----------------------------------

    @property
    def busy(self) -> bool:
        return self._server.busy

    @property
    def capacity_rps(self) -> float:
        return self._server.capacity_rps

    @property
    def mean_service_time(self) -> float:
        return self._server.mean_service_time

    @property
    def stats(self):
        return self._server.stats

    # -- mutations forwarded with ownership bookkeeping ---------------------------

    def submit(self, request: Request) -> None:
        self._mux.note_owner(request, self)
        self._server.submit(request)

    def resume(self, request: Request) -> None:
        # The quantum thinner resumes suspended requests; ownership is
        # already recorded from the original submit.
        self._mux.note_owner(request, self)
        self._server.resume(request)

    def suspend(self) -> Request:
        return self._server.suspend()

    def abort(self, request: Request) -> None:
        self._server.abort(request)


class _EngagementMux:
    """Routes the one real server's callbacks between two inner thinners."""

    def __init__(self, server) -> None:
        self.server = server
        self.views: List[_EngagementServerView] = []
        self.active: Optional[_EngagementServerView] = None
        self._owner_by_request: dict[int, _EngagementServerView] = {}
        server.on_request_done = self._request_done
        server.on_ready = self._slot_freed

    def view(self) -> _EngagementServerView:
        view = _EngagementServerView(self)
        self.views.append(view)
        return view

    def note_owner(self, request: Request, view: _EngagementServerView) -> None:
        self._owner_by_request[request.request_id] = view

    # -- callback routing ---------------------------------------------------------

    def _request_done(self, request: Request) -> None:
        owner = self._owner_by_request.pop(request.request_id, None)
        if owner is None:  # pragma: no cover - defensive
            return
        if owner.on_request_done is not None:
            owner.on_request_done(request)

    def _slot_freed(self) -> None:
        # The active side gets first claim; if it has nothing waiting (it
        # marks itself idle), offer the slot to the other side, which may
        # still hold contenders admitted-in-flight around a switch.
        for view in self._ordered_views():
            if view.on_ready is not None:
                view.on_ready()
            if self.server.busy:
                return

    def _ordered_views(self) -> List[_EngagementServerView]:
        if self.active is None:
            return list(self.views)
        others = [view for view in self.views if view is not self.active]
        return [self.active] + others


class AdaptiveThinner:
    """The engagement controller: passthrough until the watcher trips it.

    A proxy over two fully-built thinners — the undefended baseline and the
    inner defense's — of which exactly one is *active* (receives new
    requests and freed server slots).  The load watcher runs on the engine
    every ``check_interval`` seconds and compares the interval's server
    utilisation against the hysteresis band.
    """

    def __init__(
        self,
        deployment,
        shard: int,
        inner_defense: Defense,
        engage_threshold: float = DEFAULT_ENGAGE_THRESHOLD,
        disengage_threshold: float = DEFAULT_DISENGAGE_THRESHOLD,
        check_interval: float = DEFAULT_CHECK_INTERVAL,
        server=None,
    ) -> None:
        if not 0.0 < disengage_threshold < engage_threshold <= 1.0:
            raise DefenseError(
                "adaptive engagement needs 0 < disengage_threshold < "
                f"engage_threshold <= 1, got ({disengage_threshold}, {engage_threshold})"
            )
        if check_interval <= 0:
            raise DefenseError("check_interval must be positive")
        self.engine = deployment.engine
        self.engage_threshold = engage_threshold
        self.disengage_threshold = disengage_threshold
        self.check_interval = check_interval

        real_server = server if server is not None else deployment.shard_server(shard)
        self._mux = _EngagementMux(real_server)
        self._passthrough: ThinnerBase = NoDefenseThinner(
            rng=deployment.shard_stream("adaptive-admission", shard),
            policy=deployment.config.admission_policy,
            **inner_defense.thinner_kwargs(deployment, shard, server=self._mux.view()),
        )
        self._engaged: ThinnerBase = inner_defense.build_thinner(
            deployment, shard, server=self._mux.view()
        )
        self._thinner_by_view = {
            self._mux.views[0]: self._passthrough,
            self._mux.views[1]: self._engaged,
        }
        self.engaged = False
        self._mux.active = self._mux.views[0]

        #: (time, engaged) transitions, in order; starts disengaged at t=0.
        self.engagement_log: List[Tuple[float, bool]] = []
        self.counters = self._passthrough.counters
        self._busy_mark = real_server.stats.busy_time
        self._watcher = self.engine.schedule_every(check_interval, self._check_load)

    # -- the active/idle pair -------------------------------------------------------

    @property
    def active(self) -> ThinnerBase:
        return self._engaged if self.engaged else self._passthrough

    @property
    def idle_side(self) -> ThinnerBase:
        return self._passthrough if self.engaged else self._engaged

    # -- client-facing surface (what BaseClient and the collector touch) -------------

    def receive_request(self, request: Request, client: ClientProtocol) -> None:
        self.active.receive_request(request, client)

    def register_payment(self, request: Request, channel) -> None:
        # Route to whichever side holds the contender (a switch may have
        # migrated it between encouragement and registration).
        for thinner in (self._engaged, self._passthrough):
            if request.request_id in thinner._contenders:
                thinner.register_payment(request, channel)
                return
        # Won or dropped while the registration was in flight.
        channel.close()

    @property
    def contending_count(self) -> int:
        return self._passthrough.contending_count + self._engaged.contending_count

    def contenders(self):
        return self._passthrough.contenders() + self._engaged.contenders()

    # -- failover protocol (what the fault injector drives) ----------------------

    def _drop(self, request: Request, reason: str) -> None:
        """Route a drop to whichever side holds the contender."""
        for side in (self._passthrough, self._engaged):
            if request.request_id in side._contenders:
                side._drop(request, reason)
                return

    def _pop_owner(self, request_id: int):
        """Detach the owning client from whichever side tracked the request."""
        for side in (self._passthrough, self._engaged):
            client = side._owners.pop(request_id, None)
            if client is not None:
                return client
        return None

    @property
    def stats(self) -> ThinnerStats:
        """Both sides' counters, merged on read."""
        merged = ThinnerStats()
        for side in (self._passthrough, self._engaged):
            stats = side.stats
            merged.requests_received += stats.requests_received
            merged.requests_admitted += stats.requests_admitted
            merged.requests_served += stats.requests_served
            merged.requests_dropped += stats.requests_dropped
            merged.free_admissions += stats.free_admissions
            merged.auctions_held += stats.auctions_held
            merged.payment_bytes_sunk += stats.payment_bytes_sunk
            for key, value in stats.received_by_class.items():
                merged.received_by_class[key] = merged.received_by_class.get(key, 0) + value
            for key, value in stats.served_by_class.items():
                merged.served_by_class[key] = merged.served_by_class.get(key, 0) + value
        return merged

    @property
    def prices(self):
        # Type-aware merge: both sides carry the same book class (exact
        # PriceBook, or StreamingPriceBook under rollup telemetry).
        books = [self._passthrough.prices, self._engaged.prices]
        return type(books[0]).merged(books)

    @property
    def stage_metrics(self):
        """Forward the engaged side's pipeline stage attribution (if any)."""
        return getattr(self._engaged, "stage_metrics", None)

    @property
    def server(self):
        return self._mux.server

    @property
    def host(self):
        return self.active.host

    def shutdown(self) -> None:
        for side in (self._passthrough, self._engaged):
            shutdown = getattr(side, "shutdown", None)
            if callable(shutdown):
                shutdown()

    # -- the load watcher --------------------------------------------------------------

    def utilisation_sample(self) -> float:
        """Server utilisation over the current (partial) check interval."""
        busy = self._mux.server.stats.busy_time
        return max(0.0, busy - self._busy_mark) / self.check_interval

    def _check_load(self) -> None:
        utilisation = self.utilisation_sample()
        self._busy_mark = self._mux.server.stats.busy_time
        if not self.engaged and utilisation >= self.engage_threshold:
            self._switch(True)
        elif self.engaged and utilisation <= self.disengage_threshold:
            self._switch(False)

    # -- engagement transitions ----------------------------------------------------------

    def _switch(self, engage: bool) -> None:
        source = self.active
        self.engaged = engage
        target = self.active
        self._mux.active = next(
            view for view, thinner in self._thinner_by_view.items() if thinner is target
        )
        self.engagement_log.append((self.engine.now, engage))
        self.counters.engagement_switches += 1
        self._migrate(source, target)

    @staticmethod
    def _migrate(source: ThinnerBase, target: ThinnerBase) -> None:
        """Move every waiting contender from ``source`` to ``target``.

        Open payment channels are closed (their bytes stay accounted to the
        source side, like an admission would have) — on disengage this is
        what makes the clients stop paying.  The requests then re-enter the
        target's arrival handling, which re-encourages them if the target
        is a paying defense.
        """
        for contender in source.contenders():
            request = contender.request
            source._remove_contender(request.request_id)
            client = source._owners.pop(request.request_id, None)
            if contender.channel is not None:
                paid = contender.channel.close()
                request.bytes_paid = paid
                source.stats.payment_bytes_sunk += paid
            if client is None:  # pragma: no cover - defensive
                continue
            target._owners[request.request_id] = client
            target._handle_arrival(request, client)


class AdaptiveDefense(Defense):
    """Engage an inner defense only while the server is under attack."""

    name = "adaptive"

    def __init__(
        self,
        inner: Union[str, dict, DefenseSpec] = "speakup",
        engage_threshold: float = DEFAULT_ENGAGE_THRESHOLD,
        disengage_threshold: float = DEFAULT_DISENGAGE_THRESHOLD,
        check_interval: float = DEFAULT_CHECK_INTERVAL,
    ) -> None:
        self.inner_spec = normalise_defense(inner)
        if self.inner_spec.name == self.name:
            raise DefenseError("adaptive defenses do not nest")
        self.inner = self.inner_spec.create()
        self.engage_threshold = engage_threshold
        self.disengage_threshold = disengage_threshold
        self.check_interval = check_interval
        # Fail on a bad band at spec-validation time, not mid-deployment.
        if not 0.0 < disengage_threshold < engage_threshold <= 1.0:
            raise DefenseError(
                "adaptive engagement needs 0 < disengage_threshold < "
                f"engage_threshold <= 1, got ({disengage_threshold}, {engage_threshold})"
            )
        if check_interval <= 0:
            raise DefenseError("check_interval must be positive")

    def build_thinner(self, deployment, shard: int = 0, server=None) -> AdaptiveThinner:
        return AdaptiveThinner(
            deployment,
            shard,
            inner_defense=self.inner,
            engage_threshold=self.engage_threshold,
            disengage_threshold=self.disengage_threshold,
            check_interval=self.check_interval,
            server=server,
        )

    def supports_pooled_admission(self) -> bool:
        return self.inner.supports_pooled_admission()

    def supports_fault_injection(self) -> bool:
        return self.inner.supports_fault_injection()

    def describe(self) -> str:
        return (
            f"adaptive {self.inner_spec.label()} (on ≥{self.engage_threshold:.0%}, "
            f"off ≤{self.disengage_threshold:.0%} util, every {self.check_interval:g}s)"
        )


registry.register(AdaptiveDefense.name, AdaptiveDefense)
