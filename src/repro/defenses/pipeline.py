"""Layered admission: screening stages in front of an admission thinner.

The paper is explicit that speak-up is *compatible with other defenses*: a
profiling or blacklisting product can run in front of the thinner, blocking
the clients it can identify, while the auction prices whatever slips
through (§1's taxonomy, §8.1).  :class:`PipelineDefense` makes that layering
a first-class, declarative policy::

    DefenseSpec("pipeline", kwargs=(("stages", (
        DefenseSpec("ratelimit", (("allowed_rps", 8.0),)),
        DefenseSpec("speakup"),
    )),))

or, as CLI/scenario sugar, just ``defense="ratelimit>speakup"``.  Every
stage but the last must be a screening defense (one that implements
:meth:`~repro.defenses.base.Defense.build_filter` — rate limiting,
profiling, CAPTCHAs); the final stage is the admission policy that owns the
server.  A rejected request is dropped with a stage-qualified reason
(``"ratelimit:rate-limited"``), each stage keeps its own screened/rejected
counts (surfaced per shard as
:class:`~repro.metrics.collector.StageMetrics`), and the shared
:class:`~repro.perf.counters.SimCounters` track aggregate filter work
(``filter_screened`` / ``filter_rejected``) next to the auction counters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import DefenseError
from repro.core.thinner import ClientProtocol, ThinnerBase
from repro.defenses.base import Defense, FilterStage, registry
from repro.defenses.spec import DefenseSpec, normalise_defense
from repro.httpd.messages import Request, RequestState


class PipelineThinner:
    """Front-filter stages wrapped around an inner admission thinner.

    A thin proxy: requests rejected by a stage are dropped (attributed to
    that stage); everything else — contender bookkeeping, auctions, server
    callbacks, stats — is the inner thinner's, to which all other attribute
    access delegates.
    """

    def __init__(self, inner: ThinnerBase, stages: Sequence[FilterStage]) -> None:
        self.inner = inner
        self.stages: Tuple[FilterStage, ...] = tuple(stages)

    # -- the one intercepted entry point -----------------------------------------

    def receive_request(self, request: Request, client: ClientProtocol) -> None:
        """Screen the request through every stage, then hand it inward."""
        inner = self.inner
        now = inner.engine.now
        counters = inner.counters
        for stage in self.stages:
            stage.screened += 1
            counters.filter_screened += 1
            reason = stage.screen(request, client, now)
            if reason is not None:
                stage.rejected += 1
                counters.filter_rejected += 1
                # Mirror ThinnerBase.receive_request's bookkeeping so the
                # rejection counts as received-then-dropped, like the
                # standalone screening thinners do.  An adaptive admission
                # stage is a proxy; its currently-active side owns the
                # bookkeeping.
                sink = getattr(inner, "active", inner)
                request.arrived_at = now
                request.state = RequestState.CONTENDING
                sink.stats.record_received(request)
                sink._owners[request.request_id] = client
                sink._drop(request, f"{stage.name}:{reason}")
                return
        inner.receive_request(request, client)

    # -- explicit delegations (the hot client-facing surface) ---------------------

    def register_payment(self, request: Request, channel) -> None:
        self.inner.register_payment(request, channel)

    @property
    def stage_metrics(self) -> List[Tuple[str, int, int]]:
        """Per-stage (name, screened, rejected) triples, pipeline order."""
        return [(stage.name, stage.screened, stage.rejected) for stage in self.stages]

    def __getattr__(self, item):
        # Everything else (stats, prices, contenders, engine, shutdown, ...)
        # belongs to the inner admission thinner.
        return getattr(self.inner, item)


StageSpec = Union[str, dict, DefenseSpec]


class PipelineDefense(Defense):
    """Compose screening defenses in front of an admission defense."""

    name = "pipeline"

    def __init__(self, stages: Optional[Sequence[StageSpec]] = None) -> None:
        if stages is None:
            stages = (DefenseSpec("ratelimit"), DefenseSpec("speakup"))
        self.stages: Tuple[DefenseSpec, ...] = tuple(
            normalise_defense(stage) for stage in stages
        )
        if not self.stages:
            raise DefenseError("a pipeline defense needs at least one stage")
        for spec in self.stages:
            if spec.name == self.name:
                raise DefenseError("pipelines do not nest; flatten the stages")
        self._admission = self.stages[-1].create()
        # Instantiating the front defenses here makes a non-screening stage
        # (one that does not override Defense.build_filter) fail at spec
        # validation time, not mid-deployment-construction.
        self._front_defenses = [spec.create() for spec in self.stages[:-1]]
        for front in self._front_defenses:
            if type(front).build_filter is Defense.build_filter:
                raise DefenseError(
                    f"defense {front.name!r} cannot run as a pipeline filter "
                    f"stage; only screening defenses (ratelimit, profiling, "
                    f"captcha) can front a pipeline"
                )

    def build_thinner(self, deployment, shard: int = 0, server=None):
        inner = self._admission.build_thinner(deployment, shard, server=server)
        fronts = [
            front.build_filter(deployment, shard) for front in self._front_defenses
        ]
        if not fronts:
            return inner
        return PipelineThinner(inner, fronts)

    def supports_pooled_admission(self) -> bool:
        return self._admission.supports_pooled_admission()

    def supports_fault_injection(self) -> bool:
        return self._admission.supports_fault_injection()

    def describe(self) -> str:
        return "pipeline (" + " > ".join(spec.label() for spec in self.stages) + ")"


registry.register(PipelineDefense.name, PipelineDefense)
