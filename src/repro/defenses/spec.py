"""Defenses as data: the frozen, JSON-serialisable :class:`DefenseSpec`.

A :class:`DefenseSpec` names a registered defense plus the keyword arguments
its factory takes, the same way a :class:`~repro.scenarios.spec.ScenarioSpec`
names a workload plus its knobs.  Specs are frozen and hashable (kwargs are
stored as a sorted tuple of pairs with nested values recursively frozen), so
a spec can sit inside a scenario, be pickled to a sweep worker, be written to
a results file, and be rebuilt from JSON.

The spec layer is also where the historical string interface lives on as
sugar: :func:`normalise_defense` maps the legacy
``DeploymentConfig.defense`` strings onto specs —

* ``"speakup"`` ⇢ ``DefenseSpec("speakup")``,
* ``"retry"`` / ``"quantum"`` ⇢ the matching speak-up variant,
* any other registered name (``"ratelimit"``, ``"captcha"``, ...) ⇢ a
  default-parameter spec,
* ``"ratelimit>speakup"`` ⇢ a :class:`~repro.defenses.pipeline.PipelineDefense`
  whose front stages screen contenders before the final admission stage —

so every pre-spec call site keeps working (and keeps producing bit-identical
runs) while new code can parameterise and compose defenses as data.

Composite defenses nest: a kwarg value may itself be a ``DefenseSpec`` (the
``inner`` defense of ``adaptive``) or a tuple of them (the ``stages`` of
``pipeline``); ``to_dict``/``from_dict`` round-trip the nesting through
plain JSON objects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Tuple, Union

from repro.defenses.base import Defense, _close_matches_note, registry
from repro.errors import DefenseError

#: The historical ``DeploymentConfig.defense`` vocabulary, kept as aliases:
#: each maps to the (registry name, kwargs) pair it always meant.
LEGACY_DEFENSES: Dict[str, Tuple[str, Tuple[Tuple[str, Any], ...]]] = {
    "speakup": ("speakup", ()),
    "retry": ("speakup", (("variant", "retry"),)),
    "quantum": ("speakup", (("variant", "quantum"),)),
    "none": ("none", ()),
}

#: Separator of the ``"filter>admission"`` pipeline shorthand.
PIPELINE_SEPARATOR = ">"


def _freeze_value(value: Any) -> Any:
    """Recursively turn ``value`` into something hashable.

    Dicts become sorted tuples of (key, frozen value) pairs; lists/tuples
    become tuples; ``DefenseSpec`` instances (already frozen) pass through.
    :func:`_thaw_value` inverts the mapping — a tuple whose elements are all
    ``(str, value)`` pairs thaws back to a dict, so an *intentional* tuple
    of string-keyed pairs is indistinguishable from a dict (no defense
    factory takes one).
    """
    if isinstance(value, DefenseSpec):
        return value
    if isinstance(value, dict):
        if _looks_like_spec(value):
            return DefenseSpec.from_dict(value)
        return tuple(
            sorted((str(key), _freeze_value(val)) for key, val in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    return value


def _thaw_value(value: Any) -> Any:
    """Invert :func:`_freeze_value` back to factory-friendly Python values."""
    if isinstance(value, DefenseSpec):
        return value
    if isinstance(value, tuple):
        if value and all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            return {key: _thaw_value(val) for key, val in value}
        return tuple(_thaw_value(item) for item in value)
    return value


def _serialise_value(value: Any) -> Any:
    """A thawed value rendered with nested specs as plain JSON objects."""
    if isinstance(value, DefenseSpec):
        return value.to_dict()
    if isinstance(value, dict):
        return {key: _serialise_value(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_serialise_value(item) for item in value]
    return value


def _looks_like_spec(value: Any) -> bool:
    """True for a JSON object that encodes a nested :class:`DefenseSpec`."""
    return (
        isinstance(value, dict)
        and isinstance(value.get("name"), str)
        and set(value) <= {"name", "kwargs"}
        and isinstance(value.get("kwargs", {}), dict)
    )


def _parse_value(value: Any) -> Any:
    """Rebuild nested specs inside a deserialised kwarg value."""
    if _looks_like_spec(value):
        return DefenseSpec.from_dict(value)
    if isinstance(value, dict):
        return {key: _parse_value(val) for key, val in value.items()}
    if isinstance(value, list):
        return tuple(_parse_value(item) for item in value)
    return value


def freeze_kwargs(kwargs: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalise factory kwargs (mapping or pair sequence) to a sorted tuple."""
    if kwargs is None:
        return ()
    if isinstance(kwargs, dict):
        pairs = list(kwargs.items())
    else:
        try:
            pairs = [tuple(pair) for pair in kwargs]
        except TypeError:
            raise DefenseError(
                f"defense kwargs must be a mapping or (name, value) pairs, "
                f"got {kwargs!r}"
            ) from None
        for pair in pairs:
            if len(pair) != 2 or not isinstance(pair[0], str):
                raise DefenseError(
                    f"defense kwargs entries must be (name, value) pairs, "
                    f"got {pair!r}"
                )
    return tuple(sorted((str(key), _freeze_value(value)) for key, value in pairs))


@dataclass(frozen=True)
class DefenseSpec:
    """One defense selection as data: a registry name plus factory kwargs.

    ``kwargs`` is canonically a sorted tuple of (name, value) pairs with
    nested values frozen (see :func:`freeze_kwargs`); the constructor via
    :meth:`make` and :meth:`from_dict` accept plain mappings.
    """

    name: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    # -- construction -----------------------------------------------------------

    @classmethod
    def make(cls, name: str, **kwargs: Any) -> "DefenseSpec":
        """Build a spec from plain keyword arguments (frozen canonically)."""
        return cls(name=name, kwargs=freeze_kwargs(kwargs))

    # -- views ------------------------------------------------------------------

    def kwargs_dict(self) -> Dict[str, Any]:
        """The factory keyword arguments as a plain dict (values thawed)."""
        return {key: _thaw_value(value) for key, value in self.kwargs}

    def label(self) -> str:
        """A short human label; composites render their structure.

        ``pipeline`` specs render as ``"stage>stage"`` (the CLI shorthand)
        and ``adaptive`` specs as ``"adaptive(inner)"``; every other spec is
        its registry name.  Used for :attr:`RunResult.defense` — plain
        legacy strings never reach this path, so their labels stay
        byte-identical.
        """
        kwargs = self.kwargs_dict()
        if self.name == "pipeline":
            stages = kwargs.get("stages") or ()
            if not stages:
                # A bare pipeline spec falls back to the factory defaults;
                # label it by name rather than an empty join.
                return self.name
            try:
                return PIPELINE_SEPARATOR.join(
                    normalise_defense(stage).label() for stage in stages
                )
            except DefenseError:
                return self.name
        if self.name == "adaptive":
            inner = kwargs.get("inner", "speakup")
            try:
                return f"adaptive({normalise_defense(inner).label()})"
            except DefenseError:
                return self.name
        return self.name

    # -- functional updates ------------------------------------------------------

    def with_kwarg(self, key: str, value: Any) -> "DefenseSpec":
        """A copy with one factory kwarg replaced (or added)."""
        merged = dict(self.kwargs)
        merged[str(key)] = _freeze_value(value)
        return DefenseSpec(name=self.name, kwargs=tuple(sorted(merged.items())))

    # -- validation and building ---------------------------------------------------

    def validate(self) -> None:
        """Check the name is registered and every kwarg is accepted.

        Raises :class:`~repro.errors.DefenseError` with a one-line message
        (close-match suggestions included) on failure.
        """
        self.create()

    def create(self) -> Defense:
        """Instantiate the registered defense this spec describes."""
        return registry.create(self.name, **self.kwargs_dict())

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dictionary that :meth:`from_dict` rebuilds exactly."""
        return {
            "name": self.name,
            "kwargs": {
                key: _serialise_value(_thaw_value(value))
                for key, value in self.kwargs
            },
        }

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DefenseSpec":
        """Rebuild a spec serialised by :meth:`to_dict` (nested specs too)."""
        if not isinstance(data, dict) or "name" in data and not isinstance(
            data["name"], str
        ):
            raise DefenseError(f"a defense spec dictionary needs a 'name': {data!r}")
        unknown = set(data) - {"name", "kwargs"}
        if unknown:
            raise DefenseError(
                f"unexpected defense spec keys {sorted(unknown)} in {data!r}"
            )
        try:
            name = data["name"]
        except KeyError:
            raise DefenseError(
                f"a defense spec dictionary needs a 'name': {data!r}"
            ) from None
        kwargs = data.get("kwargs") or {}
        if not isinstance(kwargs, dict):
            raise DefenseError(f"defense spec kwargs must be a mapping, got {kwargs!r}")
        parsed = {key: _parse_value(value) for key, value in kwargs.items()}
        return cls(name=name, kwargs=freeze_kwargs(parsed))

    @classmethod
    def from_json(cls, document: str) -> "DefenseSpec":
        return cls.from_dict(json.loads(document))


def normalise_defense(defense: Union[str, DefenseSpec, Dict[str, Any]]) -> DefenseSpec:
    """Coerce any accepted defense selector to a :class:`DefenseSpec`.

    Accepts a spec (returned as-is), a spec-shaped mapping, a legacy alias
    (``"speakup"``/``"retry"``/``"quantum"``/``"none"``), any registered
    defense name, or the ``"filter>admission"`` pipeline shorthand.  Raises
    a one-line :class:`~repro.errors.DefenseError` (with close-match
    suggestions) for anything else.
    """
    if isinstance(defense, DefenseSpec):
        return defense
    if isinstance(defense, dict):
        return DefenseSpec.from_dict(defense)
    if not isinstance(defense, str):
        raise DefenseError(
            f"defense must be a name or DefenseSpec, got {type(defense).__name__}"
        )
    if PIPELINE_SEPARATOR in defense:
        parts = [part.strip() for part in defense.split(PIPELINE_SEPARATOR)]
        if not all(parts):
            raise DefenseError(f"malformed pipeline defense {defense!r}")
        stages = tuple(normalise_defense(part) for part in parts)
        return DefenseSpec(name="pipeline", kwargs=(("stages", stages),))
    if defense in LEGACY_DEFENSES:
        name, kwargs = LEGACY_DEFENSES[defense]
        return DefenseSpec(name=name, kwargs=kwargs)
    if defense in registry:
        return DefenseSpec(name=defense)
    valid = sorted(set(registry.names()) | set(LEGACY_DEFENSES))
    raise DefenseError(
        f"unknown defense {defense!r}; expected one of {valid}"
        + _close_matches_note(defense, valid)
    )
