"""Shared constants and unit helpers used across the speak-up reproduction.

The paper mixes several unit systems: link capacities in Mbits/s, payments
in bytes or KBytes, server capacity in requests per second, and latencies
in milliseconds.  Everything internal to this package uses SI base units —
bits per second, bytes, seconds — and the helpers here convert to and from
the units the paper reports.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Unit conversions
# ---------------------------------------------------------------------------

BITS_PER_BYTE = 8

KBIT = 1_000
MBIT = 1_000_000
GBIT = 1_000_000_000

KBYTE = 1_000
MBYTE = 1_000_000

MS = 1e-3


def mbits_per_sec(value: float) -> float:
    """Convert a value in Mbits/s to bits/s."""
    return value * MBIT


def kbits_per_sec(value: float) -> float:
    """Convert a value in Kbits/s to bits/s."""
    return value * KBIT


def gbits_per_sec(value: float) -> float:
    """Convert a value in Gbits/s to bits/s."""
    return value * GBIT


def to_mbits_per_sec(bits_per_sec: float) -> float:
    """Convert bits/s to Mbits/s (the unit used in the paper's figures)."""
    return bits_per_sec / MBIT


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count into bits."""
    return num_bytes * BITS_PER_BYTE

def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count into bytes."""
    return num_bits / BITS_PER_BYTE


def kbytes(value: float) -> float:
    """Convert KBytes to bytes."""
    return value * KBYTE


def to_kbytes(num_bytes: float) -> float:
    """Convert bytes to KBytes (used on the y-axis of Figure 5)."""
    return num_bytes / KBYTE


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


# ---------------------------------------------------------------------------
# Defaults taken directly from the paper (section 6 and 7.1)
# ---------------------------------------------------------------------------

#: Size of one payment POST the JavaScript front-end constructs (section 6).
DEFAULT_POST_BYTES = 1 * MBYTE

#: Paper's experiment length on Emulab (section 7.1).
PAPER_EXPERIMENT_DURATION = 600.0

#: Default access-link bandwidth of a client in the evaluation (section 7.1).
DEFAULT_CLIENT_BANDWIDTH = 2 * MBIT

#: Good-client request rate lambda (requests per second, section 7.1).
GOOD_CLIENT_RATE = 2.0

#: Good-client window of outstanding requests (section 7.1).
GOOD_CLIENT_WINDOW = 1

#: Bad-client request rate lambda (requests per second, section 7.1).
BAD_CLIENT_RATE = 40.0

#: Bad-client window of outstanding requests (section 7.1).
BAD_CLIENT_WINDOW = 20

#: A queued request times out and is logged as a service denial after this
#: many seconds (section 7.1).
REQUEST_TIMEOUT = 10.0

#: The thinner times out a payment channel whose request never arrives after
#: this many seconds (section 7.3).
PAYMENT_CHANNEL_TIMEOUT = 10.0

#: Server-side service time jitter: uniform in [(1 - delta)/c, (1 + delta)/c]
#: (section 6 uses delta = 0.1).
SERVICE_TIME_JITTER = 0.1

#: Suspended requests are aborted after this long in the heterogeneous-request
#: extension (section 5 suggests 30 seconds).
SUSPEND_ABORT_TIMEOUT = 30.0

#: TCP maximum segment size used by the slow-start ramp model.
DEFAULT_MSS_BYTES = 1460

#: Number of round-trip times of quiescence between successive payment POSTs
#: (section 3.4: "a quiescent period between POSTs (equal to two RTTs)").
POST_QUIESCENT_RTTS = 2.0
