"""Checkpointed campaign execution: plans, spools, workers, resume.

A campaign directory is the unit of state::

    campaign.json        the frozen plan (base spec, axes, seeds, workers)
    spool-000.jsonl      worker 0's records, one compact JSON object per line
    spool-000.ckpt.json  worker 0's latest checkpoint manifest
    ...

Points are assigned to workers by ``index % workers`` and each worker
executes its points in ascending index order, appending one line per
finished point.  Every ``checkpoint_every`` records the worker flushes,
fsyncs, and atomically rewrites its checkpoint manifest.  Because every
point is a pure function of its spec, a record's bytes do not depend on
which process (or which attempt) produced it: resuming after a crash and
re-running only the missing points yields spools — and a merged results
document — byte-identical to an uninterrupted run.

Crash recovery never trusts the manifest over the spool: on resume the
worker scans its spool's valid JSONL prefix, truncates any torn tail left
by a mid-write crash, and re-executes exactly the points that are absent.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ExperimentError
from repro.scenarios.runner import AxisKey, Sweep, validate_record
from repro.scenarios.spec import ScenarioSpec

#: Campaign plan schema version.
CAMPAIGN_VERSION = 1

#: The plan file inside a campaign directory.
CAMPAIGN_FILENAME = "campaign.json"

#: Exit code of a worker killed by the ``fail_after`` crash hook.
CRASH_EXIT_CODE = 17


def spool_path(directory: str, worker: int) -> str:
    return os.path.join(directory, f"spool-{worker:03d}.jsonl")


def manifest_path(directory: str, worker: int) -> str:
    return os.path.join(directory, f"spool-{worker:03d}.ckpt.json")


def _dump_line(record: Dict[str, Any]) -> str:
    """One spool line: compact, key-sorted, newline-terminated."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


# ---------------------------------------------------------------------------
# The persisted plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignPlan:
    """Everything needed to (re)expand a campaign's grid deterministically.

    ``seeds`` is ``None`` only when the grid sweeps the ``"seed"`` path
    itself; otherwise it holds the fully-resolved root seeds (explicit
    seeds, derived replicate seeds, or the base seed).  ``workers`` is
    fixed at plan time: point-to-spool assignment (``index % workers``)
    must not drift between the original run and any resume, no matter how
    many processes the resume actually uses.
    """

    base: ScenarioSpec
    axes: Tuple[Tuple[Tuple[str, ...], Tuple[Any, ...]], ...]
    seeds: Optional[Tuple[int, ...]]
    workers: int
    checkpoint_every: int

    @classmethod
    def from_sweep(
        cls, sweep: Sweep, workers: int, checkpoint_every: int = 8
    ) -> "CampaignPlan":
        if workers < 1:
            raise ExperimentError(f"workers must be at least 1, got {workers}")
        if checkpoint_every < 1:
            raise ExperimentError(
                f"checkpoint_every must be at least 1, got {checkpoint_every}"
            )
        axes: List[Tuple[Tuple[str, ...], Tuple[Any, ...]]] = []
        for key, values in sweep.axes.items():
            paths = key if isinstance(key, tuple) else (key,)
            axes.append((tuple(paths), tuple(values)))
        seeds = None if sweep._seed_swept else sweep.seeds
        plan = cls(
            base=sweep.base,
            axes=tuple(axes),
            seeds=seeds,
            workers=workers,
            checkpoint_every=checkpoint_every,
        )
        # Fail fast on axis values the JSONL spools cannot represent.
        try:
            json.dumps([list(values) for _, values in plan.axes])
        except (TypeError, ValueError) as error:
            raise ExperimentError(
                f"campaign axis values must be JSON-serialisable: {error}"
            ) from None
        return plan

    def sweep(self) -> Sweep:
        """Re-expand the grid exactly as the original :class:`Sweep` did."""
        axes: Dict[AxisKey, Sequence[Any]] = {}
        for paths, values in self.axes:
            if len(paths) == 1:
                axes[paths[0]] = values
            else:
                axes[paths] = values
        return Sweep(self.base, axes=axes, seeds=self.seeds)

    def point_count(self) -> int:
        return self.sweep().point_count()

    def worker_indices(self, worker: int) -> List[int]:
        """The point indices spooled by ``worker``, in execution order."""
        return list(range(worker, self.point_count(), self.workers))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CAMPAIGN_VERSION,
            "base": self.base.to_dict(),
            "axes": [
                {"paths": list(paths), "values": [list(v) if isinstance(v, tuple) else v for v in values]}
                for paths, values in self.axes
            ],
            "seeds": None if self.seeds is None else list(self.seeds),
            "workers": self.workers,
            "checkpoint_every": self.checkpoint_every,
            "points": self.point_count(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], source: str) -> "CampaignPlan":
        version = data.get("version")
        if version != CAMPAIGN_VERSION:
            raise ExperimentError(
                f"unsupported campaign version {version!r} in {source!r} "
                f"(expected {CAMPAIGN_VERSION})"
            )
        try:
            base = ScenarioSpec.from_dict(data["base"])
            axes: List[Tuple[Tuple[str, ...], Tuple[Any, ...]]] = []
            for axis in data["axes"]:
                paths = tuple(axis["paths"])
                values = tuple(
                    tuple(v) if len(paths) > 1 else v for v in axis["values"]
                )
                axes.append((paths, values))
            seeds = data["seeds"]
            return cls(
                base=base,
                axes=tuple(axes),
                seeds=None if seeds is None else tuple(int(s) for s in seeds),
                workers=int(data["workers"]),
                checkpoint_every=int(data["checkpoint_every"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ExperimentError(
                f"campaign plan {source!r} is malformed: {error}"
            ) from None

    def save(self, directory: str) -> None:
        path = os.path.join(directory, CAMPAIGN_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, directory: str) -> "CampaignPlan":
        path = os.path.join(directory, CAMPAIGN_FILENAME)
        if not os.path.exists(path):
            raise ExperimentError(
                f"{directory!r} is not a campaign directory (no {CAMPAIGN_FILENAME})"
            )
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ExperimentError(
                f"campaign plan {path!r} is truncated or not valid JSON: {error}"
            ) from None
        return cls.from_dict(data, path)


# ---------------------------------------------------------------------------
# Spool scanning
# ---------------------------------------------------------------------------


def scan_spool(path: str, repair: bool = False) -> Tuple[Set[int], int]:
    """Scan a spool's valid JSONL prefix.

    Returns ``(done_indices, valid_bytes)``.  A torn tail (a mid-write
    crash leaves a final line that is incomplete or unparseable) stops the
    scan; with ``repair=True`` the file is truncated back to the valid
    prefix so appends resume cleanly.  Without ``repair`` a torn tail
    raises, pointing the user at ``campaign resume``.
    """
    done, valid_bytes = _scan_valid_prefix_only(path)
    if not os.path.exists(path):
        return done, valid_bytes
    size = os.path.getsize(path)
    if size > valid_bytes:
        if not repair:
            raise ExperimentError(
                f"spool {path!r} has a torn tail ({size - valid_bytes} bytes past "
                f"the last valid record); run 'campaign resume' to repair it"
            )
        with open(path, "rb+") as handle:
            handle.truncate(valid_bytes)
    return done, valid_bytes


def _write_manifest(
    directory: str, worker: int, records: int, valid_bytes: int, complete: bool
) -> None:
    path = manifest_path(directory, worker)
    tmp = path + ".tmp"
    payload = {
        "version": CAMPAIGN_VERSION,
        "worker": worker,
        "records": records,
        "bytes": valid_bytes,
        "complete": complete,
    }
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# The worker
# ---------------------------------------------------------------------------


def _worker_main(
    directory: str, worker: int, fail_after: Optional[int] = None
) -> None:
    """Execute one worker's missing points, appending to its spool.

    ``fail_after`` is a test/CI crash hook: after appending that many
    records *in this process*, the worker writes a deliberately torn line
    and dies with ``os._exit`` — no flush, no manifest, exactly like a
    kill -9 mid-write.  Module-level so ``spawn`` contexts can import it.
    """
    plan = CampaignPlan.load(directory)
    points = {point.index: point for point in plan.sweep().points()}
    mine = plan.worker_indices(worker)
    path = spool_path(directory, worker)
    done, valid_bytes = scan_spool(path, repair=True)
    todo = [index for index in mine if index not in done]
    if not todo:
        _write_manifest(directory, worker, len(done), valid_bytes, complete=True)
        return
    written = 0
    with open(path, "a", encoding="utf-8") as handle:
        for index in todo:
            point = points[index]
            result = point.spec.run()
            record = {
                "index": point.index,
                "scenario": point.spec.name,
                "replicate": point.replicate,
                "seed": point.spec.seed,
                "overrides": {path_: value for path_, value in point.overrides},
                "spec": point.spec.to_dict(),
                "result": result.to_dict(),
            }
            if fail_after is not None and written == fail_after:
                # Simulate a crash mid-write: half a line, no newline, die.
                handle.write(_dump_line(record)[: 20])
                handle.flush()
                os.fsync(handle.fileno())
                os._exit(CRASH_EXIT_CODE)
            handle.write(_dump_line(record))
            written += 1
            done.add(index)
            if written % plan.checkpoint_every == 0:
                handle.flush()
                os.fsync(handle.fileno())
                _write_manifest(
                    directory, worker, len(done), handle.tell(), complete=False
                )
        handle.flush()
        os.fsync(handle.fileno())
        final_bytes = handle.tell()
    if fail_after is not None and written == fail_after:
        # fail_after beyond the last record: tear nothing but still crash,
        # so tests can exercise "crash after a clean final line" too.
        os._exit(CRASH_EXIT_CODE)
    _write_manifest(directory, worker, len(done), final_bytes, complete=True)


# ---------------------------------------------------------------------------
# Status
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerStatus:
    """One worker's progress: spooled records vs assigned points."""

    worker: int
    assigned: int
    done: int
    torn: bool

    @property
    def complete(self) -> bool:
        return self.done >= self.assigned and not self.torn


@dataclass(frozen=True)
class CampaignStatus:
    """A campaign's overall progress."""

    directory: str
    points: int
    done: int
    workers: Tuple[WorkerStatus, ...]

    @property
    def complete(self) -> bool:
        return all(worker.complete for worker in self.workers)

    @property
    def missing(self) -> int:
        return self.points - self.done


def campaign_status(directory: str) -> CampaignStatus:
    """Inspect a campaign directory without executing anything."""
    plan = CampaignPlan.load(directory)
    total = plan.point_count()
    statuses: List[WorkerStatus] = []
    done_total = 0
    for worker in range(plan.workers):
        assigned = len(plan.worker_indices(worker))
        path = spool_path(directory, worker)
        try:
            done, _ = scan_spool(path, repair=False)
            torn = False
        except ExperimentError:
            done, _ = _scan_valid_prefix_only(path)
            torn = True
        statuses.append(
            WorkerStatus(worker=worker, assigned=assigned, done=len(done), torn=torn)
        )
        done_total += len(done)
    return CampaignStatus(
        directory=directory, points=total, done=done_total, workers=tuple(statuses)
    )


def _scan_valid_prefix_only(path: str) -> Tuple[Set[int], int]:
    """Like :func:`scan_spool` but never raises on (or repairs) a torn tail."""
    done: Set[int] = set()
    valid_bytes = 0
    if not os.path.exists(path):
        return done, valid_bytes
    with open(path, "rb") as handle:
        for line in handle:
            if not line.endswith(b"\n"):
                break
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break
            validate_record(entry, path, position=len(done))
            done.add(int(entry["index"]))
            valid_bytes += len(line)
    return done, valid_bytes


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class CampaignRunner:
    """Runs campaigns: shards a sweep across worker processes with spools.

    ``jobs`` bounds how many worker *processes* run concurrently; the
    number of *spools* is fixed by the plan's ``workers`` so resume never
    re-shards points.  ``jobs=1`` executes workers in-process (serially),
    which is bit-identical to the multi-process path because every point
    derives all randomness from its own seed.
    """

    def __init__(
        self,
        jobs: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be at least 1, got {jobs}")
        self.jobs = jobs
        self.start_method = start_method

    def run(
        self,
        sweep: Sweep,
        directory: str,
        workers: Optional[int] = None,
        checkpoint_every: int = 8,
        fail_after: Optional[int] = None,
        fail_worker: int = 0,
    ) -> CampaignStatus:
        """Initialise ``directory`` with a plan and execute every point.

        ``fail_after``/``fail_worker`` arm the crash hook on one worker
        (see :func:`_worker_main`); the returned status then reports an
        incomplete campaign ready for :meth:`resume`.
        """
        os.makedirs(directory, exist_ok=True)
        plan_file = os.path.join(directory, CAMPAIGN_FILENAME)
        if os.path.exists(plan_file):
            raise ExperimentError(
                f"{directory!r} already holds a campaign; use resume"
            )
        plan = CampaignPlan.from_sweep(
            sweep,
            workers=workers if workers is not None else self.jobs,
            checkpoint_every=checkpoint_every,
        )
        plan.save(directory)
        return self._execute(plan, directory, fail_after, fail_worker)

    def resume(
        self,
        directory: str,
        fail_after: Optional[int] = None,
        fail_worker: int = 0,
    ) -> CampaignStatus:
        """Re-execute only the missing points of an existing campaign."""
        plan = CampaignPlan.load(directory)
        return self._execute(plan, directory, fail_after, fail_worker)

    def _execute(
        self,
        plan: CampaignPlan,
        directory: str,
        fail_after: Optional[int],
        fail_worker: int,
    ) -> CampaignStatus:
        worker_ids = list(range(plan.workers))
        if self.jobs == 1 and fail_after is None:
            for worker in worker_ids:
                _worker_main(directory, worker)
            return campaign_status(directory)
        context = multiprocessing.get_context(self.start_method)
        pending = list(worker_ids)
        running: List[Tuple[int, Any]] = []
        while pending or running:
            while pending and len(running) < self.jobs:
                worker = pending.pop(0)
                hook = fail_after if worker == fail_worker else None
                process = context.Process(
                    target=_worker_main, args=(directory, worker, hook)
                )
                process.start()
                running.append((worker, process))
            worker, process = running.pop(0)
            process.join()
            if process.exitcode not in (0, CRASH_EXIT_CODE):
                for _, other in running:
                    other.join()
                raise ExperimentError(
                    f"campaign worker {worker} exited with code {process.exitcode}"
                )
        return campaign_status(directory)
