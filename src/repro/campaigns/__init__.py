"""Checkpointed, out-of-core sweep campaigns.

A *campaign* is a sweep grid executed by worker processes that stream one
compact JSONL record per finished point to per-worker spool files, with
periodic checkpoint manifests.  Kill a worker mid-campaign, rerun, and it
resumes from the last valid spool prefix — only missing points re-execute,
and the merged output is byte-identical to an uninterrupted run.

* :mod:`repro.campaigns.runner` — :class:`CampaignPlan` (the persisted
  grid), the spool/checkpoint protocol, and :class:`CampaignRunner`;
* :mod:`repro.campaigns.store`  — :class:`CampaignStore`, the merge-on-read
  view (``load``/``query``/``summarise``/``merge``) that never materialises
  more than one record at a time.
"""

from repro.campaigns.runner import (
    CAMPAIGN_FILENAME,
    CampaignPlan,
    CampaignRunner,
    CampaignStatus,
    WorkerStatus,
    campaign_status,
)
from repro.campaigns.store import CampaignStore

__all__ = [
    "CAMPAIGN_FILENAME",
    "CampaignPlan",
    "CampaignRunner",
    "CampaignStatus",
    "WorkerStatus",
    "campaign_status",
    "CampaignStore",
]
