"""Merge-on-read access to a campaign's spooled records.

:class:`CampaignStore` treats the per-worker JSONL spools as the source of
truth and merges them lazily, by point index, holding one record in memory
at a time.  ``query``/``summarise`` stream; ``merge`` writes a results
document byte-identical to :func:`repro.scenarios.runner.save_results` on
the equivalent uninterrupted sweep — so downstream tooling (``plot``,
``load_results``) cannot tell a resumed campaign from a straight run.
"""

from __future__ import annotations

import heapq
import json
import math
import os
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ExperimentError
from repro.metrics.summary import Summary
from repro.scenarios.runner import (
    RESULTS_VERSION,
    SweepRecord,
    validate_record,
)
from repro.campaigns.runner import CampaignPlan, campaign_status, spool_path


def _metric_accessor(metric: str) -> Callable[[Dict[str, Any]], Optional[float]]:
    """Resolve a dotted path (e.g. ``good.served`` or ``offered_load``)
    inside a record's ``result`` dict to a float, or ``None`` if absent."""
    parts = metric.split(".")

    def fetch(record: Dict[str, Any]) -> Optional[float]:
        node: Any = record.get("result", {})
        for part in parts:
            if not isinstance(node, Mapping) or part not in node:
                return None
            node = node[part]
        if isinstance(node, bool) or not isinstance(node, (int, float)):
            return None
        return float(node)

    return fetch


class CampaignStore:
    """Reads a campaign directory without materialising all records."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.plan = CampaignPlan.load(directory)

    # -- streaming primitives ----------------------------------------------

    def _spool_iter(self, worker: int) -> Iterator[Dict[str, Any]]:
        path = spool_path(self.directory, worker)
        if not os.path.exists(path):
            return
        position = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    raise ExperimentError(
                        f"spool {path!r} has a torn tail; "
                        f"run 'campaign resume' to repair it"
                    )
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ExperimentError(
                        f"spool {path!r} is corrupt at record {position}: {error}"
                    ) from None
                validate_record(entry, path, position=position)
                position += 1
                yield entry

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        """All spooled records as raw dicts, merged in point-index order."""
        iterators = [
            self._spool_iter(worker) for worker in range(self.plan.workers)
        ]
        last_index: Optional[int] = None
        for entry in heapq.merge(*iterators, key=lambda d: int(d["index"])):
            index = int(entry["index"])
            if index == last_index:
                raise ExperimentError(
                    f"campaign {self.directory!r} holds duplicate records "
                    f"for point {index}"
                )
            last_index = index
            yield entry

    def iter_records(self) -> Iterator[SweepRecord]:
        """All spooled records as :class:`SweepRecord`, one at a time."""
        for entry in self.iter_dicts():
            yield SweepRecord.from_dict(entry)

    # -- queries -----------------------------------------------------------

    def status(self):
        """Delegates to :func:`repro.campaigns.runner.campaign_status`."""
        return campaign_status(self.directory)

    def count(self) -> int:
        count = 0
        for _ in self.iter_dicts():
            count += 1
        return count

    def load(self) -> List[SweepRecord]:
        """Materialise every record (the one deliberately O(points) call)."""
        return list(self.iter_records())

    def query(
        self,
        where: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> Iterator[SweepRecord]:
        """Stream records whose overrides match ``where`` (exact equality
        per path) and, if given, satisfy ``predicate`` on the raw dict."""
        for entry in self.iter_dicts():
            overrides = entry.get("overrides", {})
            if where is not None:
                if any(overrides.get(path) != value for path, value in where.items()):
                    continue
            if predicate is not None and not predicate(entry):
                continue
            yield SweepRecord.from_dict(entry)

    def summarise(
        self,
        metric: str,
        by: Optional[str] = None,
        where: Optional[Mapping[str, Any]] = None,
    ) -> Dict[Any, Summary]:
        """Streaming per-group summary of one result metric.

        ``metric`` is a dotted path inside each record's result dict
        (``"good.served"``, ``"mean_price_by_class.bad"``); ``by`` groups
        by an override path (default: one group keyed ``None``).  Only
        count/mean/min/max are filled — percentiles would need the full
        population, which is exactly what this store avoids holding.
        """
        fetch = _metric_accessor(metric)
        stats: Dict[Any, Tuple[int, float, float, float]] = {}
        for entry in self.iter_dicts():
            overrides = entry.get("overrides", {})
            if where is not None:
                if any(overrides.get(path) != value for path, value in where.items()):
                    continue
            value = fetch(entry)
            if value is None:
                continue
            key = overrides.get(by) if by is not None else None
            count, total, low, high = stats.get(key, (0, 0.0, math.inf, -math.inf))
            stats[key] = (
                count + 1,
                total + value,
                min(low, value),
                max(high, value),
            )
        summaries: Dict[Any, Summary] = {}
        for key, (count, total, low, high) in sorted(
            stats.items(), key=lambda item: (str(type(item[0])), str(item[0]))
        ):
            mean = total / count
            summaries[key] = Summary(
                count=count, mean=mean, stddev=0.0,
                minimum=low, maximum=high,
                p50=0.0, p90=0.0, p99=0.0,
            )
        return summaries

    # -- merge -------------------------------------------------------------

    def merge(self, out_path: str) -> int:
        """Write the full results document to ``out_path``, streaming.

        The output is byte-identical to
        :func:`repro.scenarios.runner.save_results` over the same records:
        spool lines are parsed and re-dumped with the document's
        formatting, never round-tripped through ``from_dict`` (which would
        coerce types).  Refuses to merge an incomplete campaign.  Returns
        the number of records written.
        """
        status = campaign_status(self.directory)
        if not status.complete:
            raise ExperimentError(
                f"campaign {self.directory!r} is incomplete "
                f"({status.done}/{status.points} points); "
                f"run 'campaign resume' first"
            )
        tmp = out_path + ".tmp"
        written = 0
        with open(tmp, "w", encoding="utf-8") as out:
            out.write('{\n  "records": [')
            for entry in self.iter_dicts():
                text = json.dumps(entry, indent=2, sort_keys=True)
                indented = "\n".join("    " + line for line in text.splitlines())
                out.write(("," if written else "") + "\n" + indented)
                written += 1
            if written:
                out.write("\n  ],\n")
            else:
                out.write("],\n")
            out.write(f'  "version": {RESULTS_VERSION}\n}}\n')
        os.replace(tmp, out_path)
        return written
