"""Named scenario factories: the paper's setups plus new workloads.

Every factory returns a :class:`~repro.scenarios.spec.ScenarioSpec` and takes
only JSON-friendly keyword arguments, so the registry is the vocabulary of
the sweep CLI (``speakup-repro sweep --scenario NAME``) as well as of the
experiment modules.  Counts and capacities default to the paper's §7 scale;
callers (tests, benchmarks) shrink them via the factory arguments.

Paper setups: ``lan-baseline`` (§7.2–§7.4), ``bandwidth-tiers`` (Figure 6),
``rtt-tiers`` (Figure 7), ``shared-bottleneck`` (Figure 8), ``cross-traffic``
(Figure 9).  New workloads: ``flash-crowd``, ``pulsed-attack``,
``diurnal-demand``, ``uplink-tiers``, the composable-admission scenarios
``adaptive-pulse`` (attack-triggered engagement) and ``layered-lan``
(rate-limit filter in front of the auction), the sharded-fleet scenarios
``fleet-lan``, ``fleet-mega`` (§4.3 scale-out), ``fleet-failover``
(a mid-run shard kill/heal pulse) and ``fleet-brownout`` (a gray-failure
pulse — degraded, lossy or stalled shards — with optional client retry
policies and health-driven ejection), the datacenter-fabric scenario
``fabric-mega`` (the fleet on a leaf-spine or fat-tree fabric with an
oversubscribed core, cross-traffic, and any registered dispatch strategy),
and the perf-harness workloads ``stress-mega`` (allocator-bound),
``thinner-mega`` (auction-bound, ≥50k clients), ``soa-mega``
(array-bound, ≥200k clients through the struct-of-arrays vectorized
allocator path) and ``rollup-mega`` (≥500k clients under streaming
rollup telemetry, pinning the collector's memory footprint to
O(buckets + reservoir) instead of O(requests)).
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.constants import (
    DEFAULT_CLIENT_BANDWIDTH,
    MBIT,
    milliseconds,
)
from repro.core.routing import RouterSpec
from repro.defenses.spec import DefenseSpec, normalise_defense
from repro.errors import ExperimentError
from repro.simnet.topology import DEFAULT_THINNER_BANDWIDTH
from repro.telemetry.spec import TelemetrySpec
from repro.scenarios.spec import (
    ArrivalSpec,
    GroupSpec,
    ScenarioSpec,
    TopologySpec,
    freeze_overrides,
)

_REGISTRY: Dict[str, Callable[..., ScenarioSpec]] = {}


def register(name: str) -> Callable[[Callable[..., ScenarioSpec]], Callable[..., ScenarioSpec]]:
    """Class-level decorator registering a factory under ``name``."""

    def decorator(factory: Callable[..., ScenarioSpec]) -> Callable[..., ScenarioSpec]:
        if name in _REGISTRY:
            raise ExperimentError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_description(name: str) -> str:
    """First line of the factory's docstring (for CLI listings)."""
    factory = _factory(name)
    doc = (factory.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def build_scenario(name: str, **overrides) -> ScenarioSpec:
    """Build the named scenario, passing ``overrides`` to its factory."""
    factory = _factory(name)
    try:
        return factory(**overrides)
    except TypeError as exc:
        raise ExperimentError(f"bad arguments for scenario {name!r}: {exc}") from None


def _factory(name: str) -> Callable[..., ScenarioSpec]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; known scenarios: {', '.join(scenario_names())}"
        ) from None


# ---------------------------------------------------------------------------
# The generated scenario gallery (docs/SCENARIOS.md)
# ---------------------------------------------------------------------------


def _format_bandwidth(bps: float) -> str:
    return f"{bps / MBIT:g} Mbit/s"


def _format_default(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (tuple, list)):
        return "(" + ", ".join(_format_default(v) for v in value) + ")"
    return repr(value) if isinstance(value, str) else str(value)


def scenario_markdown() -> str:
    """The scenario gallery as markdown (``speakup-repro scenarios --doc``).

    Rendered entirely from the registry — each scenario's docstring, its
    factory knobs with their defaults, and the topology/client mix of the
    spec the factory builds at those defaults — so ``docs/SCENARIOS.md`` can
    be regenerated (and is tested to be regenerable) from the code alone.
    """
    lines: List[str] = [
        "# Scenario gallery",
        "",
        "All named scenarios in the registry (`repro.scenarios.registry`), with",
        "their topology, client mix, and factory knobs at default values.",
        "",
        "> Auto-generated — do not edit by hand.  Regenerate with:",
        ">",
        "> ```sh",
        "> PYTHONPATH=src python -m repro.cli scenarios --doc > docs/SCENARIOS.md",
        "> ```",
        "",
        "Run any scenario with `speakup-repro sweep --scenario NAME`; every knob",
        "below is a `--set KEY=VALUE` argument.",
        "",
    ]
    for name in scenario_names():
        factory = _REGISTRY[name]
        spec = factory()
        doc = inspect.getdoc(factory) or ""
        lines.append(f"## `{name}`")
        lines.append("")
        if doc:
            lines.extend(doc.splitlines())
            lines.append("")

        topology = spec.topology
        topo_bits = [f"kind `{topology.kind}`"]
        if topology.kind in ("bottleneck", "dumbbell"):
            topo_bits.append(
                f"shared cable {_format_bandwidth(topology.bottleneck_bandwidth_bps)}"
                f" / {topology.bottleneck_delay_s * 1e3:g} ms"
            )
        if topology.kind == "leaf-spine":
            topo_bits.append(
                f"{topology.leaves} leaves × {topology.spines} spines, "
                f"{topology.oversubscription:g}:1 oversubscribed"
            )
        elif topology.kind == "fat-tree":
            topo_bits.append(
                f"k={topology.fabric_k} fat-tree, "
                f"{topology.oversubscription:g}:1 oversubscribed"
            )
        if topology.cross_traffic_pairs:
            topo_bits.append(f"{topology.cross_traffic_pairs} cross-traffic pair(s)")
        if spec.thinner_shards > 1:
            dispatch = (
                spec.router_spec.name if spec.router_spec is not None else spec.shard_policy
            )
            topo_bits.append(
                f"thinner fleet of {spec.thinner_shards} shards "
                f"(`{dispatch}` dispatch, `{spec.admission_mode}` admission)"
            )
        lines.append(f"**Topology:** {', '.join(topo_bits)}.")
        lines.append("")

        if spec.defense_spec is not None:
            lines.append(f"**Defense:** `{spec.defense_spec.label()}` (a composed")
            lines.append("`DefenseSpec`; its kwargs are sweepable via")
            lines.append("`--grid defense_spec.KWARG=...`).")
            lines.append("")

        lines.append("**Client mix (at defaults):**")
        lines.append("")
        lines.append("| count | class | bandwidth | rate (rps) | window | arrival | category |")
        lines.append("|---|---|---|---|---|---|---|")
        for group in spec.groups:
            lines.append(
                "| {count} | {cls} | {bw} | {rate} | {window} | {arrival} | {cat} |".format(
                    count=group.count,
                    cls=group.client_class,
                    bw=_format_bandwidth(group.bandwidth_bps),
                    rate="class default" if group.rate_rps is None else f"{group.rate_rps:g}",
                    window="class default" if group.window is None else group.window,
                    arrival=group.arrival.kind,
                    cat=group.category or "-",
                )
            )
        lines.append("")

        lines.append("**Knobs:**")
        lines.append("")
        lines.append("| knob | default |")
        lines.append("|---|---|")
        for parameter in inspect.signature(factory).parameters.values():
            default = (
                "required"
                if parameter.default is inspect.Parameter.empty
                else f"`{_format_default(parameter.default)}`"
            )
            lines.append(f"| `{parameter.name}` | {default} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# The paper's setups
# ---------------------------------------------------------------------------


@register("lan-baseline")
def lan_baseline(
    good_clients: int = 25,
    bad_clients: int = 25,
    capacity_rps: float = 100.0,
    defense: str = "speakup",
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    good_rate: Optional[float] = None,
    good_window: Optional[int] = None,
    bad_rate: Optional[float] = None,
    bad_window: Optional[int] = None,
    duration: float = 60.0,
    seed: int = 0,
    encouragement_delay: float = 0.0,
    config_overrides: Optional[dict] = None,
) -> ScenarioSpec:
    """Good and bad clients on one LAN (the §7.2-§7.4 workhorse)."""
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=good_rate,
                window=good_window,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=bad_rate,
                window=bad_window,
            ),
        )
    return ScenarioSpec(
        name="lan-baseline",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
        encouragement_delay=encouragement_delay,
        config_overrides=freeze_overrides(config_overrides or {}),
    )


@register("bandwidth-tiers")
def bandwidth_tiers(
    clients_per_category: int = 10,
    categories: int = 5,
    capacity_rps: float = 10.0,
    client_class: str = "good",
    base_bandwidth_bps: float = 0.5 * MBIT,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Figure 6: bandwidth category ``i`` uploads at ``i`` x the base rate."""
    groups = tuple(
        GroupSpec(
            count=clients_per_category,
            client_class=client_class,
            bandwidth_bps=base_bandwidth_bps * (index + 1),
            category=f"cat-{index + 1}",
        )
        for index in range(categories)
    )
    return ScenarioSpec(
        name="bandwidth-tiers",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        duration=duration,
        seed=seed,
    )


@register("rtt-tiers")
def rtt_tiers(
    clients_per_category: int = 10,
    categories: int = 5,
    capacity_rps: float = 10.0,
    client_class: str = "good",
    rtt_step_ms: float = 100.0,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Figure 7: RTT category ``i`` sits ``i * rtt_step_ms`` ms from the thinner."""
    groups = tuple(
        GroupSpec(
            count=clients_per_category,
            client_class=client_class,
            bandwidth_bps=client_bandwidth_bps,
            category=f"cat-{index + 1}",
            # Host-attributed one-way delay supplies half the RTT contribution.
            extra_delay_s=milliseconds(rtt_step_ms * (index + 1)) / 2.0,
        )
        for index in range(categories)
    )
    return ScenarioSpec(
        name="rtt-tiers",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        duration=duration,
        seed=seed,
    )


@register("shared-bottleneck")
def shared_bottleneck(
    good_behind: int = 15,
    bad_behind: int = 15,
    direct_good: int = 10,
    direct_bad: int = 10,
    bottleneck_bandwidth_bps: float = 40 * MBIT,
    capacity_rps: float = 50.0,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Figure 8: a good/bad mix reaches the thinner through shared cable ``l``."""
    groups: Tuple[GroupSpec, ...] = ()
    for count, client_class, category, behind in (
        (good_behind, "good", "bottleneck-good", True),
        (bad_behind, "bad", "bottleneck-bad", True),
        (direct_good, "good", "direct-good", False),
        (direct_bad, "bad", "direct-bad", False),
    ):
        if count:
            groups += (
                GroupSpec(
                    count=count,
                    client_class=client_class,
                    bandwidth_bps=client_bandwidth_bps,
                    category=category,
                    behind_bottleneck=behind,
                ),
            )
    return ScenarioSpec(
        name="shared-bottleneck",
        topology=TopologySpec(
            kind="bottleneck", bottleneck_bandwidth_bps=bottleneck_bandwidth_bps
        ),
        groups=groups,
        capacity_rps=capacity_rps,
        duration=duration,
        seed=seed,
    )


@register("cross-traffic")
def cross_traffic(
    speakup_clients: int = 10,
    capacity_rps: float = 2.0,
    bottleneck_bandwidth_bps: float = 1 * MBIT,
    bottleneck_delay_s: float = milliseconds(100.0),
    client_bandwidth_bps: float = 2 * MBIT,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Figure 9: speak-up clients share dumbbell cable ``m`` with bystander ``H``."""
    groups: Tuple[GroupSpec, ...] = ()
    if speakup_clients:
        groups += (
            GroupSpec(
                count=speakup_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
            ),
        )
    return ScenarioSpec(
        name="cross-traffic",
        topology=TopologySpec(
            kind="dumbbell",
            bottleneck_bandwidth_bps=bottleneck_bandwidth_bps,
            bottleneck_delay_s=bottleneck_delay_s,
        ),
        groups=groups,
        capacity_rps=capacity_rps,
        duration=duration,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# New workloads beyond the paper
# ---------------------------------------------------------------------------


@register("flash-crowd")
def flash_crowd(
    good_clients: int = 25,
    bad_clients: int = 25,
    capacity_rps: float = 100.0,
    defense: str = "speakup",
    flash_start_s: Optional[float] = None,
    flash_ramp_s: Optional[float] = None,
    baseline_fraction: float = 0.1,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """A legitimate flash crowd arrives mid-attack and ramps to full demand.

    Good demand idles at ``baseline_fraction`` of its peak until
    ``flash_start_s`` (default: a third of the run), then ramps linearly over
    ``flash_ramp_s`` (default: a tenth of the run) to the full §7.1 rate while
    the attackers fire steadily throughout.
    """
    start = duration / 3.0 if flash_start_s is None else flash_start_s
    ramp = duration / 10.0 if flash_ramp_s is None else flash_ramp_s
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                arrival=ArrivalSpec(
                    kind="flash", start_s=start, ramp_s=ramp, floor=baseline_fraction
                ),
            ),
        )
    if bad_clients:
        groups += (GroupSpec(count=bad_clients, client_class="bad"),)
    return ScenarioSpec(
        name="flash-crowd",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
    )


@register("pulsed-attack")
def pulsed_attack(
    good_clients: int = 25,
    bad_clients: int = 25,
    capacity_rps: float = 100.0,
    defense: str = "speakup",
    pulse_period_s: float = 10.0,
    pulse_on_s: float = 5.0,
    pulse_floor: float = 0.0,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """On-off attackers pulse at full rate for ``pulse_on_s`` of every period.

    Models the classic pulsed/shrew-style attacker that alternates between
    silence and full-rate request floods while good demand stays steady.
    """
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (GroupSpec(count=good_clients, client_class="good"),)
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                arrival=ArrivalSpec(
                    kind="onoff",
                    period_s=pulse_period_s,
                    on_s=pulse_on_s,
                    floor=pulse_floor,
                ),
            ),
        )
    return ScenarioSpec(
        name="pulsed-attack",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
    )


@register("diurnal-demand")
def diurnal_demand(
    good_clients: int = 25,
    bad_clients: int = 25,
    capacity_rps: float = 100.0,
    defense: str = "speakup",
    day_length_s: Optional[float] = None,
    trough_fraction: float = 0.2,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Good demand follows a compressed diurnal curve; the attack never sleeps.

    The "day" defaults to the run duration, so one run covers one trough-to-
    trough cycle with the demand peak mid-run.
    """
    day = duration if day_length_s is None else day_length_s
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                arrival=ArrivalSpec(kind="diurnal", period_s=day, floor=trough_fraction),
            ),
        )
    if bad_clients:
        groups += (GroupSpec(count=bad_clients, client_class="bad"),)
    return ScenarioSpec(
        name="diurnal-demand",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
    )


@register("uplink-tiers")
def uplink_tiers(
    clients_per_tier: int = 6,
    tier_bandwidths_mbit: Sequence[float] = (0.5, 2.0, 10.0, 50.0),
    bad_fraction: float = 0.5,
    capacity_rps: float = 50.0,
    defense: str = "speakup",
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Good and bad clients spread across realistic access-uplink tiers.

    Each tier (DSL through fibre) holds ``clients_per_tier`` clients of which
    ``bad_fraction`` are attackers, probing how speak-up's bandwidth-
    proportional allocation treats a heterogeneous clientele under attack.
    """
    if not 0.0 <= bad_fraction <= 1.0:
        raise ExperimentError(f"bad_fraction must be in [0, 1], got {bad_fraction}")
    groups: Tuple[GroupSpec, ...] = ()
    for index, mbit in enumerate(tier_bandwidths_mbit):
        bad = round(clients_per_tier * bad_fraction)
        good = clients_per_tier - bad
        label = f"tier-{index + 1}"
        if good:
            groups += (
                GroupSpec(
                    count=good,
                    client_class="good",
                    bandwidth_bps=mbit * MBIT,
                    category=label,
                ),
            )
        if bad:
            groups += (
                GroupSpec(
                    count=bad,
                    client_class="bad",
                    bandwidth_bps=mbit * MBIT,
                    category=label,
                ),
            )
    return ScenarioSpec(
        name="uplink-tiers",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
    )


@register("adaptive-pulse")
def adaptive_pulse(
    good_clients: int = 25,
    bad_clients: int = 25,
    capacity_rps: float = 100.0,
    inner_defense: str = "speakup",
    pulse_start_s: Optional[float] = None,
    pulse_length_s: Optional[float] = None,
    engage_threshold: float = 0.9,
    disengage_threshold: float = 0.6,
    check_interval_s: float = 1.0,
    bad_rate: Optional[float] = None,
    bad_window: Optional[int] = None,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """One attack pulse against an adaptive thinner that engages speak-up on load.

    The paper's "the thinner does nothing in peacetime" design point as a
    runnable experiment: good demand is steady and modest, the attackers
    fire a single full-rate pulse from ``pulse_start_s`` (default: a quarter
    of the run) for ``pulse_length_s`` (default: a quarter of the run), and
    the :class:`~repro.defenses.adaptive.AdaptiveDefense` load watcher —
    sampling utilisation every ``check_interval_s`` against the
    ``engage_threshold``/``disengage_threshold`` hysteresis band — should
    leave the inner defense off before the pulse, engage it during, and
    disengage after the backlog drains.
    """
    start = duration / 4.0 if pulse_start_s is None else pulse_start_s
    length = duration / 4.0 if pulse_length_s is None else pulse_length_s
    if not 0.0 <= start < duration:
        raise ExperimentError(f"pulse_start_s must be within the run, got {start}")
    if not 0.0 < length <= duration:
        raise ExperimentError(f"pulse_length_s must be positive, got {length}")
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (GroupSpec(count=good_clients, client_class="good"),)
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                rate_rps=bad_rate,
                window=bad_window,
                # One on-window per run: the period is the whole duration
                # and the phase lines the window's start up with the pulse.
                arrival=ArrivalSpec(
                    kind="onoff",
                    period_s=duration,
                    on_s=length,
                    phase_s=duration - start,
                    floor=0.0,
                ),
            ),
        )
    return ScenarioSpec(
        name="adaptive-pulse",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        defense_spec=DefenseSpec.make(
            "adaptive",
            inner=normalise_defense(inner_defense),
            engage_threshold=engage_threshold,
            disengage_threshold=disengage_threshold,
            check_interval=check_interval_s,
        ),
        duration=duration,
        seed=seed,
    )


@register("layered-lan")
def layered_lan(
    good_clients: int = 25,
    bad_clients: int = 25,
    capacity_rps: float = 100.0,
    allowed_rps: float = 8.0,
    admission_defense: str = "speakup",
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """The §7.2 LAN mix behind a layered defense: rate-limit filter, then auction.

    The paper's compatibility claim ("speak-up composes with other
    defenses") as a scenario: a per-identity rate-limit stage screens
    contenders at ``allowed_rps`` before they enter the
    ``admission_defense`` thinner, so crude floods are cut by the filter
    while the auction prices whatever stays under the radar.  Per-stage
    drop attribution lands in ``RunResult.stages``.
    """
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (GroupSpec(count=good_clients, client_class="good"),)
    if bad_clients:
        groups += (GroupSpec(count=bad_clients, client_class="bad"),)
    return ScenarioSpec(
        name="layered-lan",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        defense_spec=DefenseSpec.make(
            "pipeline",
            stages=(
                DefenseSpec.make("ratelimit", allowed_rps=allowed_rps),
                normalise_defense(admission_defense),
            ),
        ),
        duration=duration,
        seed=seed,
    )


@register("fleet-lan")
def fleet_lan(
    good_clients: int = 25,
    bad_clients: int = 25,
    thinner_shards: int = 4,
    shard_policy: str = "hash",
    admission_mode: str = "partitioned",
    capacity_rps: float = 100.0,
    defense: str = "speakup",
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    fleet_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    bad_window: Optional[int] = None,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """The §7.2 workload in front of a sharded thinner fleet (§4.3).

    The lan-baseline population, but the single thinner is replaced by
    ``thinner_shards`` independent front-ends, each on its own access link
    carrying an even split of ``fleet_bandwidth_bps``.  ``shard_policy``
    picks how clients are pinned to shards and ``admission_mode`` how the
    shards share the server's slots — the two knobs §4.3's scale-out sketch
    leaves open.
    """
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
                window=bad_window,
            ),
        )
    return ScenarioSpec(
        name="fleet-lan",
        topology=TopologySpec(kind="lan", thinner_bandwidth_bps=fleet_bandwidth_bps),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
        thinner_shards=thinner_shards,
        shard_policy=shard_policy,
        admission_mode=admission_mode,
    )


@register("fleet-failover")
def fleet_failover(
    good_clients: int = 25,
    bad_clients: int = 25,
    thinner_shards: int = 4,
    shard_policy: str = "hash",
    admission_mode: str = "pooled",
    capacity_rps: float = 100.0,
    defense: str = "speakup",
    kill_shard: int = 1,
    kill_at_s: float = 20.0,
    heal_at_s: float = 40.0,
    repin_ttl_s: float = 2.0,
    sample_interval_s: float = 0.25,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    fleet_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """The fleet-lan workload through a mid-run shard kill/heal pulse.

    Exercises the failover dynamics §4.3 leaves open: at ``kill_at_s`` shard
    ``kill_shard`` drops dead — its access link goes down, its contenders
    and in-flight requests are orphaned — and its clients re-resolve to the
    survivors after a DNS-TTL-style lag drawn from ``[0, repin_ttl_s]``.
    At ``heal_at_s`` the shard rejoins the candidate set (already-re-pinned
    clients stay where they are — cached resolutions are sticky).  Pooled
    admission is the default so the server's full capacity survives the
    kill and good-client service can recover to its pre-kill level; with
    ``partitioned`` the dead shard's ``c/N`` slice idles instead.  The
    injector samples cumulative good service every ``sample_interval_s``;
    ``repro.cli failover`` plots the dip and recovery.
    """
    from repro.faults.spec import kill_heal_pulse

    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
            ),
        )
    return ScenarioSpec(
        name="fleet-failover",
        topology=TopologySpec(kind="lan", thinner_bandwidth_bps=fleet_bandwidth_bps),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
        thinner_shards=thinner_shards,
        shard_policy=shard_policy,
        admission_mode=admission_mode,
        fault_plan=kill_heal_pulse(
            kill_shard,
            kill_at_s,
            heal_at_s,
            repin_ttl_s=repin_ttl_s,
            sample_interval_s=sample_interval_s,
        ),
    )


@register("fleet-brownout")
def fleet_brownout(
    good_clients: int = 25,
    bad_clients: int = 25,
    thinner_shards: int = 4,
    shard_policy: str = "hash",
    admission_mode: str = "pooled",
    capacity_rps: float = 100.0,
    defense: str = "speakup",
    fault: str = "stall",
    fault_shard: int = 1,
    degrade_factor: float = 0.05,
    loss_p: float = 0.6,
    loss_scope: str = "fleet",
    start_at_s: Optional[float] = None,
    end_at_s: Optional[float] = None,
    retry: str = "none",
    health_probe: bool = False,
    probe_interval_s: float = 0.5,
    eject_fraction: float = 0.3,
    holddown_s: float = 3.0,
    sample_interval_s: float = 0.25,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    provisioning_headroom: float = 2.0,
    duration: float = 60.0,
    seed: int = 0,
) -> ScenarioSpec:
    """The fleet-lan workload through a mid-run gray-failure (brownout) pulse.

    Unlike ``fleet-failover``'s fail-stop kill, the faulted shard *stays up*
    — ``fault`` picks how it misbehaves between ``start_at_s`` (default: a
    third of the run) and ``end_at_s`` (default: two thirds):

    * ``"degrade"`` — the shard's access link drops to ``degrade_factor``
      of its capacity (payments trickle; admission keeps running);
    * ``"lossy"`` — completed uploads are dropped with probability
      ``loss_p``, on ``fault_shard`` only (``loss_scope="shard"``) or on
      every shard (``"fleet"``, the retry-amplification workload);
    * ``"stall"`` — the shard stops granting admission but keeps accepting
      bytes, starving its pinned clients (the ejection workload).

    ``retry`` arms the clients' upload retry discipline: ``"none"`` (the
    historical fire-and-forget), ``"naive"`` (immediate unbudgeted retries —
    measure the amplification), or ``"budgeted"`` (token-bucket budget plus
    decorrelated-jitter backoff).  ``health_probe`` arms the fleet's
    :class:`~repro.core.fleet.HealthProber`, which should eject the faulted
    shard and route its clients around the brownout.  Shard links split
    ``provisioning_headroom`` times the aggregate client bandwidth, so a
    degraded link actually bites.  ``repro.cli brownout`` runs the
    retry-amplification and ejection comparisons at this scenario's knobs.
    """
    from repro.clients.base import RetryPolicy
    from repro.core.fleet import HealthProbeSpec
    from repro.faults.spec import gray_pulse

    if fault not in ("degrade", "lossy", "stall"):
        raise ExperimentError(
            f"unknown fault {fault!r}; expected 'degrade', 'lossy' or 'stall'"
        )
    if loss_scope not in ("shard", "fleet"):
        raise ExperimentError(
            f"unknown loss_scope {loss_scope!r}; expected 'shard' or 'fleet'"
        )
    if retry not in ("none", "naive", "budgeted"):
        raise ExperimentError(
            f"unknown retry preset {retry!r}; expected 'none', 'naive' or 'budgeted'"
        )
    start = duration / 3.0 if start_at_s is None else start_at_s
    end = 2.0 * duration / 3.0 if end_at_s is None else end_at_s
    if fault == "lossy" and loss_scope == "fleet":
        fault_shards = tuple(range(thinner_shards))
    else:
        fault_shards = (fault_shard,)
    plan = gray_pulse(
        fault_shards,
        start,
        end,
        factor=degrade_factor if fault == "degrade" else None,
        loss_p=loss_p if fault == "lossy" else None,
        stall=fault == "stall",
        sample_interval_s=sample_interval_s,
    )
    retry_policy = {
        "none": None,
        "naive": RetryPolicy.naive(),
        "budgeted": RetryPolicy.budgeted(),
    }[retry]
    total = good_clients + bad_clients
    fleet_bandwidth = total * client_bandwidth_bps * provisioning_headroom
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
            ),
        )
    return ScenarioSpec(
        name="fleet-brownout",
        topology=TopologySpec(kind="lan", thinner_bandwidth_bps=fleet_bandwidth),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
        thinner_shards=thinner_shards,
        shard_policy=shard_policy,
        admission_mode=admission_mode,
        fault_plan=plan,
        retry_policy=retry_policy,
        health_probe=(
            HealthProbeSpec(
                interval_s=probe_interval_s,
                eject_fraction=eject_fraction,
                holddown_s=holddown_s,
            )
            if health_probe
            else None
        ),
    )


@register("fleet-mega")
def fleet_mega(
    good_clients: int = 16000,
    bad_clients: int = 1600,
    thinner_shards: int = 8,
    shard_policy: str = "hash",
    admission_mode: str = "partitioned",
    capacity_rps: float = 6000.0,
    defense: str = "speakup",
    good_rate: float = 1.0,
    bad_rate: float = 40.0,
    bad_window: int = 20,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    provisioning_headroom: float = 1.25,
    duration: float = 0.5,
    seed: int = 0,
) -> ScenarioSpec:
    """Perf-harness fleet workload: ≥17k clients spread over 8 front-ends.

    Not a paper figure — the ``repro.cli bench`` *fleet* mega scale,
    complementing ``thinner-mega`` (one thinner absorbing everything).  The
    same over-demanded auction-bound regime, but the population is hashed
    across ``thinner_shards`` independent thinners whose per-shard access
    links split an aggregate provisioned at ``provisioning_headroom`` times
    the total client bandwidth (condition C1 of §4.3).  Each shard runs its
    own kinetic bid index over ~1/N of the contenders, so the case
    benchmarks how admission cost and payment-sink load divide across a
    scale-out fleet.
    """
    total = good_clients + bad_clients
    fleet_bandwidth = max(
        DEFAULT_THINNER_BANDWIDTH, total * client_bandwidth_bps * provisioning_headroom
    )
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=good_rate,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=bad_rate,
                window=bad_window,
            ),
        )
    return ScenarioSpec(
        name="fleet-mega",
        topology=TopologySpec(kind="lan", thinner_bandwidth_bps=fleet_bandwidth),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
        thinner_shards=thinner_shards,
        shard_policy=shard_policy,
        admission_mode=admission_mode,
    )


@register("fabric-mega")
def fabric_mega(
    good_clients: int = 16000,
    bad_clients: int = 1600,
    thinner_shards: int = 8,
    fabric: str = "leaf-spine",
    leaves: int = 8,
    spines: int = 3,
    fabric_k: int = 4,
    oversubscription: float = 4.0,
    cross_traffic_pairs: int = 4,
    router: str = "power-of-two",
    probe: str = "pins",
    probe_window_s: float = 0.5,
    spill_factor: float = 1.25,
    admission_mode: str = "partitioned",
    capacity_rps: float = 6000.0,
    defense: str = "speakup",
    good_rate: float = 1.0,
    bad_rate: float = 40.0,
    bad_window: int = 20,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    provisioning_headroom: float = 1.25,
    duration: float = 0.5,
    seed: int = 0,
) -> ScenarioSpec:
    """The §4.3 fleet on a datacenter fabric, under any dispatch strategy.

    ``fleet-mega``'s over-demanded population, moved off the star-of-stars
    toy onto a real fabric shape: ``fabric`` picks ``leaf-spine`` (default),
    ``fat-tree``, or ``star`` (the legacy star-of-stars, for like-for-like
    strategy comparisons).  The core tier is ``oversubscription``:1
    oversubscribed and ``cross_traffic_pairs`` unbounded bystander flows
    occupy core links, so ECMP path collisions and shard choice genuinely
    move good-client service.  ``router`` selects any registered dispatch
    strategy (``hash``, ``least-loaded``, ``random``, ``power-of-two``,
    ``weighted-sink``, ``sticky-spill``) observing the ``probe`` signal —
    the ``repro.cli fabric`` experiment sweeps both axes.
    """
    fabrics = ("leaf-spine", "fat-tree", "star")
    if fabric not in fabrics:
        raise ExperimentError(
            f"unknown fabric {fabric!r}; expected one of {fabrics}"
        )
    total = good_clients + bad_clients
    fleet_bandwidth = max(
        DEFAULT_THINNER_BANDWIDTH, total * client_bandwidth_bps * provisioning_headroom
    )
    if fabric == "star":
        topology = TopologySpec(kind="lan", thinner_bandwidth_bps=fleet_bandwidth)
    elif fabric == "fat-tree":
        topology = TopologySpec(
            kind="fat-tree",
            thinner_bandwidth_bps=fleet_bandwidth,
            fabric_k=fabric_k,
            oversubscription=oversubscription,
            cross_traffic_pairs=cross_traffic_pairs,
        )
    else:
        topology = TopologySpec(
            kind="leaf-spine",
            thinner_bandwidth_bps=fleet_bandwidth,
            leaves=leaves,
            spines=spines,
            oversubscription=oversubscription,
            cross_traffic_pairs=cross_traffic_pairs,
        )
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=good_rate,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=bad_rate,
                window=bad_window,
            ),
        )
    return ScenarioSpec(
        name="fabric-mega",
        topology=topology,
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
        thinner_shards=thinner_shards,
        router_spec=RouterSpec(
            name=router,
            probe=probe,
            probe_window_s=probe_window_s,
            spill_factor=spill_factor,
        ),
        admission_mode=admission_mode,
    )


@register("stress-mega")
def stress_mega(
    good_clients: int = 4500,
    bad_clients: int = 500,
    capacity_rps: float = 100.0,
    defense: str = "speakup",
    bad_window: int = 10,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    duration: float = 0.25,
    seed: int = 0,
) -> ScenarioSpec:
    """Perf-harness stress workload: thousands of clients hammering one thinner.

    Not a paper figure — this is the ``repro.cli bench`` mega scale.  It keeps
    the §7.1 client parameters but multiplies the population to ≥5k clients
    (4500 good + 500 bad by default, the bad ones window-limited so the run
    stays auction-bound rather than degenerating into pure backlog sweeping),
    which exercises the fluid network's rate-reallocation hot path far beyond
    the paper's 50-host Emulab scale: thousands of concurrent payment flows
    whose aggregate static bounds approach the thinner's provisioned access
    bandwidth, the regime where naive potential-load accounting collapses
    every rate update into a global recomputation.
    """
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
                window=bad_window,
            ),
        )
    return ScenarioSpec(
        name="stress-mega",
        topology=TopologySpec(kind="lan"),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
    )


@register("thinner-mega")
def thinner_mega(
    good_clients: int = 48000,
    flash_clients: int = 1000,
    bad_clients: int = 1000,
    capacity_rps: float = 16000.0,
    defense: str = "speakup",
    good_rate: float = 1.0,
    bad_rate: float = 40.0,
    bad_window: int = 20,
    flash_start_s: float = 0.3,
    flash_ramp_s: float = 0.15,
    flash_floor: float = 0.02,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    provisioning_headroom: float = 1.25,
    duration: float = 0.5,
    seed: int = 0,
) -> ScenarioSpec:
    """Perf-harness auction workload: ≥50k clients contending at one thinner.

    Not a paper figure — this is the ``repro.cli bench`` *admission-path*
    mega scale, complementing ``stress-mega`` (which stresses the fluid
    allocator).  Tens of thousands of window-limited clients park requests
    at the thinner while a heavily over-demanded server frees slots at
    ``capacity_rps``, so the run is dominated by winner selection: every
    freed slot holds a virtual auction over the whole contender set (§3.3).
    A small flash cohort idles at ``flash_floor`` until ``flash_start_s``,
    exercising batched arrival pregeneration for mostly-idle clients, and
    the bad cohort keeps ``bad_window`` concurrent payment channels per
    uplink (the §7.1 parameters), which also drives ≥16-flow components
    through the allocator's signature cache.  The thinner's access link is
    provisioned at ``provisioning_headroom`` times the aggregate client
    bandwidth (condition C1 of §4.3), so admission — not the fluid
    allocator — is the bottleneck.
    """
    total = good_clients + flash_clients + bad_clients
    thinner_bandwidth = max(
        DEFAULT_THINNER_BANDWIDTH, total * client_bandwidth_bps * provisioning_headroom
    )
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=good_rate,
            ),
        )
    if flash_clients:
        groups += (
            GroupSpec(
                count=flash_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
                category="flash",
                arrival=ArrivalSpec(
                    kind="flash",
                    start_s=flash_start_s,
                    ramp_s=flash_ramp_s,
                    floor=flash_floor,
                ),
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=bad_rate,
                window=bad_window,
            ),
        )
    return ScenarioSpec(
        name="thinner-mega",
        topology=TopologySpec(kind="lan", thinner_bandwidth_bps=thinner_bandwidth),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
    )


@register("soa-mega")
def soa_mega(
    good_clients: int = 199500,
    bad_clients: int = 500,
    capacity_rps: float = 400.0,
    defense: str = "speakup",
    good_rate: float = 0.02,
    bad_rate: float = 40.0,
    bad_window: int = 1,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    thinner_bandwidth_bps: float = 400 * MBIT,
    duration: float = 0.1,
    seed: int = 0,
) -> ScenarioSpec:
    """Perf-harness array workload: ≥200k clients, one saturated payment sink.

    Not a paper figure — this is the ``repro.cli bench`` *struct-of-arrays*
    mega scale, complementing ``stress-mega`` (many small components) and
    ``thinner-mega`` (admission-bound).  Two hundred thousand clients sit on
    one switch; unlike ``thinner-mega`` the thinner's access link is
    deliberately *under*-provisioned (``thinner_bandwidth_bps`` defaults to
    a fraction of the payment fleet's aggregate uplink), so the concurrent
    payment POSTs from the bad cohort over-subscribe it and every re-rate
    touches one huge shared component.  That drives components far past
    :attr:`~repro.simnet.network.FluidNetwork.VEC_MIN_COMPONENT` straight
    down the vectorized waterfill and array re-rate path, which is exactly
    the regime the struct-of-arrays layout exists for: per-event cost must
    stay bounded by the *array* work, not by 200k Python objects.  The good
    cohort trickles requests at ``good_rate`` so admission traffic (and the
    kinetic bid index) stays exercised without drowning the run in
    arrivals; starting that many mostly-idle clients also pins the batched
    arrival-pregeneration cost at the 200k scale.
    """
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=good_rate,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=bad_rate,
                window=bad_window,
            ),
        )
    return ScenarioSpec(
        name="soa-mega",
        topology=TopologySpec(kind="lan", thinner_bandwidth_bps=thinner_bandwidth_bps),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        seed=seed,
    )


@register("rollup-mega")
def rollup_mega(
    good_clients: int = 499000,
    bad_clients: int = 1000,
    capacity_rps: float = 1000.0,
    defense: str = "speakup",
    good_rate: float = 0.02,
    bad_rate: float = 40.0,
    bad_window: int = 1,
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH,
    thinner_bandwidth_bps: float = 1000 * MBIT,
    duration: float = 0.05,
    telemetry_mode: str = "rollup",
    reservoir: int = 512,
    bucket_s: float = 0.01,
    max_buckets: int = 4096,
    seed: int = 0,
) -> ScenarioSpec:
    """Perf-harness telemetry workload: ≥500k clients under rollup collectors.

    Not a paper figure — the ``repro.cli bench`` *measurement-plane* mega
    scale.  Half a million clients on one switch reuse the ``soa-mega``
    traffic shape (a trickling good cohort over a saturated payment sink),
    but the run records through the streaming telemetry plane
    (:mod:`repro.telemetry`): reservoir samplers and time-bucketed rollups
    instead of unbounded per-request lists, so collector memory is
    O(buckets + reservoir) while the request count grows with the
    population.  ``telemetry_mode="full"`` flips the same population back
    to the historical exact collector, which is how the bench's peak-RSS
    and ``records_emitted`` gauges demonstrate the footprint difference.
    """
    groups: Tuple[GroupSpec, ...] = ()
    if good_clients:
        groups += (
            GroupSpec(
                count=good_clients,
                client_class="good",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=good_rate,
            ),
        )
    if bad_clients:
        groups += (
            GroupSpec(
                count=bad_clients,
                client_class="bad",
                bandwidth_bps=client_bandwidth_bps,
                rate_rps=bad_rate,
                window=bad_window,
            ),
        )
    return ScenarioSpec(
        name="rollup-mega",
        topology=TopologySpec(kind="lan", thinner_bandwidth_bps=thinner_bandwidth_bps),
        groups=groups,
        capacity_rps=capacity_rps,
        defense=defense,
        duration=duration,
        telemetry=TelemetrySpec(
            mode=telemetry_mode,
            reservoir=reservoir,
            bucket_s=bucket_s,
            max_buckets=max_buckets,
        ),
        seed=seed,
    )
