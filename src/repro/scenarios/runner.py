"""Parameter sweeps over scenarios, run serially or across cores.

A :class:`Sweep` expands a base :class:`~repro.scenarios.spec.ScenarioSpec`
into a grid of scenario points (axis values x seed replicates) and a
:class:`SweepRunner` executes the points, serially or with a
``multiprocessing`` pool.  Every point is a pure function of its spec — each
run owns its engine and derives every random stream from the point's seed —
so serial and parallel execution produce bit-identical results.

Replicate seeds are deterministic substreams of the base seed (via
:func:`repro.rng.derive_seed`), which keeps replicate ``k`` of a point stable
no matter how many replicates run or in what order.

The results store (:func:`save_results` / :func:`load_results`) writes one
JSON document whose records pair each point's overrides and spec with its
:class:`~repro.metrics.collector.RunResult`, the stable schema the CLI's
``sweep --out`` files use.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.metrics.collector import RunResult
from repro.rng import derive_seed
from repro.scenarios.spec import ScenarioSpec

#: An axis key: one spec path, or a tuple of paths varied together.
AxisKey = Union[str, Tuple[str, ...]]

#: Results-store schema version.
RESULTS_VERSION = 1


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved run of a sweep: a spec plus how it was derived."""

    index: int
    replicate: int
    overrides: Tuple[Tuple[str, Any], ...]
    spec: ScenarioSpec


class Sweep:
    """A parameter grid (plus seed replicates) over a base scenario.

    ``axes`` maps spec paths (see :meth:`ScenarioSpec.with_value`) to value
    sequences; a tuple-of-paths key varies several fields together (its
    values must be tuples of the same length).  Axes combine as a full cross
    product in insertion order.

    Seeds: pass ``seeds`` for explicit root seeds, or ``replicates=k`` to
    derive ``k`` deterministic substream seeds from the base spec's seed.
    Default is one run at the base seed.  Gridding an axis over ``"seed"``
    itself is also allowed (the axis then controls the seed directly), but
    not in combination with ``seeds``/``replicates``.
    """

    def __init__(
        self,
        base: ScenarioSpec,
        axes: Optional[Mapping[AxisKey, Sequence[Any]]] = None,
        seeds: Optional[Sequence[int]] = None,
        replicates: Optional[int] = None,
    ) -> None:
        if seeds is not None and replicates is not None:
            raise ExperimentError("pass either seeds or replicates, not both")
        if replicates is not None and replicates < 1:
            raise ExperimentError(f"replicates must be at least 1, got {replicates}")
        self.base = base
        self.axes: Dict[AxisKey, Tuple[Any, ...]] = {}
        for key, values in (axes or {}).items():
            values = tuple(values)
            if not values:
                raise ExperimentError(f"axis {key!r} has no values")
            if isinstance(key, tuple):
                for value in values:
                    if not isinstance(value, tuple) or len(value) != len(key):
                        raise ExperimentError(
                            f"composite axis {key!r} needs tuples of {len(key)} values"
                        )
            self.axes[key] = values
        axis_paths = {
            path
            for key in self.axes
            for path in (key if isinstance(key, tuple) else (key,))
        }
        self._seed_swept = "seed" in axis_paths
        if self._seed_swept and (seeds is not None or replicates is not None):
            raise ExperimentError(
                "a 'seed' axis cannot be combined with seeds/replicates"
            )
        if seeds is not None:
            self.seeds: Tuple[int, ...] = tuple(int(seed) for seed in seeds)
            if not self.seeds:
                raise ExperimentError("seeds must not be empty")
        elif replicates is not None:
            self.seeds = tuple(
                derive_seed(base.seed, f"replicate:{index}") for index in range(replicates)
            )
        else:
            self.seeds = (base.seed,)

    def point_count(self) -> int:
        count = len(self.seeds)
        for values in self.axes.values():
            count *= len(values)
        return count

    def points(self) -> List[SweepPoint]:
        """Expand the grid into concrete scenario points, in deterministic order."""
        points: List[SweepPoint] = []
        keys = list(self.axes)
        index = 0
        for combo in itertools.product(*(self.axes[key] for key in keys)):
            assignments: List[Tuple[str, Any]] = []
            for key, value in zip(keys, combo):
                if isinstance(key, tuple):
                    assignments.extend(zip(key, value))
                else:
                    assignments.append((key, value))
            spec = self.base
            for path, value in assignments:
                spec = spec.with_value(path, value)
            if self._seed_swept:
                # The axis already set the seed; do not clobber it.
                points.append(
                    SweepPoint(
                        index=index,
                        replicate=0,
                        overrides=tuple(assignments),
                        spec=spec,
                    )
                )
                index += 1
                continue
            for replicate, seed in enumerate(self.seeds):
                points.append(
                    SweepPoint(
                        index=index,
                        replicate=replicate,
                        overrides=tuple(assignments) + (("seed", seed),),
                        spec=spec.with_seed(seed),
                    )
                )
                index += 1
        return points


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class SweepRecord:
    """One executed sweep point: where it came from and what it measured."""

    index: int
    scenario: str
    replicate: int
    seed: int
    overrides: Dict[str, Any]
    spec: ScenarioSpec
    result: RunResult

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "scenario": self.scenario,
            "replicate": self.replicate,
            "seed": self.seed,
            "overrides": dict(self.overrides),
            "spec": self.spec.to_dict(),
            "result": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepRecord":
        return cls(
            index=int(data["index"]),
            scenario=data.get("scenario", ""),
            replicate=int(data.get("replicate", 0)),
            seed=int(data.get("seed", 0)),
            overrides=dict(data.get("overrides", {})),
            spec=ScenarioSpec.from_dict(data["spec"]),
            result=RunResult.from_dict(data["result"]),
        )


def run_spec(spec: ScenarioSpec) -> RunResult:
    """Execute one scenario (module-level so worker processes can import it)."""
    return spec.run()


class SweepRunner:
    """Executes sweeps, serially (``jobs=1``) or with a process pool."""

    def __init__(self, jobs: int = 1, start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be at least 1, got {jobs}")
        self.jobs = jobs
        self.start_method = start_method

    def run_specs(self, specs: Sequence[ScenarioSpec]) -> List[RunResult]:
        """Run a list of scenarios, preserving order."""
        if self.jobs == 1 or len(specs) <= 1:
            return [run_spec(spec) for spec in specs]
        context = multiprocessing.get_context(self.start_method)
        workers = min(self.jobs, len(specs))
        with context.Pool(processes=workers) as pool:
            return pool.map(run_spec, specs)

    def run(self, sweep: Sweep) -> List[SweepRecord]:
        """Expand and execute a sweep, returning one record per point."""
        points = sweep.points()
        results = self.run_specs([point.spec for point in points])
        return [
            SweepRecord(
                index=point.index,
                scenario=point.spec.name,
                replicate=point.replicate,
                seed=point.spec.seed,
                overrides={path: value for path, value in point.overrides},
                spec=point.spec,
                result=result,
            )
            for point, result in zip(points, results)
        ]


def default_jobs() -> int:
    """A sensible parallel width: the machine's cores, at least 1."""
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# The JSON results store
# ---------------------------------------------------------------------------


def results_document(records: Sequence[SweepRecord]) -> Dict[str, Any]:
    """The JSON document :func:`save_results` writes."""
    return {
        "version": RESULTS_VERSION,
        "records": [record.to_dict() for record in records],
    }


def save_results(records: Sequence[SweepRecord], path: str) -> None:
    """Write sweep records to ``path`` as one JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results_document(records), handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_record(entry: Any, source: str, position: Optional[int] = None) -> None:
    """Check one record's shape before :meth:`SweepRecord.from_dict` sees it.

    Raises :class:`~repro.errors.ExperimentError` (a one-line CLI error)
    instead of letting a ``KeyError``/``TypeError`` traceback escape.  Shared
    by :func:`load_results` and the campaign store's spool reader.
    """
    where = f"record {position}" if position is not None else "record"
    if not isinstance(entry, dict):
        raise ExperimentError(
            f"{where} in {source!r} must be an object, got {type(entry).__name__}"
        )
    for key in ("index", "spec", "result"):
        if key not in entry:
            raise ExperimentError(f"{where} in {source!r} is missing the {key!r} key")
    if not isinstance(entry["spec"], dict) or not isinstance(entry["result"], dict):
        raise ExperimentError(
            f"{where} in {source!r} has a malformed spec/result (objects expected)"
        )


def validate_results_document(document: Any, source: str) -> List[Dict[str, Any]]:
    """Check a results document's schema, returning its raw record dicts.

    Verifies the version key and each record's shape; every failure is an
    :class:`~repro.errors.ExperimentError` so the CLI exits with one line
    rather than a traceback.
    """
    if not isinstance(document, dict):
        raise ExperimentError(
            f"results file {source!r} must hold a JSON object, "
            f"got {type(document).__name__}"
        )
    if "version" not in document:
        raise ExperimentError(
            f"results file {source!r} has no 'version' key (not a results document?)"
        )
    version = document.get("version")
    if version != RESULTS_VERSION:
        raise ExperimentError(
            f"unsupported results version {version!r} in {source!r} "
            f"(expected {RESULTS_VERSION})"
        )
    records = document.get("records", [])
    if not isinstance(records, list):
        raise ExperimentError(f"results file {source!r}: 'records' must be a list")
    for position, entry in enumerate(records):
        validate_record(entry, source, position)
    return records


def load_results(path: str) -> List[SweepRecord]:
    """Read sweep records written by :func:`save_results`.

    Truncated/invalid JSON and schema mismatches raise
    :class:`~repro.errors.ExperimentError` (one line through the CLI), never
    a raw traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as error:
        raise ExperimentError(
            f"results file {path!r} is truncated or not valid JSON: {error}"
        ) from None
    records = validate_results_document(document, path)
    try:
        return [SweepRecord.from_dict(entry) for entry in records]
    except (KeyError, TypeError, ValueError) as error:
        raise ExperimentError(
            f"results file {path!r} has a malformed record: {error}"
        ) from None
