"""Scenarios as data: frozen, JSON-serialisable descriptions of a whole run.

A :class:`ScenarioSpec` captures everything a run needs — topology, client
population, defense, deployment knobs, duration, and seed — as plain frozen
dataclasses, so a scenario can be hashed, pickled to a worker process,
written to a results file, and rebuilt from JSON bit-for-bit.  ``build()``
turns the spec into a ready :class:`~repro.core.frontend.Deployment`;
``run()`` executes it and returns the :class:`~repro.metrics.collector.RunResult`.

Non-steady demand (flash crowds, pulsed attackers, diurnal load) is part of
the data model too: each client group carries an :class:`ArrivalSpec` whose
multiplier shapes the group's non-homogeneous Poisson arrival process.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.constants import DEFAULT_CLIENT_BANDWIDTH
from repro.errors import ClientError, DefenseError, ExperimentError, FaultError, ThinnerError
from repro.clients.base import RetryPolicy
from repro.clients.population import PopulationSpec, build_population
from repro.core.fleet import ADMISSION_MODES, SHARD_POLICIES, HealthProbeSpec
from repro.core.frontend import CrossTrafficDriver, Deployment, DeploymentConfig
from repro.core.routing import RouterSpec
from repro.defenses.spec import DefenseSpec, normalise_defense
from repro.faults.spec import FaultPlan
from repro.metrics.collector import RunResult
from repro.telemetry.spec import TelemetrySpec
from repro.simnet.topology import (
    DEFAULT_LAN_DELAY,
    DEFAULT_THINNER_BANDWIDTH,
    build_bottleneck,
    build_dumbbell,
    build_fat_tree,
    build_fleet,
    build_lan,
    build_leaf_spine,
)

#: Topology shapes a spec can describe: the paper's three Emulab setups plus
#: the datacenter fabrics the §4.3 fleet scales into.
TOPOLOGY_KINDS = ("lan", "bottleneck", "dumbbell", "fat-tree", "leaf-spine")

#: The hierarchical datacenter fabric kinds (multi-tier, ECMP-routed).
FABRIC_KINDS = ("fat-tree", "leaf-spine")

#: Arrival-process shapes a client group can follow.
ARRIVAL_KINDS = ("steady", "onoff", "flash", "diurnal")


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrivalSpec:
    """How a group's demand varies over the run.

    ``rate_rps`` on the group is the *peak* Poisson rate; the modulator maps
    simulated time to a multiplier in [0, 1] and arrivals are realised by
    thinning, so runs stay deterministic under a fixed seed.

    * ``steady``  — the paper's workload: a constant-rate Poisson process.
    * ``onoff``   — pulsed demand: full rate for ``on_s`` seconds out of every
      ``period_s`` (shifted by ``phase_s``), ``floor`` otherwise.  Models
      on-off/pulsed attackers.
    * ``flash``   — ``floor`` until ``start_s``, then a linear ramp over
      ``ramp_s`` seconds up to the full rate.  Models a flash crowd.
    * ``diurnal`` — a raised-cosine day: trough ``floor`` at ``phase_s``
      offsets of the ``period_s``-second "day", peak mid-period.
    """

    kind: str = "steady"
    period_s: float = 0.0
    on_s: float = 0.0
    phase_s: float = 0.0
    start_s: float = 0.0
    ramp_s: float = 0.0
    floor: float = 0.0

    def validate(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ExperimentError(
                f"unknown arrival kind {self.kind!r}; expected one of {ARRIVAL_KINDS}"
            )
        if not 0.0 <= self.floor <= 1.0:
            raise ExperimentError(f"arrival floor must be in [0, 1], got {self.floor}")
        if self.kind == "onoff":
            if self.period_s <= 0:
                raise ExperimentError("onoff arrivals need a positive period_s")
            if not 0 < self.on_s <= self.period_s:
                raise ExperimentError("onoff arrivals need 0 < on_s <= period_s")
        if self.kind == "diurnal" and self.period_s <= 0:
            raise ExperimentError("diurnal arrivals need a positive period_s")
        if self.kind == "flash" and (self.start_s < 0 or self.ramp_s < 0):
            raise ExperimentError("flash arrivals need non-negative start_s and ramp_s")

    def modulator(self) -> Optional[Callable[[float], float]]:
        """The multiplier function, or None for a steady process."""
        self.validate()
        if self.kind == "steady":
            return None
        if self.kind == "onoff":
            period, on, phase, floor = self.period_s, self.on_s, self.phase_s, self.floor

            def onoff(now: float) -> float:
                return 1.0 if ((now + phase) % period) < on else floor

            return onoff
        if self.kind == "flash":
            start, ramp, floor = self.start_s, self.ramp_s, self.floor

            def flash(now: float) -> float:
                if now < start:
                    return floor
                if ramp <= 0 or now >= start + ramp:
                    return 1.0
                return floor + (1.0 - floor) * (now - start) / ramp

            return flash
        period, phase, floor = self.period_s, self.phase_s, self.floor

        def diurnal(now: float) -> float:
            cycle = ((now + phase) % period) / period
            return floor + (1.0 - floor) * 0.5 * (1.0 - math.cos(2.0 * math.pi * cycle))

        return diurnal

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArrivalSpec":
        return cls(**data)


# ---------------------------------------------------------------------------
# Population groups
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupSpec:
    """One homogeneous group of clients in a scenario.

    ``rate_rps``/``window`` default per class (the paper's §7.1 parameters).
    ``behind_bottleneck`` places the group behind the shared cable in
    ``bottleneck`` topologies; ``extra_delay_s`` adds one-way host delay in
    ``lan`` topologies (the Figure 7 RTT knob).
    """

    count: int
    client_class: str = "good"
    bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH
    rate_rps: Optional[float] = None
    window: Optional[int] = None
    category: Optional[str] = None
    extra_delay_s: float = 0.0
    behind_bottleneck: bool = False
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: Per-group retry discipline; overrides the scenario-level
    #: :attr:`ScenarioSpec.retry_policy` when set.
    retry_policy: Optional[RetryPolicy] = None

    def validate(self) -> None:
        if self.count < 0:
            raise ExperimentError(f"group count must be non-negative, got {self.count}")
        if self.client_class not in ("good", "bad"):
            raise ExperimentError(f"unknown client class {self.client_class!r}")
        if self.bandwidth_bps <= 0:
            raise ExperimentError("group bandwidth_bps must be positive")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ExperimentError("group rate_rps must be positive when given")
        if self.window is not None and self.window < 1:
            raise ExperimentError("group window must be at least 1 when given")
        if self.extra_delay_s < 0:
            raise ExperimentError("group extra_delay_s must be non-negative")
        self.arrival.validate()
        if self.retry_policy is not None:
            try:
                self.retry_policy.validate()
            except ClientError as error:
                raise ExperimentError(str(error)) from None

    def population_spec(
        self, default_retry_policy: Optional[RetryPolicy] = None
    ) -> PopulationSpec:
        """The runtime population entry this group expands to."""
        policy = self.retry_policy if self.retry_policy is not None else default_retry_policy
        return PopulationSpec(
            count=self.count,
            client_class=self.client_class,
            rate_rps=self.rate_rps,
            window=self.window,
            category=self.category,
            rate_modulator=self.arrival.modulator(),
            retry_policy=policy,
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GroupSpec":
        payload = dict(data)
        arrival = payload.pop("arrival", None)
        if isinstance(arrival, dict):
            payload["arrival"] = ArrivalSpec.from_dict(arrival)
        elif isinstance(arrival, ArrivalSpec):
            payload["arrival"] = arrival
        retry_policy = payload.get("retry_policy")
        if isinstance(retry_policy, dict):
            payload["retry_policy"] = RetryPolicy.from_dict(retry_policy)
        return cls(**payload)


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """Which of the paper's topology shapes to build, and its link parameters.

    * ``lan`` (§7.2–§7.5): every client and the thinner on one switch;
    * ``bottleneck`` (§7.6): groups flagged ``behind_bottleneck`` reach the
      core through a shared cable of ``bottleneck_bandwidth_bps``;
    * ``dumbbell`` (§7.7): all clients plus a victim host ``H`` behind the
      shared cable, the thinner and a web server ``S`` on the far side;
    * ``fat-tree`` / ``leaf-spine``: hierarchical datacenter fabrics hosting
      the §4.3 thinner fleet — clients and shards spread round-robin across
      edge switches, ECMP hashed path selection at every fan-out point,
      ``oversubscription`` thinning the core tier, and
      ``cross_traffic_pairs`` bystander flows occupying core links.
    """

    kind: str = "lan"
    lan_delay_s: float = DEFAULT_LAN_DELAY
    thinner_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH
    bottleneck_bandwidth_bps: float = 0.0
    bottleneck_delay_s: float = DEFAULT_LAN_DELAY
    web_server_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH
    #: Fat-tree arity (k pods, (k/2)^2 cores); fabric kinds only.
    fabric_k: int = 4
    #: Leaf and spine switch counts; ``leaf-spine`` only.
    leaves: int = 4
    spines: int = 2
    #: Core-tier capacity divisor: 1.0 is nonblocking for the aggregate
    #: client upload bandwidth, above 1.0 the core genuinely contends.
    oversubscription: float = 1.0
    #: One-way delay of each switch-to-switch fabric cable.
    fabric_delay_s: float = DEFAULT_LAN_DELAY
    #: Unbounded bystander flows crossing the fabric (endpoint pairs).
    cross_traffic_pairs: int = 0
    #: Access bandwidth of each cross-traffic endpoint (0 = the mean client
    #: access bandwidth).
    cross_traffic_bandwidth_bps: float = 0.0

    def validate(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ExperimentError(
                f"unknown topology kind {self.kind!r}; expected one of {TOPOLOGY_KINDS}"
            )
        if self.lan_delay_s < 0 or self.bottleneck_delay_s < 0 or self.fabric_delay_s < 0:
            raise ExperimentError("topology delays must be non-negative")
        if self.thinner_bandwidth_bps <= 0 or self.web_server_bandwidth_bps <= 0:
            raise ExperimentError("topology bandwidths must be positive")
        if self.kind in ("bottleneck", "dumbbell") and self.bottleneck_bandwidth_bps <= 0:
            raise ExperimentError(
                f"{self.kind!r} topologies need a positive bottleneck_bandwidth_bps"
            )
        if self.kind == "fat-tree" and (self.fabric_k < 2 or self.fabric_k % 2 != 0):
            raise ExperimentError(
                f"fat-tree topologies need an even fabric_k >= 2, got {self.fabric_k}"
            )
        if self.kind == "leaf-spine" and (self.leaves < 1 or self.spines < 1):
            raise ExperimentError(
                "leaf-spine topologies need at least one leaf and one spine"
            )
        if self.kind in FABRIC_KINDS:
            if self.oversubscription <= 0:
                raise ExperimentError(
                    f"oversubscription must be positive, got {self.oversubscription}"
                )
            if self.cross_traffic_pairs < 0:
                raise ExperimentError(
                    f"cross_traffic_pairs must be non-negative, got {self.cross_traffic_pairs}"
                )
            if self.cross_traffic_bandwidth_bps < 0:
                raise ExperimentError("cross_traffic_bandwidth_bps must be non-negative")
        elif self.cross_traffic_pairs:
            raise ExperimentError(
                "cross_traffic_pairs needs a fabric topology (fat-tree or leaf-spine)"
            )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TopologySpec":
        return cls(**data)


#: The fabric-only ``TopologySpec`` fields, stripped from serialisations at
#: their default values so legacy (star/bottleneck/dumbbell) spec JSON stays
#: byte-identical to releases that predate fabrics.
_FABRIC_FIELDS = (
    "fabric_k",
    "leaves",
    "spines",
    "oversubscription",
    "fabric_delay_s",
    "cross_traffic_pairs",
    "cross_traffic_bandwidth_bps",
)

_TOPOLOGY_DEFAULTS = TopologySpec()


def _topology_dict(topology: TopologySpec) -> Dict[str, Any]:
    payload = asdict(topology)
    for name in _FABRIC_FIELDS:
        if payload.get(name) == getattr(_TOPOLOGY_DEFAULTS, name):
            payload.pop(name, None)
    return payload


# ---------------------------------------------------------------------------
# The scenario itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, runnable description of one simulation run.

    ``config_overrides`` holds extra :class:`DeploymentConfig` keyword
    arguments as a sorted tuple of (name, value) pairs, which keeps the spec
    hashable; :meth:`from_dict` accepts either that form or a plain mapping.
    """

    name: str = "scenario"
    topology: TopologySpec = field(default_factory=TopologySpec)
    groups: Tuple[GroupSpec, ...] = ()
    capacity_rps: float = 100.0
    #: Admission policy as a string (legacy names, any registered defense,
    #: or the ``"filter>admission"`` pipeline shorthand).  Ignored when
    #: :attr:`defense_spec` is set.
    defense: str = "speakup"
    #: Parameterised admission policy; overrides :attr:`defense` when set.
    #: Sweepable down to individual factory kwargs — a grid path like
    #: ``"defense_spec.check_interval"`` replaces one kwarg of the spec.
    defense_spec: Optional[DefenseSpec] = None
    duration: float = 60.0
    seed: int = 0
    encouragement_delay: float = 0.0
    #: Thinner front-end shards (§4.3 scale-out); above 1 a ``lan`` topology
    #: becomes a :func:`~repro.simnet.topology.build_fleet` star-of-stars
    #: with ``topology.thinner_bandwidth_bps`` split evenly across shards.
    thinner_shards: int = 1
    #: Client→shard dispatch: "hash", "least-loaded", or "random".
    shard_policy: str = "hash"
    #: Full dispatch-strategy configuration (see
    #: :class:`~repro.core.routing.RouterSpec`): any registered strategy —
    #: the legacy three plus ``power-of-two``, ``weighted-sink``, and
    #: ``sticky-spill`` — with its probe signal.  Overrides
    #: :attr:`shard_policy` when set; ``None`` keeps the legacy string path
    #: byte-identical.  Sweepable (``"router_spec.probe_window_s"``).
    router_spec: Optional[RouterSpec] = None
    #: Server-slot sharing across shards: "partitioned" or "pooled".
    admission_mode: str = "partitioned"
    #: Scheduled shard kill/heal events (§4.3 failover); ``None`` — or an
    #: empty :class:`~repro.faults.spec.FaultPlan` — runs fault-free and
    #: byte-identical to a spec without the field.  Sweepable down to plan
    #: fields (``"fault_plan.repin_ttl_s"``) and individual events
    #: (``"fault_plan.events.0.at_s"``).
    fault_plan: Optional[FaultPlan] = None
    #: Default retry discipline for every group (per-group ``retry_policy``
    #: overrides win).  ``None`` keeps clients fire-and-forget, bit for bit.
    #: Sweepable down to policy fields (``"retry_policy.budget"``).
    retry_policy: Optional[RetryPolicy] = None
    #: Health-driven shard ejection (see
    #: :class:`~repro.core.fleet.HealthProber`); needs ``thinner_shards > 1``.
    #: ``None`` builds no prober and stays byte-identical to a spec without
    #: the field.  Sweepable (``"health_probe.eject_fraction"``).
    health_probe: Optional[HealthProbeSpec] = None
    #: How the run measures itself (see :mod:`repro.telemetry`).  ``None``
    #: keeps the historical full collector byte for byte; ``"rollup"`` mode
    #: bounds the measurement footprint to O(buckets + reservoir) — the
    #: regime for >=500k-client runs.  Sweepable (``"telemetry.reservoir"``).
    telemetry: Optional[TelemetrySpec] = None
    config_overrides: Tuple[Tuple[str, Any], ...] = ()

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        self.topology.validate()
        for group in self.groups:
            group.validate()
        if self.capacity_rps <= 0:
            raise ExperimentError("capacity_rps must be positive")
        if self.duration <= 0:
            raise ExperimentError("duration must be positive")
        try:
            if self.defense_spec is not None:
                normalise_defense(self.defense_spec).validate()
            else:
                normalise_defense(self.defense)
        except DefenseError as error:
            raise ExperimentError(str(error)) from None
        if self.encouragement_delay < 0:
            raise ExperimentError("encouragement_delay must be non-negative")
        if self.thinner_shards < 1:
            raise ExperimentError("thinner_shards must be at least 1")
        if self.shard_policy not in SHARD_POLICIES:
            raise ExperimentError(
                f"unknown shard_policy {self.shard_policy!r}; "
                f"expected one of {SHARD_POLICIES}"
            )
        if self.admission_mode not in ADMISSION_MODES:
            raise ExperimentError(
                f"unknown admission_mode {self.admission_mode!r}; "
                f"expected one of {ADMISSION_MODES}"
            )
        if self.router_spec is not None:
            try:
                self.router_spec.validate()
            except ThinnerError as error:
                raise ExperimentError(str(error)) from None
        if self.thinner_shards > 1 and self.topology.kind not in ("lan",) + FABRIC_KINDS:
            raise ExperimentError(
                "thinner fleets (thinner_shards > 1) need a 'lan' or fabric topology"
            )
        if self.fault_plan is not None:
            try:
                self.fault_plan.validate(self.thinner_shards)
            except FaultError as error:
                raise ExperimentError(str(error)) from None
            if self.fault_plan.events and self.thinner_shards < 2:
                raise ExperimentError(
                    "a fault_plan with events needs thinner_shards > 1 "
                    "(a single-thinner deployment has nothing to fail over to)"
                )
        if self.retry_policy is not None:
            try:
                self.retry_policy.validate()
            except ClientError as error:
                raise ExperimentError(str(error)) from None
        if self.health_probe is not None:
            try:
                self.health_probe.validate()
            except ThinnerError as error:
                raise ExperimentError(str(error)) from None
            if self.thinner_shards < 2:
                raise ExperimentError(
                    "health_probe needs thinner_shards > 1 (ejection compares "
                    "each shard against the fleet median)"
                )
        if self.telemetry is not None:
            self.telemetry.validate()
        if self.total_clients() == 0 and self.topology.kind != "dumbbell":
            raise ExperimentError("scenario needs at least one client")
        if self.topology.kind != "lan" and any(g.extra_delay_s for g in self.groups):
            raise ExperimentError("extra_delay_s is only supported on lan topologies")
        if self.topology.kind != "bottleneck" and any(
            g.behind_bottleneck for g in self.groups
        ):
            raise ExperimentError(
                "behind_bottleneck groups need a 'bottleneck' topology"
            )
        if self.topology.kind == "bottleneck" and not any(
            g.behind_bottleneck and g.count for g in self.groups
        ):
            raise ExperimentError(
                "'bottleneck' topologies need at least one behind_bottleneck client"
            )

    # -- derived views ----------------------------------------------------------

    def total_clients(self) -> int:
        return sum(group.count for group in self.groups)

    def clients_of_class(self, client_class: str) -> int:
        return sum(g.count for g in self.groups if g.client_class == client_class)

    # -- functional updates -------------------------------------------------------

    def with_value(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with the (possibly nested) field at ``path`` replaced.

        Paths use dots; numeric components index into ``groups``, e.g.
        ``"capacity_rps"``, ``"groups.1.window"``, or
        ``"topology.bottleneck_bandwidth_bps"``.
        """
        return _replace_path(self, path.split("."), value, path)

    def with_values(self, assignments: Dict[str, Any]) -> "ScenarioSpec":
        """A copy with several :meth:`with_value` updates applied in order."""
        spec = self
        for path, value in assignments.items():
            spec = spec.with_value(path, value)
        return spec

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """The same scenario under a different root seed."""
        return replace(self, seed=seed)

    # -- building and running ------------------------------------------------------

    def deployment_config(self) -> DeploymentConfig:
        return DeploymentConfig(
            server_capacity_rps=self.capacity_rps,
            defense=self.defense_spec if self.defense_spec is not None else self.defense,
            seed=self.seed,
            encouragement_delay=self.encouragement_delay,
            thinner_shards=self.thinner_shards,
            shard_policy=self.shard_policy,
            router_spec=self.router_spec,
            admission_mode=self.admission_mode,
            fault_plan=self.fault_plan,
            health_probe=self.health_probe,
            telemetry=self.telemetry,
            **dict(self.config_overrides),
        )

    def build(self) -> Deployment:
        """Materialise the scenario: topology, deployment, and population."""
        self.validate()
        config = self.deployment_config()

        if self.topology.kind == "lan":
            ordered = self.groups
            bandwidths: List[float] = []
            delays: List[float] = []
            for group in ordered:
                bandwidths.extend([group.bandwidth_bps] * group.count)
                delays.extend([group.extra_delay_s] * group.count)
            if self.thinner_shards > 1:
                topology, hosts, thinner_host = build_fleet(
                    bandwidths,
                    thinner_shards=self.thinner_shards,
                    client_delays_s=delays if any(delays) else None,
                    fleet_bandwidth_bps=self.topology.thinner_bandwidth_bps,
                    lan_delay_s=self.topology.lan_delay_s,
                    name=self.name,
                )
            else:
                topology, hosts, thinner_host = build_lan(
                    bandwidths,
                    client_delays_s=delays if any(delays) else None,
                    thinner_bandwidth_bps=self.topology.thinner_bandwidth_bps,
                    lan_delay_s=self.topology.lan_delay_s,
                    name=self.name,
                )
        elif self.topology.kind == "bottleneck":
            behind = tuple(g for g in self.groups if g.behind_bottleneck)
            direct = tuple(g for g in self.groups if not g.behind_bottleneck)
            ordered = behind + direct
            behind_bw = [g.bandwidth_bps for g in behind for _ in range(g.count)]
            direct_bw = [g.bandwidth_bps for g in direct for _ in range(g.count)]
            topology, behind_hosts, direct_hosts, thinner_host, _link = build_bottleneck(
                bottlenecked_bandwidths_bps=behind_bw,
                direct_bandwidths_bps=direct_bw,
                bottleneck_bandwidth_bps=self.topology.bottleneck_bandwidth_bps,
                bottleneck_delay_s=self.topology.bottleneck_delay_s,
                thinner_bandwidth_bps=self.topology.thinner_bandwidth_bps,
                lan_delay_s=self.topology.lan_delay_s,
                name=self.name,
            )
            hosts = list(behind_hosts) + list(direct_hosts)
        elif self.topology.kind in FABRIC_KINDS:
            ordered = self.groups
            bandwidths = [g.bandwidth_bps for g in ordered for _ in range(g.count)]
            fabric_kwargs = dict(
                thinner_shards=self.thinner_shards,
                oversubscription=self.topology.oversubscription,
                fleet_bandwidth_bps=self.topology.thinner_bandwidth_bps,
                lan_delay_s=self.topology.lan_delay_s,
                fabric_delay_s=self.topology.fabric_delay_s,
                cross_traffic_pairs=self.topology.cross_traffic_pairs,
                cross_traffic_bandwidth_bps=(
                    self.topology.cross_traffic_bandwidth_bps or None
                ),
                ecmp_seed=self.seed,
                name=self.name,
            )
            if self.topology.kind == "fat-tree":
                topology, hosts, thinner_host = build_fat_tree(
                    bandwidths, k=self.topology.fabric_k, **fabric_kwargs
                )
            else:
                topology, hosts, thinner_host = build_leaf_spine(
                    bandwidths,
                    leaves=self.topology.leaves,
                    spines=self.topology.spines,
                    **fabric_kwargs,
                )
        else:  # dumbbell
            ordered = self.groups
            bandwidths = [g.bandwidth_bps for g in ordered for _ in range(g.count)]
            topology, hosts, _victim, thinner_host, _web, _link = build_dumbbell(
                left_bandwidths_bps=bandwidths,
                bottleneck_bandwidth_bps=self.topology.bottleneck_bandwidth_bps,
                bottleneck_delay_s=self.topology.bottleneck_delay_s,
                thinner_bandwidth_bps=self.topology.thinner_bandwidth_bps,
                web_server_bandwidth_bps=self.topology.web_server_bandwidth_bps,
                lan_delay_s=self.topology.lan_delay_s,
                name=self.name,
            )

        deployment = Deployment(topology, thinner_host, config)
        for cross_src, cross_dst in getattr(topology, "cross_pairs", ()):
            # Cross-traffic generators ride as auxiliaries: their unbounded
            # flows occupy fabric links but never enter client metrics.
            CrossTrafficDriver(deployment, cross_src, cross_dst)
        build_population(
            deployment,
            hosts,
            [group.population_spec(self.retry_policy) for group in ordered],
        )
        return deployment

    def run(self) -> RunResult:
        """Build the scenario, run it for ``duration`` seconds, collect metrics."""
        deployment = self.build()
        deployment.run(self.duration)
        return deployment.results()

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dictionary that :meth:`from_dict` rebuilds exactly.

        The ``defense_spec`` key is emitted only when set, which keeps the
        serialised schema (and every stored sweep JSON) byte-identical to
        earlier releases for string-defense scenarios.
        """
        payload = {
            "name": self.name,
            "topology": _topology_dict(self.topology),
            "groups": [_group_dict(group) for group in self.groups],
            "capacity_rps": self.capacity_rps,
            "defense": self.defense,
            "duration": self.duration,
            "seed": self.seed,
            "encouragement_delay": self.encouragement_delay,
            "thinner_shards": self.thinner_shards,
            "shard_policy": self.shard_policy,
            "admission_mode": self.admission_mode,
            "config_overrides": {key: value for key, value in self.config_overrides},
        }
        if self.defense_spec is not None:
            payload["defense_spec"] = self.defense_spec.to_dict()
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.to_dict()
        if self.retry_policy is not None:
            payload["retry_policy"] = self.retry_policy.to_dict()
        if self.health_probe is not None:
            payload["health_probe"] = self.health_probe.to_dict()
        if self.router_spec is not None:
            payload["router_spec"] = self.router_spec.to_dict()
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_dict()
        return payload

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        payload = dict(data)
        topology = payload.pop("topology", None)
        if isinstance(topology, dict):
            payload["topology"] = TopologySpec.from_dict(topology)
        elif isinstance(topology, TopologySpec):
            payload["topology"] = topology
        groups = payload.pop("groups", ())
        payload["groups"] = tuple(
            group if isinstance(group, GroupSpec) else GroupSpec.from_dict(group)
            for group in groups
        )
        defense_spec = payload.get("defense_spec")
        if isinstance(defense_spec, dict):
            payload["defense_spec"] = DefenseSpec.from_dict(defense_spec)
        fault_plan = payload.get("fault_plan")
        if isinstance(fault_plan, dict):
            payload["fault_plan"] = FaultPlan.from_dict(fault_plan)
        retry_policy = payload.get("retry_policy")
        if isinstance(retry_policy, dict):
            payload["retry_policy"] = RetryPolicy.from_dict(retry_policy)
        health_probe = payload.get("health_probe")
        if isinstance(health_probe, dict):
            payload["health_probe"] = HealthProbeSpec.from_dict(health_probe)
        router_spec = payload.get("router_spec")
        if isinstance(router_spec, dict):
            payload["router_spec"] = RouterSpec.from_dict(router_spec)
        telemetry = payload.get("telemetry")
        if isinstance(telemetry, dict):
            payload["telemetry"] = TelemetrySpec.from_dict(telemetry)
        payload["config_overrides"] = freeze_overrides(
            payload.get("config_overrides", ())
        )
        return cls(**payload)

    @classmethod
    def from_json(cls, document: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(document))


def _group_dict(group: GroupSpec) -> Dict[str, Any]:
    """``asdict`` with the ``retry_policy`` key stripped when unset.

    Keeps policy-free group serialisations byte-identical to releases that
    predate client retry policies.
    """
    payload = asdict(group)
    if payload.get("retry_policy") is None:
        payload.pop("retry_policy", None)
    return payload


def freeze_overrides(overrides: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalise config overrides (mapping or pair sequence) to a sorted tuple."""
    if overrides is None:
        return ()
    if isinstance(overrides, dict):
        pairs = [tuple(pair) for pair in overrides.items()]
    else:
        if isinstance(overrides, str) or not hasattr(overrides, "__iter__"):
            raise ExperimentError(
                f"config_overrides must be a mapping or (name, value) pairs, "
                f"got {overrides!r}"
            )
        pairs = []
        for entry in overrides:
            if isinstance(entry, str) or not hasattr(entry, "__iter__"):
                raise ExperimentError(
                    f"config_overrides entries must be (name, value) pairs, "
                    f"got {entry!r}"
                )
            pair = tuple(entry)
            if len(pair) != 2:
                raise ExperimentError(
                    f"config_overrides entries must be (name, value) pairs, "
                    f"got {entry!r}"
                )
            pairs.append(pair)
    return tuple(sorted((str(key), value) for key, value in pairs))


# ---------------------------------------------------------------------------
# Dotted-path replacement over nested frozen dataclasses
# ---------------------------------------------------------------------------


def _replace_path(obj: Any, parts: Sequence[str], value: Any, full_path: str) -> Any:
    head, rest = parts[0], parts[1:]
    if isinstance(obj, DefenseSpec):
        # Path components below ``defense_spec`` address the defense's
        # factory kwargs (``defense_spec.check_interval``), so sweeps can
        # grid over defense parameters; ``defense_spec.name`` swaps the
        # defense itself (clearing the kwargs, which belong to the old one).
        if rest:
            raise ExperimentError(
                f"defense spec paths go at most one level deep in {full_path!r}"
            )
        if head == "name":
            return DefenseSpec(name=value)
        return obj.with_kwarg(head, value)
    if isinstance(obj, tuple):
        try:
            index = int(head)
        except ValueError:
            raise ExperimentError(
                f"expected a group index at {head!r} in path {full_path!r}"
            ) from None
        if not 0 <= index < len(obj):
            raise ExperimentError(
                f"index {index} out of range in path {full_path!r} "
                f"(have {len(obj)} entries)"
            )
        items = list(obj)
        items[index] = value if not rest else _replace_path(
            items[index], rest, value, full_path
        )
        return tuple(items)
    if obj is None:
        raise ExperimentError(
            f"cannot descend into unset field at {head!r} in path {full_path!r} "
            f"(set the parent field first, e.g. a defense_spec)"
        )
    known = {f.name for f in fields(obj)}
    if head not in known:
        raise ExperimentError(
            f"unknown field {head!r} in path {full_path!r} on {type(obj).__name__} "
            f"(known: {', '.join(sorted(known))})"
        )
    if not rest:
        return replace(obj, **{head: value})
    return replace(obj, **{head: _replace_path(getattr(obj, head), rest, value, full_path)})
