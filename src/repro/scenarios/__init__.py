"""Declarative scenarios and the parallel sweep runner.

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and friends: a frozen,
  JSON-serialisable description of topology, population, defense, and run
  parameters, with ``build()``/``run()`` to execute it;
* :mod:`repro.scenarios.registry` — named factories for the paper's setups
  and new workloads (flash crowds, pulsed attackers, diurnal demand,
  heterogeneous uplink tiers);
* :mod:`repro.scenarios.runner` — :class:`Sweep` grids, the serial or
  multiprocess :class:`SweepRunner`, and the JSON results store.
"""

from repro.scenarios.spec import (
    ARRIVAL_KINDS,
    TOPOLOGY_KINDS,
    ArrivalSpec,
    GroupSpec,
    ScenarioSpec,
    TopologySpec,
    freeze_overrides,
)
from repro.scenarios.registry import (
    build_scenario,
    register,
    scenario_description,
    scenario_names,
)
from repro.scenarios.runner import (
    Sweep,
    SweepPoint,
    SweepRecord,
    SweepRunner,
    default_jobs,
    load_results,
    run_spec,
    save_results,
    validate_record,
    validate_results_document,
)

__all__ = [
    "ARRIVAL_KINDS",
    "TOPOLOGY_KINDS",
    "ArrivalSpec",
    "GroupSpec",
    "ScenarioSpec",
    "TopologySpec",
    "freeze_overrides",
    "build_scenario",
    "register",
    "scenario_description",
    "scenario_names",
    "Sweep",
    "SweepPoint",
    "SweepRecord",
    "SweepRunner",
    "default_jobs",
    "load_results",
    "run_spec",
    "save_results",
    "validate_record",
    "validate_results_document",
]
