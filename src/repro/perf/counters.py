"""Hot-path instrumentation counters for the fluid simulator.

:class:`SimCounters` is a leaf data type (stdlib only, no repro imports) so
the bottom :mod:`repro.simnet` layer can depend on it without creating a
cycle.  The network increments these counters on its rate-reallocation path;
the bench harness (:mod:`repro.perf.bench`) snapshots them per run and writes
them next to wall-clock throughput in ``BENCH_speakup.json``, which is what
turns "the hot path got faster" from a claim into a tracked trajectory:

* ``reallocations``    — how many flow-set changes requested a rate update;
* ``flushes``          — how many batched recomputations actually ran (with
  the dirty-set scheme many reallocations collapse into one flush);
* ``waterfill_calls``  — progressive-filling invocations;
* ``flows_touched``    — total flows handed to waterfill (the per-recompute
  component size is ``flows_touched / waterfill_calls``);
* ``cache_hits`` / ``cache_misses`` — component-signature rate-cache traffic.

The speak-up admission path adds three more (incremented by the thinner
layer, which shares the network's counter object):

* ``auctions_held``        — winner selections run by the thinner (virtual
  auctions, quantum grants, retry lotteries);
* ``contenders_scanned``   — contender entries examined across those
  selections.  ``contenders_scanned / auctions_held`` is the
  machine-independent cost of one admission decision: O(n) with a linear
  scan, O(log n) with the kinetic bid index;
* ``bid_index_refreshes``  — bid-index entries re-keyed because the fluid
  allocator changed a payment flow's rate (the push half of the kinetic
  scheme; zero while rates are quiescent).

The composable admission-policy layer adds three more:

* ``filter_screened`` / ``filter_rejected`` — pipeline front-stage work:
  requests examined by screening stages and how many they dropped before
  the admission thinner ever saw them (per-stage attribution lives in
  :class:`~repro.metrics.collector.StageMetrics`);
* ``engagement_switches`` — adaptive-defense transitions (engage +
  disengage events) across the run; zero for static policies.

The measurement plane adds two gauges (machine-independent, surfaced in
``bench --check`` output but not gated):

* ``peak_live_events``  — high-water mark of live (non-cancelled) events
  in the engine queue, sampled at every rate flush; the simulator's own
  memory pressure, independent of wall clock;
* ``records_emitted``   — telemetry samples routed into the rollup
  collector (zero in full mode, where per-request lists are kept
  instead).
"""

from __future__ import annotations

from typing import Dict


class SimCounters:
    """Cheap mutable counters incremented on the simulator's hot path."""

    __slots__ = (
        "reallocations",
        "flushes",
        "waterfill_calls",
        "flows_touched",
        "cache_hits",
        "cache_misses",
        "auctions_held",
        "contenders_scanned",
        "bid_index_refreshes",
        "filter_screened",
        "filter_rejected",
        "engagement_switches",
        "peak_live_events",
        "records_emitted",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.reallocations = 0
        self.flushes = 0
        self.waterfill_calls = 0
        self.flows_touched = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.auctions_held = 0
        self.contenders_scanned = 0
        self.bid_index_refreshes = 0
        self.filter_screened = 0
        self.filter_rejected = 0
        self.engagement_switches = 0
        self.peak_live_events = 0
        self.records_emitted = 0

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON-ready)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={getattr(self, name)}" for name in self.__slots__)
        return f"SimCounters({fields})"
