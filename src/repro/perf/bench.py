"""The pinned performance benchmark behind ``speakup-repro bench``.

The harness runs a fixed set of registry scenarios at nine scales —
``lan-small`` (the paper's own scale), ``tiers-medium`` (hundreds of
heterogeneous clients), ``stress-mega`` (thousands of clients, bound on the
fluid allocator), ``thinner-mega`` (≥50k clients, bound on the
admission/auction path), ``fleet-mega`` (≥17k clients spread over an
8-shard thinner fleet, §4.3 scale-out), ``fleet-failover`` (a mid-run
shard kill/heal pulse through the fault-injection layer),
``fleet-brownout`` (a gray-failure lossy pulse with budgeted client
retries and the health prober ejecting the faulted shard),
``adaptive-pulse`` (the attack-triggered engagement controller switching
speak-up on and off around a pulse), ``soa-mega`` (≥200k clients
driving one huge shared component through the struct-of-arrays vectorized
allocator path), and ``rollup-mega`` (≥500k clients recording through the
streaming telemetry plane, whose collector footprint must stay
O(buckets + reservoir)) — and measures engine throughput (events/second)
plus the network's hot-path counters
(:class:`repro.perf.counters.SimCounters`) and the process peak RSS.

Results accumulate in ``BENCH_speakup.json`` at the repository root: every
``speakup-repro bench`` appends one dated entry, so the file records the
performance trajectory across PRs instead of a single unverifiable claim.
``--check`` mode compares a fresh run against the last committed entry of the
same mode and fails on regression; CI runs it with ``--quick``.

Wall-clock numbers are machine-dependent, so cross-entry comparisons are only
meaningful per machine; the regression check is deliberately loose (30% by
default) to absorb CI-runner noise while still catching algorithmic cliffs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.scenarios.registry import build_scenario

#: Name of the tracked results file at the repository root.
BENCH_FILENAME = "BENCH_speakup.json"

#: Schema version of the results file.
BENCH_VERSION = 1

#: Default regression tolerance for ``--check`` (fraction of events/sec).
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark point: a registry scenario plus factory arguments."""

    name: str
    scenario: str
    args: Dict[str, Any] = field(default_factory=dict)
    #: Reduced arguments for ``--quick`` (CI smoke); same scenario, same shape.
    quick_args: Dict[str, Any] = field(default_factory=dict)

    def overrides(self, quick: bool) -> Dict[str, Any]:
        merged = dict(self.args)
        if quick:
            merged.update(self.quick_args)
        return merged


#: The pinned benchmark suite.  Names, scenarios, and arguments are part of
#: the ``BENCH_speakup.json`` contract: changing them breaks comparability
#: with committed entries, so extend the tuple rather than editing cases.
BENCH_CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        name="lan-small",
        scenario="lan-baseline",
        args=dict(good_clients=25, bad_clients=25, capacity_rps=50.0, duration=10.0),
        quick_args=dict(good_clients=10, bad_clients=10, duration=3.0),
    ),
    BenchCase(
        name="tiers-medium",
        scenario="uplink-tiers",
        args=dict(clients_per_tier=60, capacity_rps=100.0, duration=3.0),
        quick_args=dict(clients_per_tier=20, duration=2.0),
    ),
    BenchCase(
        name="stress-mega",
        scenario="stress-mega",
        args=dict(),
        quick_args=dict(good_clients=400, bad_clients=100, capacity_rps=50.0, duration=0.5),
    ),
    BenchCase(
        name="thinner-mega",
        scenario="thinner-mega",
        args=dict(),
        quick_args=dict(
            good_clients=1500,
            flash_clients=100,
            bad_clients=60,
            capacity_rps=300.0,
            duration=1.5,
        ),
    ),
    BenchCase(
        name="fleet-mega",
        scenario="fleet-mega",
        args=dict(),
        quick_args=dict(
            good_clients=1200,
            bad_clients=120,
            thinner_shards=4,
            capacity_rps=400.0,
            duration=1.0,
        ),
    ),
    BenchCase(
        name="fleet-failover",
        scenario="fleet-failover",
        args=dict(
            good_clients=150,
            bad_clients=150,
            thinner_shards=4,
            capacity_rps=600.0,
            duration=6.0,
            kill_at_s=2.0,
            heal_at_s=4.0,
            repin_ttl_s=0.5,
        ),
        quick_args=dict(
            good_clients=30,
            bad_clients=30,
            capacity_rps=120.0,
            duration=3.0,
            kill_at_s=1.0,
            heal_at_s=2.0,
        ),
    ),
    BenchCase(
        name="fleet-brownout",
        scenario="fleet-brownout",
        args=dict(
            good_clients=150,
            bad_clients=150,
            thinner_shards=4,
            capacity_rps=600.0,
            duration=6.0,
            fault="lossy",
            loss_scope="shard",
            fault_shard=0,
            loss_p=0.6,
            start_at_s=2.0,
            end_at_s=4.0,
            retry="budgeted",
            health_probe=True,
        ),
        quick_args=dict(
            good_clients=30,
            bad_clients=30,
            capacity_rps=120.0,
            duration=3.0,
            start_at_s=1.0,
            end_at_s=2.0,
        ),
    ),
    BenchCase(
        name="adaptive-pulse",
        scenario="adaptive-pulse",
        args=dict(
            good_clients=300,
            bad_clients=150,
            capacity_rps=1200.0,
            duration=12.0,
            check_interval_s=0.5,
        ),
        quick_args=dict(
            good_clients=60,
            bad_clients=30,
            capacity_rps=240.0,
            duration=6.0,
        ),
    ),
    BenchCase(
        name="soa-mega",
        scenario="soa-mega",
        args=dict(),
        quick_args=dict(
            good_clients=19500,
            bad_clients=500,
            duration=0.05,
        ),
    ),
    BenchCase(
        name="rollup-mega",
        scenario="rollup-mega",
        args=dict(),
        quick_args=dict(
            good_clients=19000,
            bad_clients=1000,
            capacity_rps=400.0,
            duration=0.05,
        ),
    ),
    BenchCase(
        name="fabric-mega",
        scenario="fabric-mega",
        # The factory's 17k-client default couples most of the population
        # into single fabric-wide waterfill components and takes minutes;
        # the pinned point keeps the leaf-spine shape and the contended
        # core while landing in the same wall-clock band as fleet-mega.
        args=dict(
            good_clients=2500,
            bad_clients=250,
            capacity_rps=900.0,
            duration=0.5,
        ),
        quick_args=dict(
            good_clients=1600,
            bad_clients=160,
            thinner_shards=4,
            leaves=4,
            spines=2,
            capacity_rps=600.0,
            duration=0.2,
        ),
    ),
)


@dataclass
class BenchMeasurement:
    """What one benchmark case measured."""

    case: str
    scenario: str
    quick: bool
    build_s: float
    wall_s: float
    sim_s: float
    events: int
    events_per_s: float
    clients: int
    counters: Dict[str, int]
    #: Cheap run fingerprints so perf work that silently changes *results*
    #: (not just speed) shows up in the bench file too.
    requests_served: int
    good_allocation: float
    #: Process peak RSS after the run, in kilobytes (0 where the
    #: ``resource`` module is unavailable).  Cumulative across the suite —
    #: the high-water mark never goes down — so only the *growth* a case
    #: causes is attributable to it.  Informational, never gated.
    peak_rss_kb: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "scenario": self.scenario,
            "quick": self.quick,
            "build_s": round(self.build_s, 4),
            "wall_s": round(self.wall_s, 4),
            "sim_s": self.sim_s,
            "events": self.events,
            "events_per_s": round(self.events_per_s, 1),
            "clients": self.clients,
            "counters": dict(self.counters),
            "requests_served": self.requests_served,
            "good_allocation": self.good_allocation,
            "peak_rss_kb": self.peak_rss_kb,
        }


def peak_rss_kb() -> int:
    """The process's peak RSS in kilobytes, 0 where unsupported."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover
        return int(usage // 1024)
    return int(usage)


def run_case(case: BenchCase, quick: bool = False) -> BenchMeasurement:
    """Build and run one pinned case, measuring the run (not the build)."""
    spec = build_scenario(case.scenario, **case.overrides(quick))
    t_build = time.perf_counter()
    deployment = spec.build()
    build_s = time.perf_counter() - t_build

    t_run = time.perf_counter()
    deployment.run(spec.duration)
    wall_s = time.perf_counter() - t_run

    events = deployment.engine.events_processed
    result = deployment.results()
    return BenchMeasurement(
        case=case.name,
        scenario=case.scenario,
        quick=quick,
        build_s=build_s,
        wall_s=wall_s,
        sim_s=spec.duration,
        events=events,
        events_per_s=events / wall_s if wall_s > 0 else 0.0,
        clients=spec.total_clients(),
        counters=deployment.network.counters.snapshot(),
        requests_served=result.total_served,
        good_allocation=result.good_allocation,
        peak_rss_kb=peak_rss_kb(),
    )


def run_bench(
    quick: bool = False,
    cases: Optional[Sequence[BenchCase]] = None,
    progress=None,
) -> List[BenchMeasurement]:
    """Run the pinned suite; ``progress`` (if given) is called per case name.

    ``cases`` defaults to :data:`BENCH_CASES` at call time (so tests can
    monkeypatch the pinned set).
    """
    if cases is None:
        cases = BENCH_CASES
    measurements = []
    for case in cases:
        if progress is not None:
            progress(case.name)
        measurements.append(run_case(case, quick=quick))
    return measurements


# ---------------------------------------------------------------------------
# The tracked results file
# ---------------------------------------------------------------------------


def make_entry(
    measurements: Sequence[BenchMeasurement],
    label: str = "",
    quick: bool = False,
) -> Dict[str, Any]:
    """One dated ``BENCH_speakup.json`` entry for a suite run."""
    return {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "label": label,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": {m.case: m.to_dict() for m in measurements},
    }


def load_document(path: str) -> Dict[str, Any]:
    """Read the bench file, returning an empty document if it does not exist."""
    if not os.path.exists(path):
        return {"version": BENCH_VERSION, "entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("version")
    if version != BENCH_VERSION:
        raise ExperimentError(
            f"unsupported bench file version {version!r} in {path!r} "
            f"(expected {BENCH_VERSION})"
        )
    document.setdefault("entries", [])
    return document


def save_document(path: str, document: Dict[str, Any]) -> None:
    """Write a bench document to ``path`` in the canonical on-disk format."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def append_entry(path: str, entry: Dict[str, Any]) -> Dict[str, Any]:
    """Append ``entry`` to the bench file at ``path`` (creating it if needed)."""
    document = load_document(path)
    document["entries"].append(entry)
    save_document(path, document)
    return document


def latest_entry(document: Dict[str, Any], mode: str) -> Optional[Dict[str, Any]]:
    """The most recent committed entry of the given mode ("full"/"quick")."""
    for entry in reversed(document.get("entries", [])):
        if entry.get("mode") == mode:
            return entry
    return None


def check_regression(
    measurements: Sequence[BenchMeasurement],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    signals: str = "all",
) -> List[str]:
    """Compare fresh measurements against a committed entry.

    Returns a list of human-readable problems (empty = no regression).
    Three signals per case; cases missing from the baseline are skipped
    (they are new, there is nothing to regress from):

    * **events/sec** — a case regresses when its fresh throughput falls more
      than ``tolerance`` below the committed value.  Wall-clock based, so
      only meaningful when fresh and committed ran on comparable machines.
    * **waterfill work per event** (``flows_touched / events``) — the
      simulator is deterministic per pinned config, so this ratio is
      machine-independent; growth beyond ``tolerance`` means the allocator
      is genuinely touching more flows per event (an algorithmic cliff),
      regardless of how fast the runner is.
    * **admission work per auction** (``contenders_scanned /
      auctions_held``) — equally machine-independent; this is the cost of
      one winner-selection decision, O(log n)-ish with the kinetic bid
      index and O(n) if a change regresses a scan site back to pulling
      every contender's bid.  Skipped when the committed entry predates
      the counters or held no auctions.

    ``signals`` selects which to apply: ``"all"`` (every signal) or
    ``"work"`` (the machine-independent ratios only — what CI uses, since
    committed events/sec numbers come from whatever machine recorded the
    entry and a slower runner would otherwise fail the gate with no real
    regression).
    """
    if not 0.0 < tolerance < 1.0:
        raise ExperimentError(f"tolerance must be in (0, 1), got {tolerance}")
    if signals not in ("all", "work"):
        raise ExperimentError(f"signals must be 'all' or 'work', got {signals!r}")
    problems = []
    committed_cases = baseline.get("cases", {})
    for measurement in measurements:
        committed = committed_cases.get(measurement.case)
        if committed is None:
            continue
        committed_rate = float(committed.get("events_per_s", 0.0))
        if signals == "all" and committed_rate > 0:
            floor = committed_rate * (1.0 - tolerance)
            if measurement.events_per_s < floor:
                problems.append(
                    f"{measurement.case}: {measurement.events_per_s:.0f} events/s is "
                    f"{1.0 - measurement.events_per_s / committed_rate:.0%} below the "
                    f"committed {committed_rate:.0f} events/s "
                    f"(entry {baseline.get('date', '?')}, tolerance {tolerance:.0%})"
                )
        committed_events = float(committed.get("events", 0.0))
        committed_touched = float(
            committed.get("counters", {}).get("flows_touched", 0.0)
        )
        if committed_events > 0 and committed_touched > 0 and measurement.events > 0:
            committed_work = committed_touched / committed_events
            fresh_work = (
                measurement.counters.get("flows_touched", 0) / measurement.events
            )
            ceiling = committed_work * (1.0 + tolerance)
            if fresh_work > ceiling:
                problems.append(
                    f"{measurement.case}: waterfill work grew to {fresh_work:.2f} "
                    f"flows touched per event vs the committed {committed_work:.2f} "
                    f"(machine-independent signal; entry "
                    f"{baseline.get('date', '?')}, tolerance {tolerance:.0%})"
                )
        committed_auctions = float(
            committed.get("counters", {}).get("auctions_held", 0.0)
        )
        committed_scanned = float(
            committed.get("counters", {}).get("contenders_scanned", 0.0)
        )
        fresh_auctions = measurement.counters.get("auctions_held", 0)
        if committed_auctions > 0 and committed_scanned > 0 and fresh_auctions > 0:
            committed_scan = committed_scanned / committed_auctions
            fresh_scan = (
                measurement.counters.get("contenders_scanned", 0) / fresh_auctions
            )
            if fresh_scan > committed_scan * (1.0 + tolerance):
                problems.append(
                    f"{measurement.case}: admission work grew to {fresh_scan:.2f} "
                    f"contenders scanned per auction vs the committed "
                    f"{committed_scan:.2f} (machine-independent signal; entry "
                    f"{baseline.get('date', '?')}, tolerance {tolerance:.0%})"
                )
    return problems


def format_gauges(measurements: Sequence[BenchMeasurement]) -> List[str]:
    """The measurement-plane gauge lines ``bench --check`` prints.

    ``peak_live_events`` and ``records_emitted`` are machine-independent
    (the simulator is deterministic per pinned config); ``peak_rss_kb`` is
    not.  All three are informational — printed, stored, never gated.
    """
    lines = []
    for m in measurements:
        lines.append(
            f"{m.case}: peak_live_events={m.counters.get('peak_live_events', 0)} "
            f"records_emitted={m.counters.get('records_emitted', 0)} "
            f"peak_rss_kb={m.peak_rss_kb}"
        )
    return lines


def format_measurements(measurements: Sequence[BenchMeasurement]) -> List[Tuple]:
    """Table rows for the CLI (events/sec plus the headline counters)."""
    rows = []
    for m in measurements:
        counters = m.counters
        calls = counters.get("waterfill_calls", 0)
        touched = counters.get("flows_touched", 0)
        auctions = counters.get("auctions_held", 0)
        scanned = counters.get("contenders_scanned", 0)
        rows.append(
            (
                m.case,
                m.clients,
                f"{m.sim_s:g}",
                f"{m.wall_s:.2f}",
                m.events,
                f"{m.events_per_s:,.0f}",
                calls,
                f"{touched / calls:.1f}" if calls else "-",
                counters.get("cache_hits", 0),
                f"{scanned / auctions:.1f}" if auctions else "-",
            )
        )
    return rows
