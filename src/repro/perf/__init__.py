"""Performance instrumentation and the tracked benchmark harness.

Two halves:

* :mod:`repro.perf.counters` — :class:`~repro.perf.counters.SimCounters`, the
  cheap hot-path counters the fluid network increments (waterfill calls,
  flows touched per recompute, rate-cache traffic).  A leaf module so
  :mod:`repro.simnet` can import it without layering violations.
* :mod:`repro.perf.bench` — the pinned three-scale benchmark suite behind
  ``speakup-repro bench``, which appends dated entries to
  ``BENCH_speakup.json`` so the repo carries its performance trajectory.

The bench half sits at the *top* of the layering (it imports the scenario
registry, which imports everything), while the counters half sits at the
bottom, so the bench names are re-exported lazily: importing ``repro.perf``
from inside :mod:`repro.simnet` must not drag the whole package in.
"""

from repro.perf.counters import SimCounters

#: Names served lazily from :mod:`repro.perf.bench` (PEP 562).
_BENCH_EXPORTS = frozenset(
    {
        "BENCH_CASES",
        "BENCH_FILENAME",
        "BENCH_VERSION",
        "DEFAULT_TOLERANCE",
        "BenchCase",
        "BenchMeasurement",
        "append_entry",
        "check_regression",
        "format_measurements",
        "latest_entry",
        "load_document",
        "make_entry",
        "run_bench",
        "run_case",
        "save_document",
    }
)

__all__ = ["SimCounters"] + sorted(_BENCH_EXPORTS)


def __getattr__(name: str):
    if name in _BENCH_EXPORTS:
        from repro.perf import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
