"""Payment channels: congestion-controlled streams of dummy bytes.

§3.3/§6: when the server is overloaded the thinner makes the client open a
separate payment channel on which it sends a series of large HTTP POSTs
(1 MByte each in the prototype).  The thinner tracks how many bytes each
contending client has delivered; the auction compares those counters.

Two transport artefacts matter to the evaluation and are modelled here:

* each POST begins in TCP slow start (delegated to
  :class:`repro.simnet.tcp.SlowStartRamp`), and
* between consecutive POSTs the channel is quiescent for two RTTs while the
  browser learns it must keep paying (§3.4).

A channel's numeric state (committed and consumed bytes, plus the id of the
in-flight POST's flow) lives in the network's struct-of-arrays store — see
:class:`repro.simnet.soa.SoAStore` — so the kinetic bid index can recompute
a whole batch of dirty bid trajectories in one vectorized pass.  The
``_committed_bytes``/``_consumed_bytes`` attributes remain available as
properties over the channel's row.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.constants import DEFAULT_POST_BYTES, POST_QUIESCENT_RTTS
from repro.errors import PaymentError
from repro.simnet.engine import Event
from repro.simnet.flow import Flow
from repro.simnet.host import Host
from repro.simnet.network import FluidNetwork
from repro.simnet.tcp import SlowStartRamp


class PaymentChannelState(enum.Enum):
    """Lifecycle of a payment channel."""

    CREATED = "created"
    PAYING = "paying"
    CLOSED = "closed"


class PaymentChannel:
    """A stream of dummy-byte POSTs from one client for one request.

    The channel exposes two views of its payment:

    * :meth:`total_paid` — everything ever delivered (used for byte-cost
      metrics, Figure 5);
    * :meth:`balance` — delivered minus consumed (used by the quantum
      auction of §5, which zeroes a request's balance whenever it wins a
      quantum).

    For the flat auction of §3.3 the two coincide because nothing is ever
    consumed before the channel is closed.
    """

    __slots__ = (
        "network",
        "engine",
        "client_host",
        "thinner_host",
        "request_id",
        "post_bytes",
        "slow_start",
        "quiescent_rtts",
        "on_post_complete",
        "state",
        "posts_completed",
        "opened_at",
        "closed_at",
        "on_bid_change",
        "_flow",
        "_gap_event",
        "_rtt",
        "_cid",
        "_soa",
    )

    def __init__(
        self,
        network: FluidNetwork,
        client_host: Host,
        thinner_host: Host,
        request_id: int,
        post_bytes: float = DEFAULT_POST_BYTES,
        slow_start: Optional[SlowStartRamp] = None,
        quiescent_rtts: float = POST_QUIESCENT_RTTS,
        on_post_complete: Optional[Callable[["PaymentChannel", int], None]] = None,
    ) -> None:
        if post_bytes <= 0:
            raise PaymentError(f"post_bytes must be positive, got {post_bytes}")
        if quiescent_rtts < 0:
            raise PaymentError("quiescent_rtts must be non-negative")
        self.network = network
        self.engine = network.engine
        self.client_host = client_host
        self.thinner_host = thinner_host
        self.request_id = request_id
        self.post_bytes = post_bytes
        self.slow_start = slow_start
        self.quiescent_rtts = quiescent_rtts
        self.on_post_complete = on_post_complete

        self.state = PaymentChannelState.CREATED
        self.posts_completed = 0
        self.opened_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        #: Fired whenever the channel's bid *trajectory* changes — the
        #: in-flight POST is re-rated by the fluid allocator, a POST
        #: completes (slope drops to zero for the quiescent gap), a quantum
        #: win consumes the balance, or the channel closes.  The thinner
        #: wires this to its kinetic bid index (push-refresh), so auctions
        #: never have to pull every contender's bid.
        self.on_bid_change: Optional[Callable[["PaymentChannel"], None]] = None

        self._soa = network.soa
        self._cid = self._soa.register_channel()
        self._flow: Optional[Flow] = None
        self._gap_event: Optional[Event] = None
        self._rtt = network.rtt(client_host, thinner_host)

    # -- array-backed state -------------------------------------------------------

    @property
    def _committed_bytes(self) -> float:
        return self._soa.cm_committed[self._cid]

    @_committed_bytes.setter
    def _committed_bytes(self, value: float) -> None:
        self._soa.cm_committed[self._cid] = value

    @property
    def _consumed_bytes(self) -> float:
        return self._soa.cm_consumed[self._cid]

    @_consumed_bytes.setter
    def _consumed_bytes(self, value: float) -> None:
        self._soa.cm_consumed[self._cid] = value

    # -- lifecycle ---------------------------------------------------------------

    def open(self) -> None:
        """Start paying (first POST begins immediately)."""
        if self.state != PaymentChannelState.CREATED:
            raise PaymentError(f"channel for request {self.request_id} already {self.state.value}")
        self.state = PaymentChannelState.PAYING
        self.opened_at = self.engine.now
        self._start_post()

    def close(self) -> float:
        """Stop paying (e.g. the request won the auction).  Returns total bytes paid."""
        if self.state == PaymentChannelState.CLOSED:
            return self.total_paid()
        if self._gap_event is not None:
            self._gap_event.cancel()
            self._gap_event = None
        if self._flow is not None:
            delivered = self.network.stop_flow(self._flow)
            soa = self._soa
            soa.cm_committed[self._cid] += delivered
            soa.cm_flow[self._cid] = -1
            self._flow = None
        self.state = PaymentChannelState.CLOSED
        self.closed_at = self.engine.now
        self._notify_bid_change()
        return self.total_paid()

    @property
    def is_open(self) -> bool:
        """True while the channel may still deliver bytes."""
        return self.state == PaymentChannelState.PAYING

    # -- payment accounting -------------------------------------------------------

    def total_paid(self, sync: bool = True) -> float:
        """Every byte this channel has delivered to the thinner so far."""
        in_flight = 0.0
        if self._flow is not None:
            if sync:
                in_flight = self.network.delivered_bytes(self._flow)
            else:
                in_flight = self._flow.delivered_bytes
        return self._committed_bytes + in_flight

    def balance(self, sync: bool = True) -> float:
        """Delivered bytes not yet consumed by a won quantum (the current bid)."""
        return self.total_paid(sync=sync) - self._consumed_bytes

    def peek_balance(self, now: float) -> float:
        """The current bid, computed read-only (no flow-state mutation).

        Exact under the piecewise-constant rate model; used on the auction
        hot path where thousands of contenders are compared per second.
        """
        soa = self._soa
        cid = self._cid
        in_flight = 0.0
        fid = soa.cm_flow[cid]
        if fid >= 0:
            delivered = soa.fm_delivered[fid]
            in_flight = delivered
            rate = soa.fm_rate[fid]
            dt = now - soa.fm_last[fid]
            if dt > 0 and rate > 0:
                extra = rate * dt / 8.0
                # f_size encodes "unbounded" as inf, so min() is always safe.
                extra = min(extra, soa.fm_size[fid] - delivered)
                in_flight += extra
        return soa.cm_committed[cid] + in_flight - soa.cm_consumed[cid]

    def consume(self) -> float:
        """Zero the current bid (quantum auction, §5) and return what it was."""
        amount = self.balance()
        self._soa.cm_consumed[self._cid] += amount
        self._notify_bid_change()
        return amount

    def payment_rate_bps(self) -> float:
        """Instantaneous delivery rate of the in-flight POST (0 when quiescent)."""
        if self._flow is None:
            return 0.0
        return self._flow.rate_bps

    # -- POST machinery ---------------------------------------------------------------

    def _notify_bid_change(self) -> None:
        if self.on_bid_change is not None:
            self.on_bid_change(self)

    def _rate_changed(self, flow: Flow) -> None:
        # Fired by the fluid network's flush when it re-rates the in-flight
        # POST: the bid keeps its value but changes slope.  (The bid-change
        # notification is inlined — this fires once per re-rate of every
        # in-flight POST, the hottest callback in the simulator.)
        if flow is self._flow:
            callback = self.on_bid_change
            if callback is not None:
                callback(self)

    def _start_post(self) -> None:
        if self.state != PaymentChannelState.PAYING:
            return
        self._gap_event = None
        flow = self.network.send(
            self.client_host,
            self.thinner_host,
            size_bytes=self.post_bytes,
            label=f"payment:{self.request_id}",
            on_complete=self._post_done,
        )
        flow.owner = self
        flow.on_rate_change = self._rate_changed
        self._flow = flow
        self._soa.cm_flow[self._cid] = flow._fid
        if self.slow_start is not None:
            self.slow_start.attach(flow, self._rtt)
        # No bid-change notification here: the new POST starts at rate zero
        # until the deferred flush assigns it a share, so the trajectory
        # (value and zero slope) is unchanged until ``_rate_changed`` fires.

    def _post_done(self, flow: Flow) -> None:
        if flow is not self._flow:  # pragma: no cover - defensive
            return
        soa = self._soa
        soa.cm_committed[self._cid] += flow.delivered_bytes
        soa.cm_flow[self._cid] = -1
        self._flow = None
        self.posts_completed += 1
        self._notify_bid_change()
        if self.on_post_complete is not None:
            self.on_post_complete(self, self.posts_completed)
        if self.state != PaymentChannelState.PAYING:
            return
        gap = self.quiescent_rtts * self._rtt
        if gap > 0:
            self._gap_event = self.engine.schedule_after(gap, self._start_post)
        else:
            self._start_post()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PaymentChannel(request={self.request_id} {self.state.value} "
            f"paid={self.total_paid(sync=False):.0f}B posts={self.posts_completed})"
        )
