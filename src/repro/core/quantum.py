"""Per-quantum auctions for heterogeneous requests (§5).

When requests cause unequal amounts of work and attackers deliberately send
the hard ones, charging a single admission price lets them buy
disproportionate amounts of server time.  The fix in §5: view each request
as a sequence of equal-sized chunks, one per scheduling quantum, and auction
every quantum.  Payment channels are not torn down at admission — the
thinner keeps extracting payment until the request completes — and every
``tau`` seconds it runs:

1. let ``v`` be the currently-active request and ``u`` the contending
   request that has paid the most;
2. if ``u`` has paid more than ``v``, SUSPEND ``v``, admit (or RESUME)
   ``u``, and zero ``u``'s payment;
3. otherwise let ``v`` continue but zero its payment (it has not yet paid
   for the next quantum);
4. ABORT any request that has been suspended longer than a timeout.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.constants import SUSPEND_ABORT_TIMEOUT
from repro.errors import ThinnerError
from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.httpd.messages import Request, RequestState


class QuantumAuctionThinner(ThinnerBase):
    """The heterogeneous-request extension: auction every server quantum."""

    def __init__(
        self,
        *args,
        quantum_seconds: Optional[float] = None,
        suspend_abort_timeout: float = SUSPEND_ABORT_TIMEOUT,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if quantum_seconds is not None and quantum_seconds <= 0:
            raise ThinnerError("quantum_seconds must be positive")
        if suspend_abort_timeout <= 0:
            raise ThinnerError("suspend_abort_timeout must be positive")
        #: Quantum length tau; defaults to the server's mean service time, so a
        #: request of difficulty 1 is roughly one chunk.
        self.quantum_seconds = (
            quantum_seconds if quantum_seconds is not None else self.server.mean_service_time
        )
        self.suspend_abort_timeout = suspend_abort_timeout
        self._active: Optional[Contender] = None
        self._suspended_at: Dict[int, float] = {}
        self._scheduler = self.engine.schedule_every(self.quantum_seconds, self._quantum_tick)

    # -- arrival -------------------------------------------------------------------

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        contender = self._add_contender(request, client)
        if self._active is None and not self.server.busy and not self._suspended_at:
            self._grant(contender, price_bytes=0.0)
            return
        self._encourage(contender)

    # -- the per-quantum procedure ------------------------------------------------------

    def _quantum_tick(self) -> None:
        self._abort_stale_suspensions()
        challenger = self._top_contender()
        active = self._active
        now = self.engine.now

        if active is None:
            if challenger is not None:
                self._count_auction()
                self._grant(challenger, price_bytes=challenger.peek_bid(now))
            return

        if challenger is None:
            self._charge_active(active)
            return

        self._count_auction()
        if challenger.peek_bid(now) > active.peek_bid(now):
            self._preempt(active)
            self._grant(challenger, price_bytes=challenger.peek_bid(now))
        else:
            self._charge_active(active)

    def _server_ready(self) -> None:
        # A request just completed (or was aborted): immediately give the
        # quantum to the best contender rather than waiting for the next tick.
        challenger = self._top_contender()
        if challenger is None:
            self._server_idle = True
            return
        self._count_auction()
        self._grant(challenger, price_bytes=challenger.peek_bid(self.engine.now))

    # -- grant / pre-empt / charge ----------------------------------------------------------

    def _top_contender(self) -> Optional[Contender]:
        """The challenger that has paid the most (via the kinetic bid index)."""
        return self._best_contender()

    def _grant(self, contender: Contender, price_bytes: float) -> None:
        """Give the next quantum to ``contender`` and consume its payment."""
        request = contender.request
        self._remove_contender(request.request_id)
        self._suspended_at.pop(request.request_id, None)

        consumed = contender.channel.consume() if contender.channel is not None else 0.0
        charge = max(price_bytes, consumed)
        request.price_paid += charge
        self.stats.payment_bytes_sunk += charge
        self.prices.record(self.engine.now, charge, request.client_class, request.request_id)
        if charge == 0.0:
            self.stats.free_admissions += 1

        self._active = contender
        self._server_idle = False
        self.stats.requests_admitted += 1
        if request.state == RequestState.SUSPENDED:
            self.server.resume(request)
        else:
            self.server.submit(request)

    def _preempt(self, contender: Contender) -> None:
        """SUSPEND the active request; it keeps contending (and paying)."""
        request = self.server.suspend()
        if request is not contender.request:  # pragma: no cover - defensive
            raise ThinnerError("suspended request does not match the active contender")
        self._active = None
        self._reinsert_contender(contender)
        self._suspended_at[request.request_id] = self.engine.now

    def _charge_active(self, contender: Contender) -> None:
        """The active request keeps the server: zero its payment for the quantum."""
        if contender.channel is None:
            return
        consumed = contender.channel.consume()
        if consumed > 0.0:
            contender.request.price_paid += consumed
            self.stats.payment_bytes_sunk += consumed

    def _abort_stale_suspensions(self) -> None:
        now = self.engine.now
        stale = [
            request_id
            for request_id, suspended_at in self._suspended_at.items()
            if now - suspended_at > self.suspend_abort_timeout
        ]
        for request_id in stale:
            contender = self._contenders.get(request_id)
            self._suspended_at.pop(request_id, None)
            if contender is None:
                continue
            self.server.abort(contender.request)
            self._drop(contender.request, "suspend-timeout")

    # -- completion -----------------------------------------------------------------------

    def _request_done(self, request: Request) -> None:
        if self._active is not None and self._active.request is request:
            if self._active.channel is not None:
                total = self._active.channel.close()
                request.bytes_paid = total
            self._active = None
        super()._request_done(request)

    def shutdown(self) -> None:
        """Stop the periodic quantum scheduler (used when a run ends)."""
        self._scheduler.cancel()
