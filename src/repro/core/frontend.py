"""Deployment: compose a protected site out of the pieces.

A :class:`Deployment` owns the simulation engine, the fluid network over a
topology, the emulated server, and the thinner front-end(s), and it keeps
track of the clients that register with it.  Experiments, examples and tests
all talk to this object rather than wiring the parts by hand.

Which admission policy fronts the server is data, not code:
``DeploymentConfig.defense`` takes either a
:class:`~repro.defenses.spec.DefenseSpec` (a registered defense name plus
typed factory kwargs, arbitrarily composable — pipelines of screening
stages, the adaptive engagement controller) or, as sugar, one of the
historical strings (``"speakup"``, ``"retry"``, ``"quantum"``, ``"none"``,
any registered defense name, or the ``"filter>admission"`` pipeline
shorthand).  The deployment normalises the selector once, instantiates the
:class:`~repro.defenses.base.Defense` through the registry, and asks it to
:meth:`~repro.defenses.base.Defense.build_thinner` per shard — there is no
defense-name dispatch here.

A deployment normally runs **one** thinner (the paper's evaluation setup);
setting ``DeploymentConfig.thinner_shards`` above 1 deploys a sharded
*fleet* of independent thinner front-ends instead (the §4.3 scale-out
sketch) — see :mod:`repro.core.fleet` for the dispatch policies and the
partitioned/pooled admission modes.  With ``thinner_shards=1`` the wiring
is byte-for-byte the historical single-thinner construction.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

from repro.constants import (
    DEFAULT_POST_BYTES,
    PAYMENT_CHANNEL_TIMEOUT,
    SERVICE_TIME_JITTER,
    SUSPEND_ABORT_TIMEOUT,
)
from repro.errors import DefenseError, ExperimentError, FaultError, ThinnerError
from repro.core.fleet import (
    ADMISSION_MODES,
    SHARD_POLICIES,
    HealthProbeSpec,
    HealthProber,
    PooledAdmission,
    ShardRouter,
)
from repro.core.routing import RouterSpec, build_probe, strategy_needs_rng
from repro.core.payment import PaymentChannel
from repro.core.thinner import ThinnerBase
from repro.httpd.messages import Request
from repro.httpd.server import EmulatedServer
from repro.rng import StreamFactory
from repro.simnet.engine import Engine
from repro.simnet.host import Host
from repro.simnet.network import FluidNetwork
from repro.simnet.tcp import SlowStartRamp
from repro.simnet.topology import Topology
from repro.simnet.trace import Tracer
from repro.telemetry.spec import TelemetrySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.defenses.base import Defense
    from repro.defenses.spec import DefenseSpec
    from repro.faults.injector import FaultInjector
    from repro.faults.spec import FaultPlan

#: Names of the built-in core thinner variants (the historical string
#: vocabulary; any registered defense name is accepted too).
DEFENSES = ("speakup", "retry", "quantum", "none")


def _normalise(defense) -> "DefenseSpec":
    """String/spec → :class:`DefenseSpec`, re-raised as a config error."""
    # Imported lazily: the defenses layer sits above core/ and registers
    # itself on import; pulling it in at call time keeps the module layering
    # acyclic while letting the deployment resolve names through it.
    from repro.defenses.spec import normalise_defense

    try:
        return normalise_defense(defense)
    except DefenseError as error:
        raise ExperimentError(str(error)) from None


@dataclass
class DeploymentConfig:
    """Tunable knobs of a protected site."""

    #: Server capacity ``c`` in requests per second.
    server_capacity_rps: float = 100.0
    #: Which admission policy to deploy: a
    #: :class:`~repro.defenses.spec.DefenseSpec`, or a string — one of the
    #: historical :data:`DEFENSES`, any registered defense name, or the
    #: ``"filter>admission"`` pipeline shorthand.
    defense: Union[str, "DefenseSpec"] = "speakup"
    #: Admission policy of the undefended baseline ("random" or "fifo").
    admission_policy: str = "random"
    #: Size of one payment POST (the prototype uses 1 MByte, §6).
    post_bytes: float = DEFAULT_POST_BYTES
    #: Size of a request message on the wire.
    request_bytes: float = 1500.0
    #: Thinner-side processing/backlog delay added to each encouragement.
    encouragement_delay: float = 0.0
    #: How long the thinner keeps an idle payment channel before evicting it.
    payment_timeout: float = PAYMENT_CHANNEL_TIMEOUT
    #: Quantum length for the heterogeneous-request thinner (None = 1/c).
    quantum_seconds: Optional[float] = None
    #: Abort a suspended request after this long (§5).
    suspend_abort_timeout: float = SUSPEND_ABORT_TIMEOUT
    #: Service time jitter delta (service times are uniform in [(1±delta)/c]).
    service_jitter: float = SERVICE_TIME_JITTER
    #: Root seed for every random stream in the deployment.
    seed: int = 0
    #: Collect a :class:`~repro.simnet.trace.Tracer` of flow/auction events.
    enable_tracing: bool = False
    #: Bound on concurrent contenders (connection descriptors, §6); None = unbounded.
    max_contenders: Optional[int] = None
    #: Number of thinner front-end shards (§4.3 scale-out).  1 deploys the
    #: paper's single thinner; above 1 the deployment needs one thinner host
    #: per shard (see :func:`repro.simnet.topology.build_fleet`) and builds
    #: one independent thinner — own contender set, own
    #: :class:`~repro.core.bidindex.KineticBidIndex`, own payment channels —
    #: in front of the shared server per shard.
    thinner_shards: int = 1
    #: How clients are pinned to shards when ``thinner_shards > 1``:
    #: ``"hash"`` (stable CRC32 of the client name — consistent hashing),
    #: ``"least-loaded"`` (fewest assigned clients), or ``"random"`` (a
    #: seeded uniform draw per client).  See :class:`repro.core.fleet.ShardRouter`.
    shard_policy: str = "hash"
    #: Full dispatch-strategy configuration (see
    #: :class:`repro.core.routing.RouterSpec`).  ``None`` (the default) uses
    #: the legacy ``shard_policy`` string path, byte-identical to the
    #: historical wiring; a spec unlocks the registry's load-aware
    #: strategies (``power-of-two``, ``weighted-sink``, ``sticky-spill``)
    #: and their probe signals, and takes precedence over ``shard_policy``.
    router_spec: Optional[RouterSpec] = None
    #: How the fleet shares the server's admission slots:
    #: ``"partitioned"`` gives each shard a dedicated ``c / shards`` slice
    #: (fully independent shards; every defense works), ``"pooled"`` lets
    #: any shard claim any freed slot of the one shared server (round-robin
    #: offers; the quantum thinner is not supported).  Ignored when
    #: ``thinner_shards == 1``.  See :mod:`repro.core.fleet`.
    admission_mode: str = "partitioned"
    #: Scheduled shard kill/heal events (see :mod:`repro.faults`).  ``None``
    #: or an empty :class:`~repro.faults.spec.FaultPlan` builds no injector
    #: and keeps the run byte-identical to a fault-free deployment; a plan
    #: with events needs ``thinner_shards > 1`` and a defense whose thinner
    #: survives shard death (the quantum variant does not).
    fault_plan: Optional["FaultPlan"] = None
    #: Health-driven shard ejection (see :class:`repro.core.fleet.HealthProber`).
    #: ``None`` (the default) builds no prober and keeps the run byte-identical
    #: to a prober-free deployment; a spec needs ``thinner_shards > 1`` (a
    #: single shard has no fleet median to compare against).
    health_probe: Optional[HealthProbeSpec] = None
    #: How the run measures itself (see :mod:`repro.telemetry`).  ``None``
    #: or a spec in ``"full"`` mode keeps the historical per-request lists
    #: and is byte-identical to every stored result; ``"rollup"`` mode
    #: bounds the measurement footprint to O(buckets + reservoir) — the
    #: regime that makes >=500k-client runs fit in memory.
    telemetry: Optional[TelemetrySpec] = None
    #: Model TCP slow start on payment POSTs (disable for speed in huge sweeps).
    model_slow_start: bool = True
    #: Use the struct-of-arrays vectorized recompute paths (large-component
    #: waterfill, batch bid re-keys, bulk integration).  Bit-identical to the
    #: per-object paths — set False only to exercise those directly (the
    #: equivalence tests do) or to debug.
    vectorized: bool = True
    #: Pause Python's *cyclic* garbage collector while the event loop runs.
    #: The loop allocates at a huge rate but almost entirely acyclically
    #: (events, heap tuples, flows and index entries are freed by reference
    #: counting; the few true cycles are broken explicitly on completion),
    #: so the collector's periodic full-heap scans are pure overhead — ~40%
    #: of wall-clock at the 50k-client bench scale.  Re-enabled (never
    #: force-collected) as soon as ``run()`` returns; set False to keep the
    #: collector running, e.g. when embedding in a larger application.
    pause_gc_during_run: bool = True

    def defense_spec(self) -> "DefenseSpec":
        """The configured defense as a normalised :class:`DefenseSpec`."""
        return _normalise(self.defense)

    @property
    def defense_label(self) -> str:
        """The defense as recorded in results: strings verbatim, specs labelled."""
        if isinstance(self.defense, str):
            return self.defense
        return _normalise(self.defense).label()

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ExperimentError` on nonsensical settings."""
        if self.server_capacity_rps <= 0:
            raise ExperimentError("server_capacity_rps must be positive")
        spec = self.defense_spec()
        try:
            defense = spec.create()
        except DefenseError as error:
            raise ExperimentError(str(error)) from None
        if self.post_bytes <= 0:
            raise ExperimentError("post_bytes must be positive")
        if self.request_bytes <= 0:
            raise ExperimentError("request_bytes must be positive")
        if self.encouragement_delay < 0:
            raise ExperimentError("encouragement_delay must be non-negative")
        if self.thinner_shards < 1:
            raise ExperimentError("thinner_shards must be at least 1")
        if self.shard_policy not in SHARD_POLICIES:
            raise ExperimentError(
                f"unknown shard_policy {self.shard_policy!r}; "
                f"expected one of {SHARD_POLICIES}"
            )
        if self.router_spec is not None:
            try:
                self.router_spec.validate()
            except ThinnerError as error:
                raise ExperimentError(str(error)) from None
        if self.admission_mode not in ADMISSION_MODES:
            raise ExperimentError(
                f"unknown admission_mode {self.admission_mode!r}; "
                f"expected one of {ADMISSION_MODES}"
            )
        if (
            self.thinner_shards > 1
            and self.admission_mode == "pooled"
            and not defense.supports_pooled_admission()
        ):
            raise ExperimentError(
                "the quantum thinner needs 'partitioned' admission "
                "(pooled mode cannot suspend/resume a shared slot another "
                f"shard may hold); offending defense spec: {spec.to_dict()}"
            )
        if self.fault_plan is not None and self.fault_plan.events:
            if self.thinner_shards < 2:
                raise ExperimentError(
                    "a fault_plan with events needs thinner_shards > 1 "
                    "(a single-thinner deployment has nothing to fail over to)"
                )
            if not defense.supports_fault_injection():
                raise ExperimentError(
                    "this defense does not support fault injection (the "
                    "quantum thinner's suspended request slices cannot "
                    "survive a shard kill); drop the fault_plan or pick "
                    f"another defense; offending defense spec: {spec.to_dict()}"
                )
            try:
                self.fault_plan.validate(self.thinner_shards)
            except FaultError as error:
                raise ExperimentError(str(error)) from None
        if self.health_probe is not None:
            if self.thinner_shards < 2:
                raise ExperimentError(
                    "health_probe needs thinner_shards > 1 (ejection compares "
                    "each shard against the fleet median)"
                )
            try:
                self.health_probe.validate()
            except ThinnerError as error:
                raise ExperimentError(str(error)) from None
        if self.telemetry is not None:
            self.telemetry.validate()


class Deployment:
    """A protected site: engine + network + server + thinner (+ clients)."""

    def __init__(
        self,
        topology: Topology,
        thinner_host: Union[Host, Sequence[Host]],
        config: Optional[DeploymentConfig] = None,
        thinner_factory: Optional[Callable[["Deployment"], ThinnerBase]] = None,
    ) -> None:
        self.config = config or DeploymentConfig()
        self.config.validate()
        self.topology = topology
        hosts = [thinner_host] if isinstance(thinner_host, Host) else list(thinner_host)
        if not hosts:
            raise ExperimentError("a deployment needs at least one thinner host")
        shards = self.config.thinner_shards
        if len(hosts) != shards:
            raise ExperimentError(
                f"thinner_shards={shards} needs exactly {shards} thinner "
                f"host(s), got {len(hosts)} (build the topology with "
                f"repro.simnet.topology.build_fleet)"
            )
        if thinner_factory is not None and shards > 1:
            raise ExperimentError(
                "custom thinner factories support a single shard; "
                "use thinner_shards=1"
            )
        #: One thinner host per shard; ``thinner_host`` stays shard 0 for
        #: the (overwhelmingly common) single-thinner deployments.
        self.thinner_hosts = hosts
        self.thinner_host = hosts[0]

        self.engine = Engine()
        self.streams = StreamFactory(self.config.seed)
        self.tracer = Tracer() if self.config.enable_tracing else None
        self.network = FluidNetwork(
            self.engine, topology, tracer=self.tracer, vectorized=self.config.vectorized
        )
        self.slow_start = SlowStartRamp(self.network) if self.config.model_slow_start else None

        #: The rollup telemetry collector, or ``None`` in full mode.  Full
        #: mode (and an unset spec) is the byte-identity baseline: no
        #: ``"telemetry"`` streams are created, the client layer keeps its
        #: per-request lists, and the thinners keep exact
        #: :class:`~repro.core.pricing.PriceBook` instances.  Rollup mode
        #: must be wired *before* the thinners are built so they pick up
        #: the bounded price-book factory through the network hook.
        self.telemetry = None
        telemetry_spec = self.config.telemetry
        if telemetry_spec is not None and telemetry_spec.mode == "rollup":
            # Imported lazily for the same layering reason as the defenses.
            from repro.telemetry.collector import StreamingPriceBook, TelemetryCollector

            self.telemetry = TelemetryCollector(
                telemetry_spec,
                self.streams.stream("telemetry"),
                counters=self.network.counters,
            )
            price_rng = self.streams.stream("telemetry:prices")
            self.network.price_book_factory = lambda: StreamingPriceBook(
                telemetry_spec.reservoir, price_rng
            )

        #: The back-end server(s).  A single-thinner or pooled-fleet
        #: deployment has exactly one; a partitioned fleet has one
        #: ``c / shards`` server per shard.  ``server`` stays the shard-0 /
        #: shared instance for existing callers.
        self.servers: List[EmulatedServer] = []
        self._pool: Optional[PooledAdmission] = None
        pooled = shards > 1 and self.config.admission_mode == "pooled"
        if shards == 1 or pooled:
            self.servers.append(self._build_server(0, self.config.server_capacity_rps))
            if pooled:
                self._pool = PooledAdmission(self.servers[0])
        else:
            per_shard_capacity = self.config.server_capacity_rps / shards
            for shard in range(shards):
                self.servers.append(self._build_server(shard, per_shard_capacity))
        self.server = self.servers[0]

        #: What each shard's thinner drives as "its" server: the one real
        #: server, the shard's ``c / N`` partition, or its pooled view.
        if pooled:
            self._shard_servers: List = [self._pool.view() for _ in range(shards)]
        elif shards == 1:
            self._shard_servers = [self.servers[0]]
        else:
            self._shard_servers = list(self.servers)

        #: The admission policy, instantiated from the normalised spec via
        #: the defense registry (None when a custom ``thinner_factory`` is
        #: in charge).
        self.defense_spec: Optional["DefenseSpec"] = None
        self.defense: Optional["Defense"] = None

        #: One independent thinner per shard; ``thinner`` stays shard 0.
        self.thinners: List[ThinnerBase] = []
        if thinner_factory is not None:
            self.thinners.append(thinner_factory(self))
        else:
            self.defense_spec = self.config.defense_spec()
            self.defense = self.defense_spec.create()
            for shard in range(shards):
                self.thinners.append(self.defense.build_thinner(self, shard))
        self.thinner = self.thinners[0]

        router_spec = self.config.router_spec
        if router_spec is not None:
            dispatch_rng = (
                self.streams.stream("shard-dispatch")
                if shards > 1 and strategy_needs_rng(router_spec.name)
                else None
            )
            probe = build_probe(self, router_spec) if shards > 1 else None
            self._router = ShardRouter(
                shards, router_spec, rng=dispatch_rng, probe=probe
            )
        else:
            dispatch_rng = (
                self.streams.stream("shard-dispatch")
                if shards > 1 and self.config.shard_policy == "random"
                else None
            )
            self._router = ShardRouter(shards, self.config.shard_policy, rng=dispatch_rng)

        self.clients: List = []
        #: Non-client traffic drivers (cross-traffic generators and the
        #: like): started alongside the clients by :meth:`run`, but never
        #: registered as clients, so they stay out of the served/allocation
        #: metrics and the aggregate-bandwidth accounting.
        self.auxiliaries: List = []
        self.duration: Optional[float] = None

        #: The fault injector, or ``None`` for fault-free runs.  Only a plan
        #: *with events* builds one: an empty plan must add no streams, no
        #: engine events and no metrics keys (the byte-identity contract the
        #: empty-plan pin tests enforce).
        self.fault_injector: Optional["FaultInjector"] = None
        plan = self.config.fault_plan
        if plan is not None and plan.events:
            # Imported lazily for the same layering reason as the defenses.
            from repro.faults.injector import FaultInjector

            self.fault_injector = FaultInjector(self, plan)
            self.fault_injector.arm()

        #: The health prober, or ``None`` when no probe spec is configured.
        #: Like the injector, its absence is the byte-identity baseline: no
        #: spec means no periodic events and no new metrics keys.
        self.health_prober: Optional[HealthProber] = None
        if self.config.health_probe is not None:
            self.health_prober = HealthProber(self, self.config.health_probe)
            self.health_prober.arm()

    # -- construction helpers -----------------------------------------------------

    def _build_server(self, shard: int, capacity_rps: float) -> EmulatedServer:
        # Shard 0 keeps the historical "server" stream name so a one-shard
        # fleet draws the exact service times of a single-thinner run.
        name = "server" if shard == 0 else f"server:{shard}"
        return EmulatedServer(
            self.engine,
            capacity_rps,
            rng=self.streams.stream(name),
            jitter=self.config.service_jitter,
        )

    # -- per-shard lookups (what Defense.build_thinner builds against) ------------

    def shard_suffix(self, shard: int) -> str:
        """Stream-name suffix of a shard ("" for shard 0 — the historical names)."""
        return "" if shard == 0 else f":{shard}"

    def shard_server(self, shard: int):
        """The server (or pooled view) thinner shard ``shard`` admits into."""
        return self._shard_servers[shard]

    def shard_stream(self, name: str, shard: int):
        """A per-shard random stream (shard 0 keeps the unsuffixed name)."""
        return self.streams.stream(f"{name}{self.shard_suffix(shard)}")

    @property
    def defense_label(self) -> str:
        """The defense name results are recorded under."""
        return self.config.defense_label

    # -- client-facing API --------------------------------------------------------------

    def register_client(self, client) -> None:
        """Called by client constructors so the deployment can enumerate them."""
        self.clients.append(client)

    def register_auxiliary(self, driver) -> None:
        """Register a non-client traffic driver (started by :meth:`run`)."""
        self.auxiliaries.append(driver)

    def assign_shard(self, client_host: Host) -> int:
        """The shard index serving ``client_host`` (stable for the whole run)."""
        return self._router.assign(client_host.name)

    def payment_channel(
        self,
        client_host: Host,
        request: Request,
        thinner_host: Optional[Host] = None,
    ) -> PaymentChannel:
        """Build the payment channel a client opens when encouraged.

        ``thinner_host`` is the client's assigned shard; it defaults to
        shard 0 (the only shard of a single-thinner deployment).
        """
        return PaymentChannel(
            network=self.network,
            client_host=client_host,
            thinner_host=thinner_host if thinner_host is not None else self.thinner_host,
            request_id=request.request_id,
            post_bytes=self.config.post_bytes,
            slow_start=self.slow_start,
        )

    def client_stream(self, name: str):
        """A per-client random stream derived from the deployment seed."""
        return self.streams.stream(f"client:{name}")

    # -- running ------------------------------------------------------------------------------

    def run(self, duration: float) -> "Deployment":
        """Run the simulation for ``duration`` simulated seconds."""
        if duration <= 0:
            raise ExperimentError("duration must be positive")
        until = self.engine.now + duration
        # Publish the horizon before starting clients so their initial
        # arrival pregeneration does not draw a whole batch past run end.
        self.engine.run_horizon = until
        for auxiliary in self.auxiliaries:
            start = getattr(auxiliary, "start", None)
            if callable(start):
                start()
        for client in self.clients:
            start = getattr(client, "start", None)
            if callable(start):
                start()
        pause_gc = self.config.pause_gc_during_run and gc.isenabled()
        if pause_gc:
            gc.disable()
        try:
            self.engine.run(until=until)
        finally:
            if pause_gc:
                gc.enable()
        self.duration = duration if self.duration is None else self.duration + duration
        for thinner in self.thinners:
            shutdown = getattr(thinner, "shutdown", None)
            if callable(shutdown):
                shutdown()
        return self

    def results(self):
        """Collect the run's metrics (see :mod:`repro.metrics.collector`)."""
        from repro.metrics.collector import collect

        if self.duration is None:
            raise ExperimentError("run() must be called before results()")
        return collect(self)

    # -- convenience views ----------------------------------------------------------------------

    def clients_of_class(self, client_class: str) -> List:
        """All registered clients of one class ("good" or "bad")."""
        return [client for client in self.clients if client.client_class == client_class]

    def clients_of_shard(self, shard: int) -> List:
        """All registered clients assigned to thinner shard ``shard``.

        Clients that never went through :meth:`assign_shard` (hand-built
        test doubles) count as shard 0.
        """
        return [
            client for client in self.clients if getattr(client, "shard", 0) == shard
        ]

    @property
    def good_clients(self) -> List:
        return self.clients_of_class("good")

    @property
    def bad_clients(self) -> List:
        return self.clients_of_class("bad")

    def aggregate_bandwidth_bps(self, client_class: Optional[str] = None) -> float:
        """Aggregate access bandwidth of the registered clients (G, B, or G+B)."""
        total = 0.0
        for client in self.clients:
            if client_class is None or client.client_class == client_class:
                total += client.host.upload_capacity_bps
        return total


class CrossTrafficDriver:
    """A bystander flow occupying fabric links for a whole run.

    The driver opens one unbounded, optionally rate-capped flow between a
    cross-traffic endpoint pair (see
    :attr:`repro.simnet.topology.FabricTopology.cross_pairs`) when the
    deployment starts and leaves it running: the fluid network's max-min
    waterfill then shares every fabric link the pair crosses between the
    bystander and whatever payment traffic rides the same core.  Registered
    as a deployment *auxiliary*, not a client, so it never appears in
    served/allocation metrics.
    """

    def __init__(
        self,
        deployment: Deployment,
        src: Host,
        dst: Host,
        rate_cap_bps: Optional[float] = None,
        label: str = "cross-traffic",
    ) -> None:
        self.deployment = deployment
        self.src = src
        self.dst = dst
        self.rate_cap_bps = rate_cap_bps
        self.label = label
        self.flow = None
        deployment.register_auxiliary(self)

    def start(self) -> None:
        self.flow = self.deployment.network.send(
            self.src,
            self.dst,
            size_bytes=None,
            rate_cap_bps=self.rate_cap_bps,
            label=self.label,
        )

    @property
    def delivered_bytes(self) -> float:
        """Bytes the bystander flow has pushed so far (0 before start)."""
        return 0.0 if self.flow is None else self.flow.delivered_bytes
