"""The explicit payment channel and virtual auction (§3.3).

This is the variant the paper implements and evaluates.  When the server is
busy, every arriving request is *encouraged*: the client opens a payment
channel and streams dummy bytes.  Whenever the server signals that it is
ready for a new request, the thinner holds a virtual auction — it admits the
contending request that has paid the most bytes and tears down that
request's payment channel.
"""

from __future__ import annotations

from typing import Optional

from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.httpd.messages import Request


class VirtualAuctionThinner(ThinnerBase):
    """Admit the highest-paying contender whenever the server frees up."""

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        if self._server_idle and not self.server.busy:
            # Nobody is waiting and the server has spare attention: serve the
            # request immediately at a price of zero.
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        contender = self._add_contender(request, client)
        self._encourage(contender)

    def _server_ready(self) -> None:
        winner = self._pick_winner()
        if winner is None:
            self._server_idle = True
            return
        self._count_auction()
        price = winner.bid(sync=True)
        self._admit(winner, price_bytes=price)

    def _pick_winner(self) -> Optional[Contender]:
        """The contender that has paid the most (ties broken by arrival order).

        Delegates to the kinetic bid index (O(slope groups), not O(n)); the
        selection contract is :meth:`ThinnerBase._best_contender`.
        """
        return self._best_contender()
