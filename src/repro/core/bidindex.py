"""The kinetic bid index: sub-linear winner selection for virtual auctions.

Every thinner variant repeatedly needs the contender with the extreme
``(bid, tie-break)`` key — the §3.3 auction admits the *highest* bidder each
time the server frees a slot, and descriptor-pressure eviction (§6) drops
the *lowest*.  A linear scan recomputes every contender's bid per decision,
which makes a busy thinner O(n) per admission and O(n²) per run; at the
"millions of users" scale the ROADMAP targets, admission itself becomes the
bottleneck.

The index exploits the structure of a bid: under the fluid model a payment
channel's balance is *piecewise linear in time*,

    ``bid(t) = base + slope * (t - t_refresh)``

where ``slope`` is the in-flight POST's current rate in bytes/second and
``base`` is the balance when the trajectory last changed.  Trajectories only
change at discrete, observable moments — the allocator re-rates the flow, a
POST completes or the quiescent gap ends, a quantum win consumes the
balance, a channel opens or closes.  All of those moments already notify the
owning thinner (see :class:`~repro.core.payment.PaymentChannel.on_bid_change`
and ``Flow.on_rate_change``, which the fluid network fires from its
flush-driven rate recomputation), so the index is *push-refreshed*: rate
changes push fresh keys in, queries never pull n bids.

Between refreshes, comparisons are kinetic certificates: two bids with the
*same* slope never cross, so their order is fixed by the time-independent
intercept ``base - slope * t_refresh``; bids with *different* slopes can
cross, but there are only as many distinct slopes as the allocator produces
distinct rates — O(1)-ish in steady state (fair shares repeat across
same-bandwidth clients, slow-start caps take log-many values).  The index
therefore buckets entries into per-slope groups:

* within a group, a heap ordered by ``(intercept, tie-break)`` is valid for
  all time — no certificate ever expires;
* across groups, only each group's top is a candidate, and those few
  candidates are compared by their *exact* current key.

A query touches one candidate per non-empty group (plus amortised pops of
lazily-invalidated entries), so steady-state cost is O(groups + log n)
instead of O(n).

Refreshes are themselves *deferred and batched*, mirroring the fluid
network's dirty-set allocator: a trajectory-change notification only marks
the contender dirty (an O(1) dict store), and the actual re-keying runs at
the next query, once per dirty contender.  The allocator often re-rates the
same payment flow many times between two auctions (slow-start doublings, a
churning component); deferral collapses those into a single re-key, and it
is exact for the same reason the allocator's deferral is — nothing reads
the index between the change and the query.

Exactness contract: the winner returned is the contender that maximises
exactly ``(peek_bid(now), -arrived_at, -seq)`` — the same float produced by
:meth:`~repro.core.thinner.Contender.peek_bid` and the same tie-breaks as
the historical linear scans (earlier arrival wins ties; among identical
keys, earlier insertion wins).  Cross-group comparison always re-evaluates
``peek_bid(now)`` itself, so the selected key is bit-identical to what a
scan would have computed; the per-slope intercepts only order trajectories
that, within one group, differ by a *constant* gap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

#: Unique per-push discriminator so heap tuples never fall through to
#: comparing :class:`_Entry` objects (a refresh re-pushes the same
#: ``(intercept, arrived_at, seq)``).  It sits *after* ``seq``, so it never
#: influences which contender a query returns.
_push_ids = itertools.count()

#: Rebuild a group's heaps once dead entries outnumber live ones (and the
#: heap is big enough for the heapify to be worth it) — same lazy-deletion
#: policy as the engine's event queue.
COMPACT_MIN_HEAP = 64


class _Entry:
    """One contender's current linear bid trajectory inside the index."""

    __slots__ = ("contender", "intercept", "arrived_at", "seq", "alive", "group")

    def __init__(self, contender, intercept: float, arrived_at: float, seq: int):
        self.contender = contender
        self.intercept = intercept
        self.arrived_at = arrived_at
        self.seq = seq
        self.alive = True
        self.group: Optional["_SlopeGroup"] = None


class _SlopeGroup:
    """All live entries sharing one bid slope (bytes/second).

    ``best`` orders by ``(intercept desc, arrived_at asc, seq asc)`` and
    ``worst`` by ``(intercept asc, arrived_at desc, seq asc)`` — matching
    the historical ``max(..., (bid, -arrived_at))`` / ``min(..., (bid,
    -arrived_at))`` scans, including their first-wins behaviour on fully
    equal keys (insertion order == ``seq`` order).
    """

    __slots__ = ("slope", "_best", "_worst", "live", "dead")

    def __init__(self, slope: float, track_worst: bool = False):
        self.slope = slope
        self._best: List[Tuple[float, float, int, int, _Entry]] = []
        #: The eviction-side heap is only maintained once the index has seen
        #: a ``worst`` query (i.e. ``max_contenders`` is in play): most
        #: deployments never evict, and skipping the second heap halves the
        #: push cost of the add/re-key hot path.  ``None`` = not tracked.
        self._worst: Optional[List[Tuple[float, float, int, int, _Entry]]] = (
            [] if track_worst else None
        )
        self.live = 0
        self.dead = 0

    def add(self, entry: _Entry) -> None:
        push_id = next(_push_ids)
        heapq.heappush(
            self._best, (-entry.intercept, entry.arrived_at, entry.seq, push_id, entry)
        )
        if self._worst is not None:
            heapq.heappush(
                self._worst,
                (entry.intercept, -entry.arrived_at, entry.seq, push_id, entry),
            )
        self.live += 1

    def enable_worst(self) -> None:
        """Start (and backfill) the eviction-side heap."""
        if self._worst is not None:
            return
        self._worst = [
            (entry.intercept, -entry.arrived_at, entry.seq, push_id, entry)
            for (neg, _arr, _seq, push_id, entry) in self._best
            if entry.alive
        ]
        heapq.heapify(self._worst)

    def _top(self, heap: List[tuple]) -> Tuple[Optional[_Entry], int]:
        """The live top of ``heap`` (popping dead entries) and the pop count."""
        pops = 0
        while heap:
            entry = heap[0][4]
            if entry.alive:
                return entry, pops
            heapq.heappop(heap)
            pops += 1
        return None, pops

    def top_best(self) -> Tuple[Optional[_Entry], int]:
        return self._top(self._best)

    def top_worst(self, exempt: Optional[int]) -> Tuple[Optional[_Entry], int]:
        """Live minimum, skipping (but keeping) the ``exempt`` request."""
        entry, pops = self._top(self._worst)
        if (
            entry is None
            or exempt is None
            or entry.contender.request.request_id != exempt
        ):
            return entry, pops
        skipped = heapq.heappop(self._worst)
        entry, extra = self._top(self._worst)
        heapq.heappush(self._worst, skipped)
        return entry, pops + extra

    def note_dead(self) -> None:
        self.live -= 1
        self.dead += 1
        if self.dead > self.live and self.dead + self.live >= COMPACT_MIN_HEAP:
            self._compact()

    def _compact(self) -> None:
        self._best = [item for item in self._best if item[4].alive]
        heapq.heapify(self._best)
        if self._worst is not None:
            self._worst = [item for item in self._worst if item[4].alive]
            heapq.heapify(self._worst)
        self.dead = 0


class KineticBidIndex:
    """Push-refreshed index over a thinner's contenders, bucketed by slope.

    The owning thinner is responsible for calling :meth:`add` /
    :meth:`remove` as contenders enter and leave, and :meth:`refresh`
    whenever a contender's trajectory changes (the payment channel's
    ``on_bid_change`` wiring in :class:`~repro.core.thinner.ThinnerBase`
    does this).  ``counters`` is the deployment-wide
    :class:`~repro.perf.counters.SimCounters`.
    """

    #: Dirty batches at least this large are re-keyed through the store's
    #: vectorized trajectory kernel; smaller ones go contender by contender
    #: (numpy per-call overhead loses on tiny batches).  Both paths compute
    #: bit-identical keys, so this is purely a performance knob.
    VEC_MIN_DIRTY = 8

    def __init__(self, counters, store=None) -> None:
        self.counters = counters
        #: Optional :class:`~repro.simnet.soa.SoAStore` for vectorized batch
        #: re-keys; ``None`` falls back to per-contender ``peek_balance``.
        self._store = store
        self._groups: Dict[float, _SlopeGroup] = {}
        self._entries: Dict[int, _Entry] = {}
        #: Contenders whose trajectory changed since the last query,
        #: keyed by request id; re-keyed lazily (see the module docstring).
        self._dirty: Dict[int, object] = {}
        #: Becomes True at the first ``worst`` query (see ``enable_worst``).
        self._worst_tracked = False

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def group_count(self) -> int:
        """Number of distinct bid slopes currently indexed."""
        return len(self._groups)

    # -- trajectory bookkeeping ------------------------------------------------

    @staticmethod
    def _trajectory(contender, now: float) -> Tuple[float, float]:
        """The contender's current ``(base, slope)`` in bytes / bytes-per-s."""
        channel = contender.channel
        if channel is None:
            return 0.0, 0.0
        return channel.peek_balance(now), channel.payment_rate_bps() / 8.0

    def add(self, contender, now: float) -> None:
        """Index ``contender`` (keyed by its request id) at its current bid."""
        base, slope = self._trajectory(contender, now)
        # ``base - slope * now`` is time-independent; with slope 0 (no open
        # channel, quiescent gap, not-yet-rated POST) it is exactly ``base``,
        # which keeps the common all-zero-bid ties exact.
        self._insert(contender, base - slope * now, slope)

    def _insert(self, contender, intercept: float, slope: float) -> None:
        """Insert at a precomputed ``(intercept, slope)`` key."""
        entry = _Entry(contender, intercept, contender.arrived_at, contender.seq)
        request_id = contender.request.request_id
        previous = self._entries.get(request_id)
        if previous is not None:  # pragma: no cover - defensive
            self._kill(previous)
        self._entries[request_id] = entry
        group = self._groups.get(slope)
        if group is None:
            group = self._groups[slope] = _SlopeGroup(slope, self._worst_tracked)
        entry.group = group
        group.add(entry)

    def remove(self, request_id: int) -> None:
        """Drop the contender with ``request_id`` from the index (if present)."""
        self._dirty.pop(request_id, None)
        entry = self._entries.pop(request_id, None)
        if entry is not None:
            self._kill(entry)

    def refresh(self, contender) -> None:
        """Note that ``contender``'s bid trajectory changed (O(1), deferred).

        The re-key itself runs at the next query, against the query's own
        clock; repeated trajectory changes between queries collapse into
        one re-key.
        """
        self._dirty[contender.request.request_id] = contender

    def _flush_dirty(self, now: float) -> None:
        # Detach the dirty set first: ``add`` clears stale dirty marks.
        dirty, self._dirty = self._dirty, {}
        counters = self.counters
        entries = self._entries
        store = self._store
        if store is not None and len(dirty) >= self.VEC_MIN_DIRTY:
            # One gather over the store's channel/flow arrays computes every
            # trajectory in the batch; the per-entry kill/insert below runs
            # in the same dirty-insertion order as the scalar loop.
            contenders = list(dirty.values())
            cids = [
                -1 if contender.channel is None else contender.channel._cid
                for contender in contenders
            ]
            intercepts, slopes = store.bid_trajectories(cids, now)
            for request_id, contender, intercept, slope in zip(
                dirty, contenders, intercepts, slopes
            ):
                entry = entries.pop(request_id, None)
                if entry is None:
                    continue
                counters.bid_index_refreshes += 1
                self._kill(entry)
                self._insert(contender, intercept, slope)
            return
        for request_id, contender in dirty.items():
            entry = entries.pop(request_id, None)
            if entry is None:
                continue
            counters.bid_index_refreshes += 1
            self._kill(entry)
            self.add(contender, now)

    def _kill(self, entry: _Entry) -> None:
        entry.alive = False
        entry.group.note_dead()

    # -- queries --------------------------------------------------------------

    def best(self, now: float):
        """The contender maximising ``(peek_bid(now), -arrived_at, -seq)``."""
        if self._dirty:
            self._flush_dirty(now)
        scanned = 0
        best = None
        best_key = None
        empty: List[float] = []
        for slope, group in self._groups.items():
            entry, pops = group.top_best()
            scanned += pops
            if entry is None:
                if not group.live:
                    empty.append(slope)
                continue
            scanned += 1
            contender = entry.contender
            key = (contender.peek_bid(now), -entry.arrived_at, -entry.seq)
            if best_key is None or key > best_key:
                best = contender
                best_key = key
        for slope in empty:
            del self._groups[slope]
        self.counters.contenders_scanned += scanned
        return best

    def worst(self, now: float, exempt: Optional[int] = None):
        """The contender minimising ``(peek_bid(now), -arrived_at, seq)``.

        ``exempt`` (a request id) is skipped — eviction never drops the
        arrival that triggered it.
        """
        if not self._worst_tracked:
            self._worst_tracked = True
            for group in self._groups.values():
                group.enable_worst()
        if self._dirty:
            self._flush_dirty(now)
        scanned = 0
        worst = None
        worst_key = None
        empty: List[float] = []
        for slope, group in self._groups.items():
            entry, pops = group.top_worst(exempt)
            scanned += pops
            if entry is None:
                if not group.live:
                    empty.append(slope)
                continue
            scanned += 1
            contender = entry.contender
            key = (contender.peek_bid(now), -entry.arrived_at, entry.seq)
            if worst_key is None or key < worst_key:
                worst = contender
                worst_key = key
        for slope in empty:
            del self._groups[slope]
        self.counters.contenders_scanned += scanned
        return worst
