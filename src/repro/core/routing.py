"""Pluggable client→shard dispatch strategies for the thinner fleet (§4.3).

The original fleet shipped three hardcoded ``ShardRouter`` policies (hash /
least-loaded / random).  This module generalises them into a **strategy
registry**: each strategy is a small stateless object that picks a shard for
a client, reading whatever router state (pin counts) or live measurements
(probe signals) it needs.  The original three are registered unchanged and
remain byte-identical on the legacy code path; three load-aware strategies
join them:

* ``power-of-two``  — two uniform draws, keep the better-probing one.  The
  classic result: almost all the balance of least-loaded at a fraction of
  the information cost.  With no probe signal it degrades to a single
  uniform draw — literally the ``random`` policy.
* ``weighted-sink`` — roulette-wheel draw weighted by a measured signal,
  intended for the ``sink-rate`` probe (shards sinking payment bytes faster
  attract proportionally more clients).
* ``sticky-spill``  — consistent hashing (the ``hash`` policy) until the
  primary shard exceeds ``spill_factor`` times its fair share of pins, then
  spill to the least-loaded shard.  Sticky in the common case, bounded skew
  in the worst case.

Strategy configuration travels as a frozen, JSON-round-trippable
:class:`RouterSpec` threaded through ``DeploymentConfig`` and
``ScenarioSpec`` — so strategies are sweepable (``router_spec.probe_window_s``)
and compose with the fault-injection and health-probing layers, which only
ever talk to the router through ``set_alive`` / ``set_ejected`` /
``reassign``.

Probe signals (how a load-aware strategy observes a shard):

* ``pins``       — clients currently pinned (the router's own counts);
* ``contenders`` — open payment contenders at the shard's thinner;
* ``sink-rate``  — payment bytes/s the shard's thinner sank over the last
  ``probe_window_s`` window (a :class:`SinkRateProbe`);
* ``none``       — no signal (exercises the degraded paths).

``pins``/``contenders`` are *load* signals (lower is better); ``sink-rate``
is a *rate* signal (higher is better).  Probes only read state — they never
schedule events or touch flow state — so attaching one cannot perturb a
run's event sequence.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ThinnerError
from repro.rng import RandomStream

#: The legacy dispatch policies (accepted as plain strings for backward
#: compatibility; also the first three registered strategies).
SHARD_POLICIES = ("hash", "least-loaded", "random")

#: Probe signals a load-aware strategy may consume.
PROBE_SIGNALS = ("pins", "contenders", "sink-rate", "none")


@dataclass(frozen=True)
class RouterSpec:
    """A JSON-round-trippable dispatch-strategy configuration.

    ``name`` selects a registered strategy; ``probe`` selects the signal the
    load-aware strategies observe; ``probe_window_s`` sizes the
    ``sink-rate`` measurement window; ``spill_factor`` bounds
    ``sticky-spill``'s per-shard skew (a shard may hold at most
    ``spill_factor`` times its fair share of pins before spilling).
    """

    name: str = "hash"
    probe: str = "pins"
    probe_window_s: float = 0.5
    spill_factor: float = 1.25

    def validate(self) -> None:
        if self.name not in ROUTER_STRATEGIES:
            raise ThinnerError(
                f"unknown router strategy {self.name!r}; "
                f"expected one of {ROUTER_STRATEGY_NAMES}"
            )
        if self.probe not in PROBE_SIGNALS:
            raise ThinnerError(
                f"unknown router probe {self.probe!r}; expected one of {PROBE_SIGNALS}"
            )
        if self.probe_window_s <= 0:
            raise ThinnerError(
                f"router probe_window_s must be positive, got {self.probe_window_s}"
            )
        if self.spill_factor < 1.0:
            raise ThinnerError(
                f"router spill_factor must be at least 1.0, got {self.spill_factor}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RouterSpec":
        return cls(
            name=str(data.get("name", "hash")),
            probe=str(data.get("probe", "pins")),
            probe_window_s=float(data.get("probe_window_s", 0.5)),
            spill_factor=float(data.get("spill_factor", 1.25)),
        )


class Probe:
    """A per-shard measurement with a direction: ``load`` (lower is better)
    or ``rate`` (higher is better)."""

    def __init__(self, fn: Callable[["ShardRouter", int], float], kind: str) -> None:
        if kind not in ("load", "rate"):
            raise ThinnerError(f"probe kind must be 'load' or 'rate', got {kind!r}")
        self._fn = fn
        self.kind = kind

    def __call__(self, router: "ShardRouter", shard: int) -> float:
        return self._fn(router, shard)


class SinkRateProbe(Probe):
    """Payment bytes/s each shard's thinner sank over the last window.

    Snapshots ``thinner.stats.payment_bytes_sunk`` at most once per
    ``window_s`` of simulated time and differentiates against the previous
    snapshot.  Purely observational: no events are scheduled, so the probe
    cannot perturb the run it measures.
    """

    def __init__(self, deployment, window_s: float) -> None:
        super().__init__(self._rate, "rate")
        self.deployment = deployment
        self.window_s = window_s
        self._snapshot_at: Optional[float] = None
        self._snapshot: List[float] = []
        self._rates: List[float] = []

    def _roll(self, now: float) -> None:
        current = [t.stats.payment_bytes_sunk for t in self.deployment.thinners]
        if self._snapshot_at is None:
            self._rates = [0.0] * len(current)
        else:
            elapsed = now - self._snapshot_at
            self._rates = [
                (new - old) / elapsed if elapsed > 0 else 0.0
                for new, old in zip(current, self._snapshot)
            ]
        self._snapshot = current
        self._snapshot_at = now

    def _rate(self, router: "ShardRouter", shard: int) -> float:
        now = self.deployment.engine.now
        if self._snapshot_at is None or now - self._snapshot_at >= self.window_s:
            self._roll(now)
        return self._rates[shard]


def build_probe(deployment, spec: RouterSpec) -> Optional[Probe]:
    """The probe callable a :class:`ShardRouter` should observe, or ``None``."""
    if spec.probe == "none":
        return None
    if spec.probe == "pins":
        return Probe(lambda router, shard: float(router.counts[shard]), "load")
    if spec.probe == "contenders":
        return Probe(
            lambda router, shard: float(len(deployment.thinners[shard]._contenders)),
            "load",
        )
    return SinkRateProbe(deployment, spec.probe_window_s)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def _hash_index(client_name: str, buckets: int) -> int:
    return zlib.crc32(client_name.encode("utf-8")) % buckets


def _probe_prefers(probe: Probe, router: "ShardRouter", b: int, a: int) -> bool:
    """True when the probe says shard ``b`` is strictly better than ``a``."""
    if probe.kind == "load":
        return probe(router, b) < probe(router, a)
    return probe(router, b) > probe(router, a)


class _HashStrategy:
    """Stable CRC32 of the client host name — consistent hashing."""

    name = "hash"
    needs_rng = False

    def assign(self, router: "ShardRouter", client_name: str) -> int:
        return _hash_index(client_name, router.shards)

    def reassign(self, router: "ShardRouter", client_name: str, live: List[int]) -> int:
        return live[_hash_index(client_name, len(live))]


class _LeastLoadedStrategy:
    """The shard with the fewest pinned clients (ties to the lowest index)."""

    name = "least-loaded"
    needs_rng = False

    def assign(self, router: "ShardRouter", client_name: str) -> int:
        return min(range(router.shards), key=lambda i: (router.counts[i], i))

    def reassign(self, router: "ShardRouter", client_name: str, live: List[int]) -> int:
        return min(live, key=lambda i: (router.counts[i], i))


class _RandomStrategy:
    """One uniform draw per client from the seeded dispatch stream."""

    name = "random"
    needs_rng = True

    def assign(self, router: "ShardRouter", client_name: str) -> int:
        return router.rng.randint(0, router.shards - 1)

    def reassign(self, router: "ShardRouter", client_name: str, live: List[int]) -> int:
        return live[router.rng.randint(0, len(live) - 1)]


class _PowerOfTwoStrategy:
    """Two uniform draws, keep the one the probe prefers.

    With no probe signal the second draw carries no information, so the
    strategy performs exactly one uniform draw — byte-identical to the
    ``random`` policy (the regression tests pin this degradation).
    """

    name = "power-of-two"
    needs_rng = True

    def assign(self, router: "ShardRouter", client_name: str) -> int:
        probe = router.probe
        if probe is None:
            return router.rng.randint(0, router.shards - 1)
        a = router.rng.randint(0, router.shards - 1)
        b = router.rng.randint(0, router.shards - 1)
        return b if _probe_prefers(probe, router, b, a) else a

    def reassign(self, router: "ShardRouter", client_name: str, live: List[int]) -> int:
        probe = router.probe
        if probe is None:
            return live[router.rng.randint(0, len(live) - 1)]
        a = live[router.rng.randint(0, len(live) - 1)]
        b = live[router.rng.randint(0, len(live) - 1)]
        return b if _probe_prefers(probe, router, b, a) else a


class _WeightedSinkStrategy:
    """Roulette-wheel draw weighted by the probe signal.

    ``rate`` probes weight shards directly (faster sink, more clients);
    ``load`` probes weight by ``1 / (1 + load)``.  With no signal — probe
    absent, or every weight zero — the draw falls back to uniform.
    """

    name = "weighted-sink"
    needs_rng = True

    def _pick(self, router: "ShardRouter", candidates: List[int]) -> int:
        probe = router.probe
        if probe is None:
            return candidates[router.rng.randint(0, len(candidates) - 1)]
        if probe.kind == "rate":
            weights = [max(probe(router, i), 0.0) for i in candidates]
        else:
            weights = [1.0 / (1.0 + max(probe(router, i), 0.0)) for i in candidates]
        total = sum(weights)
        if total <= 0.0:
            return candidates[router.rng.randint(0, len(candidates) - 1)]
        target = router.rng.random() * total
        acc = 0.0
        for index, weight in zip(candidates, weights):
            acc += weight
            if target < acc:
                return index
        return candidates[-1]

    def assign(self, router: "ShardRouter", client_name: str) -> int:
        return self._pick(router, list(range(router.shards)))

    def reassign(self, router: "ShardRouter", client_name: str, live: List[int]) -> int:
        return self._pick(router, live)


class _StickySpillStrategy:
    """Consistent hashing with a bounded-skew escape hatch.

    Each client's primary shard is its CRC32 bucket (identical to ``hash``).
    The primary is used unless accepting the client would push its pin count
    past ``spill_factor`` times the fair share, in which case the client
    spills to the least-loaded shard.
    """

    name = "sticky-spill"
    needs_rng = False

    def _pick(self, router: "ShardRouter", primary: int, candidates: List[int]) -> int:
        assigned = sum(router.counts[i] for i in candidates)
        # Floor the threshold at one pin: at low occupancy the fair share is
        # below a single client, and spilling a lone client would reduce the
        # strategy to least-loaded exactly when stickiness is cheapest.
        limit = max(
            1.0, router.spec.spill_factor * (assigned + 1) / len(candidates)
        )
        if router.counts[primary] + 1 <= limit:
            return primary
        return min(candidates, key=lambda i: (router.counts[i], i))

    def assign(self, router: "ShardRouter", client_name: str) -> int:
        primary = _hash_index(client_name, router.shards)
        return self._pick(router, primary, list(range(router.shards)))

    def reassign(self, router: "ShardRouter", client_name: str, live: List[int]) -> int:
        primary = live[_hash_index(client_name, len(live))]
        return self._pick(router, primary, live)


#: The strategy registry: name → stateless strategy object.  All per-router
#: state (counts, masks, rng, probe) lives on the :class:`ShardRouter`.
ROUTER_STRATEGIES: Dict[str, Any] = {}


def register_strategy(strategy) -> None:
    """Register a dispatch strategy (``name``/``needs_rng``/``assign``/``reassign``)."""
    ROUTER_STRATEGIES[strategy.name] = strategy


for _strategy in (
    _HashStrategy(),
    _LeastLoadedStrategy(),
    _RandomStrategy(),
    _PowerOfTwoStrategy(),
    _WeightedSinkStrategy(),
    _StickySpillStrategy(),
):
    register_strategy(_strategy)

#: Every registered strategy name, legacy policies first.
ROUTER_STRATEGY_NAMES: Tuple[str, ...] = tuple(ROUTER_STRATEGIES)


def strategy_needs_rng(name: str) -> bool:
    """Whether the named strategy draws from the dispatch stream."""
    if name not in ROUTER_STRATEGIES:
        raise ThinnerError(
            f"unknown router strategy {name!r}; expected one of {ROUTER_STRATEGY_NAMES}"
        )
    return ROUTER_STRATEGIES[name].needs_rng


class ShardRouter:
    """Assigns each client to one thinner shard, deterministically.

    ``policy`` is either a legacy policy string (restricted to
    ``SHARD_POLICIES`` for backward compatibility) or a :class:`RouterSpec`
    naming any registered strategy:

    * ``hash``          — stable hash of the client's host name (CRC32), the
      consistent-hashing analogue: the same client lands on the same shard
      in every run and regardless of registration order;
    * ``least-loaded``  — the shard with the fewest assigned clients so far
      (ties to the lowest index), i.e. a perfectly informed balancer;
    * ``random``        — a uniform draw per client from the deployment's
      seeded ``"shard-dispatch"`` stream, i.e. naive DNS round-robin with
      client-side caching;
    * ``power-of-two``  — two uniform draws, keep the better-probing one;
    * ``weighted-sink`` — roulette-wheel draw weighted by the probe signal;
    * ``sticky-spill``  — hash until the primary exceeds ``spill_factor``
      times its fair share, then spill to the least-loaded shard.

    Assignments are made once, at client registration, and never migrate on
    their own — matching §4.3's sketch, where a client resolves to one
    front-end and keeps paying it.  The exception is failover: the fault
    injector marks killed shards dead in the router's liveness mask
    (:meth:`set_alive`) and :meth:`reassign`\\ s each affected client to a
    surviving shard once its DNS-TTL re-pin lag expires.
    """

    def __init__(
        self,
        shards: int,
        policy="hash",
        rng: Optional[RandomStream] = None,
        probe: Optional[Probe] = None,
    ) -> None:
        if shards < 1:
            raise ThinnerError(f"shards must be at least 1, got {shards}")
        if isinstance(policy, RouterSpec):
            spec = policy
            spec.validate()
        else:
            if policy not in SHARD_POLICIES:
                raise ThinnerError(
                    f"unknown shard policy {policy!r}; expected one of {SHARD_POLICIES}"
                )
            spec = RouterSpec(name=policy)
        strategy = ROUTER_STRATEGIES[spec.name]
        if strategy.needs_rng and shards > 1 and rng is None:
            raise ThinnerError(f"the {spec.name!r} shard policy needs a seeded stream")
        self.shards = shards
        self.spec = spec
        self.policy = spec.name
        self.rng = rng
        self.probe = probe
        self._strategy = strategy
        #: Clients currently pinned to each shard (drives ``least-loaded``).
        self.counts: List[int] = [0] * shards
        #: Liveness mask maintained by the fault injector; initial
        #: assignment ignores it (every shard is alive before the run), but
        #: :meth:`reassign` only ever lands on live shards.
        self.alive: List[bool] = [True] * shards
        #: Ejection mask maintained by the :class:`HealthProber`: an ejected
        #: shard is up but judged sick, so :meth:`reassign` routes around it
        #: while the fault injector's liveness mask is left untouched.
        self.ejected: List[bool] = [False] * shards

    def set_alive(self, shard: int, alive: bool) -> None:
        """Mark ``shard`` dead or alive in the dispatch candidate set."""
        if not 0 <= shard < self.shards:
            raise ThinnerError(f"shard {shard} out of range for {self.shards} shard(s)")
        self.alive[shard] = alive

    def set_ejected(self, shard: int, ejected: bool) -> None:
        """Mark ``shard`` health-ejected (routed around) or readmitted."""
        if not 0 <= shard < self.shards:
            raise ThinnerError(f"shard {shard} out of range for {self.shards} shard(s)")
        self.ejected[shard] = ejected

    def live_shards(self) -> List[int]:
        """Indices of the shards currently in the candidate set."""
        return [index for index, alive in enumerate(self.alive) if alive]

    def routable_shards(self) -> List[int]:
        """Live shards that are not health-ejected (the re-pin candidates)."""
        return [
            index
            for index, alive in enumerate(self.alive)
            if alive and not self.ejected[index]
        ]

    def reassign(self, client_name: str, from_shard: int) -> int:
        """Re-pin a failed-over client to a live shard, policy-consistently.

        ``hash`` rehashes over the live shards (consistent hashing after a
        node leaves the ring), ``least-loaded`` picks the live shard with the
        fewest current pins, and ``random`` redraws from the same seeded
        stream as initial dispatch; the load-aware strategies re-run their
        pick over the live candidate set.  The old pin's count is released so
        pin-counting strategies track live populations, not history.  Ejected
        shards are avoided while any non-ejected live shard remains; when
        the prober has ejected everything that is still up, liveness wins
        (a sick front-end beats no front-end).
        """
        live = self.routable_shards()
        if not live:
            live = self.live_shards()
        if not live:
            raise ThinnerError("cannot reassign: no live shards")
        self.counts[from_shard] -= 1
        if len(live) == 1:
            index = live[0]
        else:
            index = self._strategy.reassign(self, client_name, live)
        self.counts[index] += 1
        return index

    def assign(self, client_name: str) -> int:
        """The shard index for ``client_name`` (counts it as assigned)."""
        if self.shards == 1:
            # Single-thinner deployments take this path for every client;
            # keep it free of hashing and RNG draws.
            self.counts[0] += 1
            return 0
        index = self._strategy.assign(self, client_name)
        self.counts[index] += 1
        return index
