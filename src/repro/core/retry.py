"""Random drops and aggressive retries (§3.2).

In this variant clients do not open a separate payment channel: they resend
their request in a congestion-controlled stream, and the thinner drops
requests at random with a probability chosen so that roughly ``c`` requests
per second reach the server.  A client is then served at a rate proportional
to the rate at which its retries arrive — that is, to its bandwidth.

In the fluid model we do not materialise every individual retry (a 2 Mbit/s
client emits one ~1500-byte retry about every 6 ms, which would swamp the
event queue for no benefit).  Instead the retry stream *is* the payment
channel flow, and admission is a lottery weighted by the bytes each
contender delivered since the previous admission: under random dropping with
a uniform probability ``p``, the next admitted request belongs to client
``i`` with probability proportional to the rate of client ``i``'s retries,
which is exactly what the weighted lottery implements.  The §3.2 price
``r = (B+G)/c`` shows up as the average number of retry-bytes a contender
delivers per admission.
"""

from __future__ import annotations

from typing import Optional

from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.httpd.messages import Request
from repro.rng import RandomStream


class RandomDropThinner(ThinnerBase):
    """Proportional admission by lottery over delivered retry bytes."""

    def __init__(self, *args, rng: RandomStream, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rng = rng

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        if self._server_idle and not self.server.busy:
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        contender = self._add_contender(request, client)
        # The "please retry now" signal: the client starts its retry stream,
        # which we account exactly like a payment channel.
        self._encourage(contender)

    def _server_ready(self) -> None:
        winner = self._pick_winner()
        if winner is None:
            self._server_idle = True
            return
        self._count_auction()
        now = self.engine.now
        price = max(0.0, winner.peek_bid(now) - winner.lottery_baseline)
        # Reset every contender's baseline: the lottery for the next admission
        # only counts bytes delivered from now on, mirroring memoryless random
        # drops on a continuous retry stream.
        for contender in self._contenders.values():
            contender.lottery_baseline = contender.peek_bid(now)
        self._admit(winner, price_bytes=price)

    def _pick_winner(self) -> Optional[Contender]:
        if not self._contenders:
            return None
        now = self.engine.now
        contenders = list(self._contenders.values())
        self.counters.contenders_scanned += len(contenders)
        weights = [
            max(0.0, contender.peek_bid(now) - contender.lottery_baseline)
            for contender in contenders
        ]
        total = sum(weights)
        if total <= 0.0:
            # Nobody has delivered any retry bytes yet (e.g. right after the
            # encouragement went out): fall back to a uniform choice, which is
            # what random dropping does when all streams look alike.
            return self.rng.choice(contenders)
        pick = self.rng.uniform(0.0, total)
        cumulative = 0.0
        for contender, weight in zip(contenders, weights):
            cumulative += weight
            if pick <= cumulative:
                return contender
        return contenders[-1]
