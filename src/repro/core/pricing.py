"""Price bookkeeping.

With speak-up "the price for access ... emerges naturally" (§3.2, §3.3): it
is simply the number of bytes the winning bid delivered.  The thinner records
every winning bid here so the evaluation can reproduce Figure 5 (average
price per served request, by client class, against the upper bound
(G+B)/c) and so operators could expose a "price tag" (§9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PriceSample:
    """One winning bid."""

    time: float
    price_bytes: float
    client_class: str
    request_id: int


class PriceBook:
    """A time series of winning bids with the summaries the evaluation needs."""

    def __init__(self) -> None:
        self._samples: List[PriceSample] = []

    def record(self, time: float, price_bytes: float, client_class: str, request_id: int) -> None:
        """Record the winning bid of one auction."""
        if price_bytes < 0:
            raise ValueError(f"price cannot be negative, got {price_bytes}")
        self._samples.append(PriceSample(time, price_bytes, client_class, request_id))

    @classmethod
    def merged(cls, books: "List[PriceBook]") -> "PriceBook":
        """One book holding every sample of ``books``, in time order.

        Used to aggregate a thinner fleet's per-shard books so every query
        (averages, percentiles, revenue) keeps one implementation.
        """
        book = cls()
        for source in books:
            book._samples.extend(source._samples)
        book._samples.sort(key=lambda sample: sample.time)
        return book

    # -- queries -----------------------------------------------------------------

    @property
    def samples(self) -> List[PriceSample]:
        """All recorded winning bids, oldest first (a copy)."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def going_rate(self) -> float:
        """"The going rate for access is the winning bid from the most recent
        auction" (§3.3).  Zero before any auction has completed."""
        if not self._samples:
            return 0.0
        return self._samples[-1].price_bytes

    def average(self, client_class: Optional[str] = None, since: float = 0.0) -> float:
        """Mean winning bid, optionally restricted to one client class / time window."""
        values = [
            sample.price_bytes
            for sample in self._samples
            if sample.time >= since
            and (client_class is None or sample.client_class == client_class)
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def average_by_class(self, since: float = 0.0) -> Dict[str, float]:
        """Mean winning bid per client class (the two bars of Figure 5)."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for sample in self._samples:
            if sample.time < since:
                continue
            sums[sample.client_class] = sums.get(sample.client_class, 0.0) + sample.price_bytes
            counts[sample.client_class] = counts.get(sample.client_class, 0) + 1
        return {cls: sums[cls] / counts[cls] for cls in sums}

    def percentile(self, fraction: float, client_class: Optional[str] = None) -> float:
        """The ``fraction`` quantile of winning bids (nearest-rank)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        values = sorted(
            sample.price_bytes
            for sample in self._samples
            if client_class is None or sample.client_class == client_class
        )
        if not values:
            return 0.0
        rank = max(0, min(len(values) - 1, math.ceil(fraction * len(values)) - 1))
        return values[rank]

    def free_admissions(self) -> int:
        """How many requests were admitted at a price of zero bytes."""
        return sum(1 for sample in self._samples if sample.price_bytes == 0.0)

    def total_revenue_bytes(self, client_class: Optional[str] = None) -> float:
        """Sum of all winning bids (the dummy bytes the thinner had to sink)."""
        return sum(
            sample.price_bytes
            for sample in self._samples
            if client_class is None or sample.client_class == client_class
        )

    def history(self) -> List[tuple[float, float]]:
        """(time, price) pairs, ready to plot the price dynamics over a run."""
        return [(sample.time, sample.price_bytes) for sample in self._samples]
