"""Thinner base machinery shared by every front-end variant.

A thinner sits between clients and the protected server (Figure 1(b) of the
paper).  Concrete subclasses differ in how they *encourage* clients and how
they pick the next request when the server frees up:

* :class:`repro.core.auction.VirtualAuctionThinner` — explicit payment
  channel + highest-bid auction (§3.3, the implemented/evaluated variant);
* :class:`repro.core.retry.RandomDropThinner` — in-band aggressive retries
  with proportional (lottery) admission (§3.2);
* :class:`repro.core.quantum.QuantumAuctionThinner` — per-quantum auctions
  for heterogeneous requests (§5);
* :class:`repro.core.admission.NoDefenseThinner` — the undefended baseline.

Clients interact with a thinner through a small protocol:

* the client delivers a request by calling :meth:`ThinnerBase.receive_request`
  (the request bytes themselves travel as a flow; the client invokes this
  from that flow's completion callback);
* the thinner calls ``client.on_encouraged(request)`` when the client should
  start paying; the client opens a :class:`~repro.core.payment.PaymentChannel`
  and registers it with :meth:`ThinnerBase.register_payment`;
* the thinner calls ``client.on_response(request, response)`` when the
  server has finished the request, and ``client.on_dropped(request, reason)``
  if the request is abandoned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol

from repro.constants import PAYMENT_CHANNEL_TIMEOUT
from repro.errors import ThinnerError
from repro.core.bidindex import KineticBidIndex
from repro.core.payment import PaymentChannel
from repro.core.pricing import PriceBook
from repro.httpd.messages import Request, RequestState, Response
from repro.httpd.server import EmulatedServer
from repro.simnet.engine import Engine
from repro.simnet.host import Host
from repro.simnet.network import FluidNetwork


class ClientProtocol(Protocol):
    """What a thinner needs from a client object."""

    host: Host

    def on_encouraged(self, request: Request) -> None:
        """The thinner wants payment for ``request``."""

    def on_response(self, request: Request, response: Response) -> None:
        """The server finished ``request``."""

    def on_dropped(self, request: Request, reason: str) -> None:
        """The thinner or server abandoned ``request``."""


@dataclass
class Contender:
    """A request currently contending for the server at the thinner."""

    request: Request
    client: ClientProtocol
    channel: Optional[PaymentChannel] = None
    encouraged: bool = False
    arrived_at: float = 0.0
    #: Thinner-local insertion sequence; the last tie-break of the selection
    #: contract (see :meth:`ThinnerBase._best_contender`).
    seq: int = 0
    lottery_baseline: float = 0.0  # used by the retry variant

    def bid(self, sync: bool = False) -> float:
        """The contender's current bid in bytes."""
        if self.channel is None:
            return 0.0
        return self.channel.balance(sync=sync)

    def peek_bid(self, now: float) -> float:
        """The contender's current bid, computed without touching flow state."""
        if self.channel is None:
            return 0.0
        return self.channel.peek_balance(now)

    def total_paid(self, sync: bool = False) -> float:
        """Everything this contender has paid so far, in bytes."""
        if self.channel is None:
            return 0.0
        return self.channel.total_paid(sync=sync)


@dataclass
class ThinnerStats:
    """Counters every thinner variant keeps."""

    requests_received: int = 0
    requests_admitted: int = 0
    requests_served: int = 0
    requests_dropped: int = 0
    free_admissions: int = 0
    auctions_held: int = 0
    payment_bytes_sunk: float = 0.0
    received_by_class: Dict[str, int] = field(default_factory=dict)
    served_by_class: Dict[str, int] = field(default_factory=dict)

    def record_received(self, request: Request) -> None:
        self.requests_received += 1
        self.received_by_class[request.client_class] = (
            self.received_by_class.get(request.client_class, 0) + 1
        )

    def record_served(self, request: Request) -> None:
        self.requests_served += 1
        self.served_by_class[request.client_class] = (
            self.served_by_class.get(request.client_class, 0) + 1
        )


class ThinnerBase:
    """Request bookkeeping, response delivery and drop handling."""

    def __init__(
        self,
        engine: Engine,
        network: FluidNetwork,
        server: EmulatedServer,
        host: Host,
        encouragement_delay: float = 0.0,
        payment_timeout: float = PAYMENT_CHANNEL_TIMEOUT,
        max_contenders: Optional[int] = None,
    ) -> None:
        if encouragement_delay < 0:
            raise ThinnerError("encouragement_delay must be non-negative")
        if max_contenders is not None and max_contenders <= 0:
            raise ThinnerError("max_contenders must be positive or None")
        self.engine = engine
        self.network = network
        self.server = server
        self.host = host
        #: Extra processing/backlog delay before the encouragement reaches the
        #: client, on top of propagation (the paper measured ~0.35 s of this
        #: under heavy load, §7.3).
        self.encouragement_delay = encouragement_delay
        self.payment_timeout = payment_timeout
        self.max_contenders = max_contenders

        # The deployment can install a bounded price-book factory on the
        # network (rollup telemetry); None keeps the exact PriceBook.
        price_book_factory = getattr(network, "price_book_factory", None)
        self.prices = PriceBook() if price_book_factory is None else price_book_factory()
        self.stats = ThinnerStats()
        #: Shared hot-path instrumentation (same object the bench snapshots).
        self.counters = network.counters
        self._contenders: Dict[int, Contender] = {}
        self._owners: Dict[int, ClientProtocol] = {}
        #: Kinetic index over the contenders' bid trajectories; kept in sync
        #: by the ``_add_contender``/``_remove_contender`` pair and refreshed
        #: by payment-channel ``on_bid_change`` notifications.
        self._bid_index = KineticBidIndex(
            self.counters,
            store=network.soa if getattr(network, "vectorized", False) else None,
        )
        self._next_seq = 0
        self._server_idle = True
        #: Gray-failure admission stall (the ``stall`` fault): a stalled
        #: thinner keeps receiving requests and sinking payment bytes but
        #: declines every server-ready offer, so nothing is admitted.
        self.stalled = False

        server.on_request_done = self._request_done
        server.on_ready = self._on_server_ready

    # -- public API used by clients ------------------------------------------------

    def receive_request(self, request: Request, client: ClientProtocol) -> None:
        """A request has fully arrived at the thinner."""
        request.arrived_at = self.engine.now
        request.state = RequestState.CONTENDING
        self.stats.record_received(request)
        self._owners[request.request_id] = client
        self._handle_arrival(request, client)

    def register_payment(self, request: Request, channel: PaymentChannel) -> None:
        """The client opened a payment channel for ``request``."""
        contender = self._contenders.get(request.request_id)
        if contender is None:
            # The request won an auction (or was dropped) while the
            # registration was in flight; stop the channel immediately.
            channel.close()
            return
        contender.channel = channel
        # From here on the fluid allocator pushes every trajectory change
        # (rate re-shares, POST completions, quantum consumption) into the
        # bid index instead of auctions pulling n bids.
        channel.on_bid_change = self._channel_bid_changed
        self._bid_index.refresh(contender)

    @property
    def contending_count(self) -> int:
        """Number of requests currently contending."""
        return len(self._contenders)

    def contenders(self) -> list[Contender]:
        """The current contenders (a copy, in arrival order)."""
        return list(self._contenders.values())

    # -- hooks for subclasses ---------------------------------------------------------

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        raise NotImplementedError

    def _server_ready(self) -> None:
        raise NotImplementedError

    # -- admission stall (gray failure) -------------------------------------------------

    def _on_server_ready(self) -> None:
        """Server-ready gate: a stalled thinner declines the offer.

        Crucially the stalled branch does *not* set ``_server_idle`` — the
        variants' free-admission fast path stays disabled, so arrivals keep
        contending (and paying) without anything being admitted.  In pooled
        mode the shared slot's round-robin simply moves on to the next
        shard, exactly as it does for a shard with nothing to offer.
        """
        if self.stalled:
            return
        self._server_ready()

    def set_stalled(self, stalled: bool) -> None:
        """Start or stop the ``stall`` gray failure."""
        if stalled == self.stalled:
            return
        self.stalled = stalled
        if stalled:
            # Close the free-admission window: the next arrival must contend.
            self._server_idle = False
        elif not self.server.busy:
            # Resume: take the offer we declined while stalled (if the slot
            # is still free; in pooled mode another shard may hold it).
            self._server_ready()

    # -- shared helpers -----------------------------------------------------------------

    def _add_contender(self, request: Request, client: ClientProtocol) -> Contender:
        contender = Contender(
            request=request, client=client, arrived_at=self.engine.now,
            seq=self._next_seq,
        )
        self._next_seq += 1
        self._contenders[request.request_id] = contender
        self._bid_index.add(contender, self.engine.now)
        if self.max_contenders is not None and len(self._contenders) > self.max_contenders:
            self._evict_one(exempt=request.request_id)
        return contender

    def _remove_contender(self, request_id: int) -> Optional[Contender]:
        """Take a contender out of both the contender map and the bid index."""
        contender = self._contenders.pop(request_id, None)
        if contender is not None:
            self._bid_index.remove(request_id)
        return contender

    def _reinsert_contender(self, contender: Contender) -> None:
        """Put a previously-removed contender back (quantum suspension).

        Note: re-insertion lands at the *end* of the contender map, so a
        variant that reinserts must not also rely on
        :meth:`_oldest_contender`'s insertion-order == arrival-order
        invariant (the quantum thinner never does).
        """
        self._contenders[contender.request.request_id] = contender
        self._bid_index.add(contender, self.engine.now)

    def _count_auction(self) -> None:
        """Record one winner-selection decision in both counter surfaces."""
        self.stats.auctions_held += 1
        self.counters.auctions_held += 1

    def _channel_bid_changed(self, channel: PaymentChannel) -> None:
        """A payment channel's bid trajectory changed: push a fresh index key."""
        contender = self._contenders.get(channel.request_id)
        if contender is not None and contender.channel is channel:
            self._bid_index.refresh(contender)

    # -- the selection contract ---------------------------------------------------------
    #
    # Every winner/eviction decision in the thinner family reduces to one of
    # these three queries.  The shared contract (unit-tested in
    # tests/test_bidindex.py):
    #
    # * ``_best_contender``  maximises ``(peek_bid(now), -arrived_at)`` — the
    #   highest bidder wins, earlier arrival wins ties, and among fully equal
    #   keys the earlier-inserted contender wins (matching the first-wins
    #   behaviour of the historical linear scans, whose ``best_key = (-1.0,
    #   0.0)`` sentinel is gone with them);
    # * ``_worst_contender`` minimises ``(bid, -arrived_at)`` — the eviction
    #   victim is the lowest payer, with the *latest* arrival evicted on ties;
    # * ``_oldest_contender`` is the FIFO head (arrival order == insertion
    #   order, so this is O(1) on the contender map).

    def _best_contender(self) -> Optional[Contender]:
        """The contender that has paid the most (ties broken by arrival order)."""
        return self._bid_index.best(self.engine.now)

    def _worst_contender(self, exempt: Optional[int] = None) -> Optional[Contender]:
        """The lowest-bidding contender, skipping request ``exempt``."""
        return self._bid_index.worst(self.engine.now, exempt)

    def _oldest_contender(self) -> Optional[Contender]:
        """The earliest-arrived contender still contending."""
        if not self._contenders:
            return None
        return next(iter(self._contenders.values()))

    def _evict_one(self, exempt: Optional[int] = None) -> None:
        """Drop the lowest-paying contender (connection-descriptor pressure, §6)."""
        victim = self._worst_contender(exempt)
        if victim is None:
            return
        self._drop(victim.request, "evicted")

    def _encourage(self, contender: Contender) -> None:
        """Tell the client to start paying (after propagation plus backlog delay)."""
        delay = (
            self.network.topology.one_way_delay(self.host, contender.client.host)
            + self.encouragement_delay
        )
        self.engine.schedule_after(delay, self._deliver_encouragement, contender)

    def _deliver_encouragement(self, contender: Contender) -> None:
        if contender.request.request_id not in self._contenders:
            return
        contender.encouraged = True
        contender.request.encouraged_at = self.engine.now
        contender.client.on_encouraged(contender.request)

    def _admit(self, contender: Contender, price_bytes: float, close_channel: bool = True) -> None:
        """Hand a contender's request to the server and charge it ``price_bytes``."""
        request = contender.request
        if close_channel and contender.channel is not None:
            total = contender.channel.close()
            request.bytes_paid = total
            self.stats.payment_bytes_sunk += total
        elif contender.channel is not None:
            request.bytes_paid = contender.channel.total_paid()
        request.price_paid = price_bytes
        self.prices.record(self.engine.now, price_bytes, request.client_class, request.request_id)
        if price_bytes == 0.0:
            self.stats.free_admissions += 1
        self._remove_contender(request.request_id)
        self.stats.requests_admitted += 1
        self._server_idle = False
        self.server.submit(request)

    def _pop_owner(self, request_id: int) -> Optional[ClientProtocol]:
        """Detach and return the client that owns ``request_id`` (if any).

        Part of the failover protocol: the fault injector uses it to notify
        the owner of an aborted in-slot request.  Proxy thinners (the
        adaptive engagement controller) override it to search their sides.
        """
        return self._owners.pop(request_id, None)

    def _drop(self, request: Request, reason: str) -> None:
        """Abandon a contending request and notify its client."""
        contender = self._remove_contender(request.request_id)
        if contender is not None and contender.channel is not None:
            paid = contender.channel.close()
            request.bytes_paid = paid
            self.stats.payment_bytes_sunk += paid
        request.state = RequestState.DROPPED
        request.drop_reason = reason
        self.stats.requests_dropped += 1
        client = self._owners.pop(request.request_id, None)
        if client is not None:
            delay = self.network.topology.one_way_delay(self.host, client.host)
            self.engine.schedule_after(delay, client.on_dropped, request, reason)

    def _request_done(self, request: Request) -> None:
        """The server finished a request: return the response to its owner."""
        self.stats.record_served(request)
        client = self._owners.pop(request.request_id, None)
        if client is None:  # pragma: no cover - defensive
            return
        response = Response(request=request, produced_at=self.engine.now)
        delay = self.network.topology.one_way_delay(self.host, client.host)
        self.engine.schedule_after(delay, client.on_response, request, response)
