"""Scaling the thinner out to a sharded fleet (§4.3).

The paper's condition C1 says the thinner must be provisioned to absorb a
full attack's inflated traffic, and §4.3 sketches how: "this defense scales
...  one can deploy many thinners behind a load balancer" — each front-end
absorbs a slice of the payment traffic, and the aggregate fleet bandwidth is
what must cover ``G + B``.  This module supplies the pieces a
:class:`~repro.core.frontend.Deployment` uses when
``DeploymentConfig.thinner_shards > 1``:

* :class:`ShardRouter` (re-exported from :mod:`repro.core.routing`) — the
  dispatch strategy that pins each client to one front-end shard (the moral
  equivalent of DNS round-robin or a consistent-hashing load balancer;
  clients stick to their shard for the whole run, as browsers stick to a
  resolved address).  The strategy registry in ``core/routing.py`` supplies
  the legacy hash/least-loaded/random policies plus power-of-two-choices,
  weighted-by-measured-sink-rate, and sticky-with-spill;
* :class:`PooledAdmission` / :class:`PooledServerView` — the shared-server
  coordination used by the ``"pooled"`` admission mode, where every shard
  can claim any freed server slot;
* ``"partitioned"`` admission needs no coordinator: the deployment gives
  each shard its own :class:`~repro.httpd.server.EmulatedServer` running at
  ``c / shards``, so a shard's auctions only ever fill its own slots.

The two admission modes bracket how a real fleet shares the back-end:

* **partitioned** — each front-end owns a fixed ``1/N`` slice of the
  server's capacity (e.g. a dedicated worker pool per front-end).  Shards
  are fully independent, so every thinner variant — including the
  suspend/resume quantum thinner of §5 — works unchanged.
* **pooled** — all front-ends feed one shared server, and a freed slot goes
  to the next shard (round-robin among shards with waiting contenders).
  Payments never compare across shards — each shard auctions only its own
  contenders, exactly like independent thinners behind a load balancer.
  The quantum thinner is not supported in this mode: it suspends and
  resumes "the" active request, which is ill-defined when another shard's
  request may hold the shared slot.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from statistics import median
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.routing import (  # noqa: F401  (re-exported for compatibility)
    ROUTER_STRATEGIES,
    ROUTER_STRATEGY_NAMES,
    RouterSpec,
    SHARD_POLICIES,
    ShardRouter,
)
from repro.errors import ThinnerError
from repro.httpd.messages import Request
from repro.httpd.server import EmulatedServer

#: How the fleet shares the protected server's capacity.
ADMISSION_MODES = ("partitioned", "pooled")

#: Drop reason recorded when the health prober drains an ejected shard.
EJECT_REASON = "health-ejected"


class PooledServerView:
    """One shard's view of the shared server in ``pooled`` admission mode.

    Thinners drive their server through a narrow surface — ``busy``,
    ``submit``, ``capacity_rps``/``mean_service_time``, and the
    ``on_request_done``/``on_ready`` callbacks.  The view forwards the
    queries to the real :class:`~repro.httpd.server.EmulatedServer` and
    routes the callbacks through the :class:`PooledAdmission` coordinator,
    so each shard believes it owns a (frequently busy) server of the full
    capacity ``c``.
    """

    def __init__(self, pool: "PooledAdmission", shard_index: int) -> None:
        self._pool = pool
        self._server = pool.server
        self.shard_index = shard_index
        #: Set by :class:`~repro.core.thinner.ThinnerBase` at construction.
        self.on_request_done: Optional[Callable[[Request], None]] = None
        self.on_ready: Optional[Callable[[], None]] = None

    # -- queries forwarded to the shared server --------------------------------

    @property
    def busy(self) -> bool:
        return self._server.busy

    @property
    def capacity_rps(self) -> float:
        return self._server.capacity_rps

    @property
    def mean_service_time(self) -> float:
        return self._server.mean_service_time

    @property
    def stats(self):
        return self._server.stats

    # -- the one mutation a pooled shard may perform ----------------------------

    def submit(self, request: Request) -> None:
        """Claim the shared slot for one of this shard's requests."""
        self._pool.note_submit(request, self.shard_index)
        self._server.submit(request)


class PooledAdmission:
    """Round-robin slot grants over one shared server (``pooled`` mode).

    The coordinator owns the real server's callbacks.  When a request
    finishes, its response is routed back to the shard that submitted it;
    when the slot frees up, the shards are *offered* it in round-robin
    order starting after the last shard that admitted, and the first shard
    whose winner-selection submits a request keeps it.  A shard with no
    contenders declines the offer by marking itself idle (its
    ``_server_ready`` hook returns without submitting), exactly as a
    single thinner does when its contender set is empty.
    """

    def __init__(self, server: EmulatedServer) -> None:
        self.server = server
        self.views: List[PooledServerView] = []
        self._owner_by_request: dict[int, int] = {}
        self._next_offer = 0
        #: Liveness mask maintained by the fault injector: dead shards are
        #: skipped by the round-robin offer loop until healed.
        self.alive: List[bool] = []
        server.on_request_done = self._request_done
        server.on_ready = self._slot_freed

    def view(self) -> PooledServerView:
        """Create the server view for the next shard."""
        view = PooledServerView(self, len(self.views))
        self.views.append(view)
        self.alive.append(True)
        return view

    # -- failover hooks (driven by the fault injector) ---------------------------

    def set_alive(self, shard_index: int, alive: bool) -> None:
        """Mark a shard dead (skipped by slot offers) or alive again."""
        self.alive[shard_index] = alive

    def reclaim(self, shard_index: int) -> Optional[Request]:
        """Take back the shared slot if ``shard_index`` currently holds it.

        Returns the in-flight request (for the caller to abort and account)
        or ``None`` when the slot is free or another shard's.  The owner
        entry is dropped so a later completion can never route to the dead
        shard's view.
        """
        current = self.server.current
        if current is None:
            return None
        if self._owner_by_request.get(current.request_id) != shard_index:
            return None
        del self._owner_by_request[current.request_id]
        return current

    # -- bookkeeping ------------------------------------------------------------

    def note_submit(self, request: Request, shard_index: int) -> None:
        if self.server.busy:  # pragma: no cover - EmulatedServer raises too
            raise ThinnerError(
                f"shard {shard_index} submitted while the shared server is busy"
            )
        self._owner_by_request[request.request_id] = shard_index

    # -- callback routing -------------------------------------------------------

    def _request_done(self, request: Request) -> None:
        owner = self._owner_by_request.pop(request.request_id, None)
        if owner is None:  # pragma: no cover - defensive
            return
        view = self.views[owner]
        if view.on_request_done is not None:
            view.on_request_done(request)

    def _slot_freed(self) -> None:
        count = len(self.views)
        for step in range(count):
            index = (self._next_offer + step) % count
            if not self.alive[index]:
                continue  # dead shards sit out the rotation until healed
            view = self.views[index]
            if view.on_ready is not None:
                view.on_ready()
            if self.server.busy:
                # This shard took the slot; the next free slot is offered to
                # its successor first (round-robin fairness across shards).
                self._next_offer = (index + 1) % count
                return
        # No shard had a contender: every shard has marked itself idle and
        # the next arrival anywhere in the fleet is admitted for free.


@dataclass(frozen=True)
class HealthProbeSpec:
    """Configuration for the fleet's gray-failure health prober.

    A fail-stop kill is visible (the access link goes down); a gray failure
    is not — a degraded, lossy, or stalled shard still answers probes, so a
    liveness mask never catches it.  The prober instead watches each shard's
    *work rates* — admission grants per second and payment bytes sunk per
    second — and ejects outliers that fall below ``eject_fraction`` of the
    fleet median on either signal.

    All fields are JSON-round-trippable so scenario specs can carry a probe
    configuration through serialization and sweeps.
    """

    #: Seconds between probe ticks.
    interval_s: float = 0.5
    #: EWMA smoothing weight applied to each new per-tick rate sample.
    alpha: float = 0.3
    #: Eject a shard whose smoothed rate drops below this fraction of the
    #: fleet median (on either the admission or the payment-sink signal).
    eject_fraction: float = 0.3
    #: Seconds an ejected shard sits out before probation readmits it.
    holddown_s: float = 3.0
    #: Probe ticks observed before a shard becomes eligible for ejection.
    min_samples: int = 3

    def validate(self) -> None:
        if self.interval_s <= 0:
            raise ThinnerError(f"probe interval_s must be positive, got {self.interval_s}")
        if not 0.0 < self.alpha <= 1.0:
            raise ThinnerError(f"probe alpha must be in (0, 1], got {self.alpha}")
        if not 0.0 < self.eject_fraction < 1.0:
            raise ThinnerError(
                f"probe eject_fraction must be in (0, 1), got {self.eject_fraction}"
            )
        if self.holddown_s < 0:
            raise ThinnerError(f"probe holddown_s must be non-negative, got {self.holddown_s}")
        if self.min_samples < 1:
            raise ThinnerError(f"probe min_samples must be at least 1, got {self.min_samples}")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HealthProbeSpec":
        return cls(
            interval_s=float(data.get("interval_s", 0.5)),
            alpha=float(data.get("alpha", 0.3)),
            eject_fraction=float(data.get("eject_fraction", 0.3)),
            holddown_s=float(data.get("holddown_s", 3.0)),
            min_samples=int(data.get("min_samples", 3)),
        )


class HealthProber:
    """Ejects gray-failing shards from dispatch based on observed work rates.

    State machine per shard::

        healthy --(rate < fraction x median, min_samples seen)--> ejected
        ejected --(holddown_s elapses)--> probation (readmitted, stats reset)
        probation --(new pins + healthy rates)--> healthy

    Every ``interval_s`` the prober differentiates each live shard's
    cumulative admission-grant count and cumulative payment-byte *arrivals*
    (bytes already sunk plus the open contenders' current balances, peeked
    without touching flow state — sunk bytes alone lag a capacity collapse
    by however much stock the open channels accumulated beforehand) into
    per-second rates and folds them into per-shard EWMAs.  A shard is ejected when
    either EWMA falls below ``eject_fraction`` of the fleet median (taken
    over live, non-ejected shards), provided it has been observed for
    ``min_samples`` ticks, still has clients pinned to it, and at least one
    other routable shard would remain.  Ejection re-pins the shard's clients
    immediately (the operator's load balancer flips, not a DNS TTL) via the
    same sticky :meth:`ShardRouter.reassign` path the fault injector uses.

    After ``holddown_s`` the shard is readmitted on probation: its EWMAs and
    sample counts reset, and because re-pinned clients never migrate back,
    the ``counts[shard] > 0`` eligibility guard keeps an idle readmitted
    shard from being re-ejected for serving nobody.
    """

    def __init__(self, deployment, spec: HealthProbeSpec) -> None:
        spec.validate()
        self.deployment = deployment
        self.spec = spec
        self.engine = deployment.engine
        shards = deployment.config.thinner_shards
        self.shards = shards
        self._admit_last: List[int] = [0] * shards
        self._sink_last: List[float] = [0.0] * shards
        self._admit_ewma: List[float] = [0.0] * shards
        self._sink_ewma: List[float] = [0.0] * shards
        self._samples: List[int] = [0] * shards
        #: Absolute readmission deadline per ejected shard (None = healthy).
        self._probation_until: List[Optional[float]] = [None] * shards
        self._task = None

        # -- the FailoverMetrics surface ------------------------------------
        self.ejections = 0
        self.readmits = 0
        self.repinned_clients = 0
        self.probe_samples = 0
        self.timeline: List[Tuple[float, str, int]] = []

    def arm(self) -> None:
        """Start the periodic probe loop (idempotent per deployment run)."""
        now = self.engine.now
        self._admit_last = [
            t.stats.requests_admitted for t in self.deployment.thinners
        ]
        self._sink_last = [
            self._payment_arrived(shard, now) for shard in range(self.shards)
        ]
        self._task = self.engine.schedule_every(self.spec.interval_s, self._tick)

    def _payment_arrived(self, shard: int, now: float) -> float:
        """Cumulative payment bytes that reached ``shard`` (sunk + open bids)."""
        thinner = self.deployment.thinners[shard]
        total = thinner.stats.payment_bytes_sunk
        for contender in thinner._contenders.values():
            total += contender.peek_bid(now)
        return total

    # -- probe loop -------------------------------------------------------------

    def _tick(self) -> None:
        now = self.engine.now
        router = self.deployment._router
        self._expire_probations(now, router)
        spec = self.spec
        for shard in range(self.shards):
            if not router.alive[shard]:
                # Killed shards are the fault injector's problem; forget any
                # smoothed history so a heal starts from a clean slate.
                self._reset_shard(shard)
                continue
            stats = self.deployment.thinners[shard].stats
            arrived = self._payment_arrived(shard, now)
            admit_rate = (stats.requests_admitted - self._admit_last[shard]) / spec.interval_s
            sink_rate = (arrived - self._sink_last[shard]) / spec.interval_s
            self._admit_last[shard] = stats.requests_admitted
            self._sink_last[shard] = arrived
            if self._samples[shard] == 0:
                self._admit_ewma[shard] = admit_rate
                self._sink_ewma[shard] = sink_rate
            else:
                self._admit_ewma[shard] = (
                    spec.alpha * admit_rate + (1.0 - spec.alpha) * self._admit_ewma[shard]
                )
                self._sink_ewma[shard] = (
                    spec.alpha * sink_rate + (1.0 - spec.alpha) * self._sink_ewma[shard]
                )
            self._samples[shard] += 1
            self.probe_samples += 1
        self._maybe_eject(now, router)

    def _expire_probations(self, now: float, router: ShardRouter) -> None:
        for shard in range(self.shards):
            until = self._probation_until[shard]
            if until is not None and now >= until:
                self._probation_until[shard] = None
                router.set_ejected(shard, False)
                self._reset_shard(shard)
                self.readmits += 1
                self.timeline.append((now, "readmit", shard))

    def _reset_shard(self, shard: int) -> None:
        stats = self.deployment.thinners[shard].stats
        self._admit_last[shard] = stats.requests_admitted
        self._sink_last[shard] = self._payment_arrived(shard, self.engine.now)
        self._admit_ewma[shard] = 0.0
        self._sink_ewma[shard] = 0.0
        self._samples[shard] = 0

    def _maybe_eject(self, now: float, router: ShardRouter) -> None:
        spec = self.spec
        fleet = [
            shard
            for shard in range(self.shards)
            if router.alive[shard] and not router.ejected[shard]
        ]
        if len(fleet) < 2:
            return
        admit_median = median(self._admit_ewma[shard] for shard in fleet)
        sink_median = median(self._sink_ewma[shard] for shard in fleet)
        for shard in fleet:
            if self._samples[shard] < spec.min_samples:
                continue
            if router.counts[shard] <= 0:
                # Nobody is pinned here (fresh off probation): zero rates
                # reflect an empty shard, not a sick one.
                continue
            starved_admit = (
                admit_median > 0.0
                and self._admit_ewma[shard] < spec.eject_fraction * admit_median
            )
            starved_sink = (
                sink_median > 0.0
                and self._sink_ewma[shard] < spec.eject_fraction * sink_median
            )
            if not (starved_admit or starved_sink):
                continue
            if len(router.routable_shards()) < 2:
                return  # never eject the last routable shard
            self._eject(now, router, shard)

    def _eject(self, now: float, router: ShardRouter, shard: int) -> None:
        router.set_ejected(shard, True)
        self.ejections += 1
        self.timeline.append((now, "eject", shard))
        if self.spec.holddown_s > 0:
            self._probation_until[shard] = now + self.spec.holddown_s
        # Drain the sick front-end: evict its contenders (channels close,
        # owners get ordinary drop notifications and can retry against their
        # new shard) exactly as the kill path does — a moved client cannot
        # leave a request contending on a shard it no longer pays.
        thinner = self.deployment.thinners[shard]
        for contender in thinner.contenders():
            thinner._drop(contender.request, EJECT_REASON)
        # Move the shard's clients off it now.  Aborting their in-flight
        # uploads mirrors the kill path (a client cannot keep a request on
        # shard A while its channel state migrates to shard B), but unlike a
        # kill the re-pin is immediate: the operator flipped the balancer,
        # no DNS cache has to expire.
        for client in self.deployment.clients_of_shard(shard):
            client.shard_failed()
            new_shard = router.reassign(client.name, client.shard)
            client.repin(new_shard)
            self.repinned_clients += 1
