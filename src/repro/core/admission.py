"""The undefended baseline: no encouragement, overload handled by dropping.

The paper's "without speak-up" runs (the OFF bars of Figures 2 and 3) model a
server that, when overloaded, serves what it can and randomly drops the
excess.  Clients are never asked to pay; the thinner simply keeps a pool of
pending requests and, whenever the server frees up, picks one at random
(or the oldest, with the FIFO policy).  Because bad clients issue requests
at twenty times the rate of good ones and keep twenty outstanding, the pool
— and therefore the server — is dominated by them.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ThinnerError
from repro.core.thinner import ClientProtocol, Contender, ThinnerBase
from repro.httpd.messages import Request
from repro.rng import RandomStream

#: Admission policies the undefended baseline supports.
POLICIES = ("random", "fifo")


class NoDefenseThinner(ThinnerBase):
    """Pass-through front-end: no payment, drop/queue on overload."""

    def __init__(
        self,
        *args,
        rng: RandomStream,
        policy: str = "random",
        pending_limit: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if policy not in POLICIES:
            raise ThinnerError(f"unknown admission policy {policy!r}; expected one of {POLICIES}")
        if pending_limit is not None and pending_limit <= 0:
            raise ThinnerError("pending_limit must be positive or None")
        self.rng = rng
        self.policy = policy
        #: Optional bound on the pending pool (a full listen queue); arrivals
        #: beyond it are dropped outright.
        self.pending_limit = pending_limit

    def _handle_arrival(self, request: Request, client: ClientProtocol) -> None:
        if self._server_idle and not self.server.busy:
            contender = Contender(request=request, client=client, arrived_at=self.engine.now)
            self._admit(contender, price_bytes=0.0)
            return
        if self.pending_limit is not None and len(self._contenders) >= self.pending_limit:
            self._owners[request.request_id] = client
            self._drop(request, "queue-full")
            return
        self._add_contender(request, client)

    def _server_ready(self) -> None:
        contender = self._pick()
        if contender is None:
            self._server_idle = True
            return
        self._admit(contender, price_bytes=0.0)

    def _pick(self) -> Optional[Contender]:
        if not self._contenders:
            return None
        if self.policy == "fifo":
            # Insertion order is arrival order, so the FIFO head is O(1).
            return self._oldest_contender()
        return self.rng.choice(list(self._contenders.values()))
