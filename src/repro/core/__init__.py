"""The paper's contribution: the speak-up thinner and its mechanisms.

* :mod:`repro.core.payment` — the payment channel (dummy-byte POST streams).
* :mod:`repro.core.auction` — the explicit-payment-channel virtual auction (§3.3).
* :mod:`repro.core.retry` — random drops plus aggressive retries (§3.2).
* :mod:`repro.core.quantum` — the heterogeneous-request extension (§5).
* :mod:`repro.core.admission` — the undefended baseline the paper compares against.
* :mod:`repro.core.pricing` — price bookkeeping ("the going rate ... emerges").
* :mod:`repro.core.fleet` — the sharded thinner fleet (§4.3 scale-out):
  dispatch policies and pooled admission over the shared server.
* :mod:`repro.core.frontend` — Deployment: wires engine, network, server(s),
  thinner(s) and clients together.
"""

from repro.core.fleet import ADMISSION_MODES, SHARD_POLICIES, ShardRouter
from repro.core.payment import PaymentChannel, PaymentChannelState
from repro.core.pricing import PriceBook, PriceSample
from repro.core.thinner import Contender, ThinnerBase, ThinnerStats
from repro.core.auction import VirtualAuctionThinner
from repro.core.retry import RandomDropThinner
from repro.core.quantum import QuantumAuctionThinner
from repro.core.admission import NoDefenseThinner
from repro.core.frontend import Deployment, DeploymentConfig

__all__ = [
    "ADMISSION_MODES",
    "SHARD_POLICIES",
    "ShardRouter",
    "PaymentChannel",
    "PaymentChannelState",
    "PriceBook",
    "PriceSample",
    "Contender",
    "ThinnerBase",
    "ThinnerStats",
    "VirtualAuctionThinner",
    "RandomDropThinner",
    "QuantumAuctionThinner",
    "NoDefenseThinner",
    "Deployment",
    "DeploymentConfig",
]
