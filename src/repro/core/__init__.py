"""The paper's contribution: the speak-up thinner and its mechanisms.

* :mod:`repro.core.payment` — the payment channel (dummy-byte POST streams).
* :mod:`repro.core.auction` — the explicit-payment-channel virtual auction (§3.3).
* :mod:`repro.core.retry` — random drops plus aggressive retries (§3.2).
* :mod:`repro.core.quantum` — the heterogeneous-request extension (§5).
* :mod:`repro.core.admission` — the undefended baseline the paper compares against.
* :mod:`repro.core.pricing` — price bookkeeping ("the going rate ... emerges").
* :mod:`repro.core.frontend` — Deployment: wires engine, network, server,
  thinner and clients together.
"""

from repro.core.payment import PaymentChannel, PaymentChannelState
from repro.core.pricing import PriceBook, PriceSample
from repro.core.thinner import Contender, ThinnerBase, ThinnerStats
from repro.core.auction import VirtualAuctionThinner
from repro.core.retry import RandomDropThinner
from repro.core.quantum import QuantumAuctionThinner
from repro.core.admission import NoDefenseThinner
from repro.core.frontend import Deployment, DeploymentConfig

__all__ = [
    "PaymentChannel",
    "PaymentChannelState",
    "PriceBook",
    "PriceSample",
    "Contender",
    "ThinnerBase",
    "ThinnerStats",
    "VirtualAuctionThinner",
    "RandomDropThinner",
    "QuantumAuctionThinner",
    "NoDefenseThinner",
    "Deployment",
    "DeploymentConfig",
]
