"""Figure 8: good and bad clients sharing a bottleneck link (§7.6).

Topology: 30 clients (2 Mbits/s each) reach the thinner through a shared
40 Mbits/s cable ``l`` (a bottleneck, since they can generate 60 Mbits/s);
10 good and 10 bad clients attach directly.  Server capacity is 50
requests/s.  The split of good/bad behind ``l`` varies over
{5/25, 15/15, 25/5}.

The paper reports that (a) the clients behind ``l`` collectively capture
about half the server (their share of the aggregate bandwidth), but (b)
within that half the bad clients beat the bandwidth-proportional ideal
because their concurrent connections hog ``l``, and (c) the fraction of
bottlenecked good requests served suffers accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.constants import DEFAULT_CLIENT_BANDWIDTH, MBIT
from repro.experiments.base import ExperimentScale
from repro.metrics.summary import ratio
from repro.metrics.tables import format_table
from repro.scenarios.spec import GroupSpec, ScenarioSpec, TopologySpec
from repro.scenarios.runner import Sweep, SweepRunner

#: Paper-scale parameters.
PAPER_BEHIND_BOTTLENECK = 30
PAPER_DIRECT_GOOD = 10
PAPER_DIRECT_BAD = 10
PAPER_BOTTLENECK_BANDWIDTH = 40 * MBIT
PAPER_CAPACITY = 50.0
PAPER_SPLITS = ((5, 25), (15, 15), (25, 5))


@dataclass(frozen=True)
class BottleneckRow:
    """Measurements for one good/bad split behind the bottleneck."""

    good_behind: int
    bad_behind: int
    bottleneck_share_of_server: float
    good_share_of_bottleneck_service: float
    bad_share_of_bottleneck_service: float
    ideal_good_share_of_bottleneck_service: float
    bottlenecked_good_served_fraction: float
    ideal_bottlenecked_good_served_fraction: float


def figure8_shared_bottleneck(
    scale: ExperimentScale,
    splits: Sequence[Tuple[int, int]] = PAPER_SPLITS,
    runner: Optional[SweepRunner] = None,
) -> List[BottleneckRow]:
    """Reproduce Figure 8 for each good/bad split behind the bottleneck."""
    if not splits:
        return []
    runner = runner or SweepRunner()
    behind = scale.clients(PAPER_BEHIND_BOTTLENECK)
    direct_good = scale.clients(PAPER_DIRECT_GOOD)
    direct_bad = scale.clients(PAPER_DIRECT_BAD)
    total_paper = PAPER_BEHIND_BOTTLENECK + PAPER_DIRECT_GOOD + PAPER_DIRECT_BAD
    total_scaled = behind + direct_good + direct_bad
    capacity = PAPER_CAPACITY * total_scaled / total_paper
    bottleneck_bandwidth = PAPER_BOTTLENECK_BANDWIDTH * behind / PAPER_BEHIND_BOTTLENECK

    scaled_splits: List[Tuple[int, int]] = []
    for paper_good_behind, _paper_bad_behind in splits:
        good_behind = max(1, round(behind * paper_good_behind / PAPER_BEHIND_BOTTLENECK))
        good_behind = min(good_behind, behind - 1)
        scaled_splits.append((good_behind, behind - good_behind))

    base = ScenarioSpec(
        name="shared-bottleneck",
        topology=TopologySpec(
            kind="bottleneck", bottleneck_bandwidth_bps=bottleneck_bandwidth
        ),
        groups=(
            GroupSpec(
                count=scaled_splits[0][0],
                client_class="good",
                bandwidth_bps=DEFAULT_CLIENT_BANDWIDTH,
                category="bottleneck-good",
                behind_bottleneck=True,
            ),
            GroupSpec(
                count=scaled_splits[0][1],
                client_class="bad",
                bandwidth_bps=DEFAULT_CLIENT_BANDWIDTH,
                category="bottleneck-bad",
                behind_bottleneck=True,
            ),
            GroupSpec(
                count=direct_good,
                client_class="good",
                bandwidth_bps=DEFAULT_CLIENT_BANDWIDTH,
                category="direct-good",
            ),
            GroupSpec(
                count=direct_bad,
                client_class="bad",
                bandwidth_bps=DEFAULT_CLIENT_BANDWIDTH,
                category="direct-bad",
            ),
        ),
        capacity_rps=capacity,
        duration=scale.duration,
        seed=scale.seed,
    )
    records = runner.run(
        Sweep(base, axes={("groups.0.count", "groups.1.count"): scaled_splits})
    )

    rows: List[BottleneckRow] = []
    for record, (good_behind, bad_behind) in zip(records, scaled_splits):
        result = record.result
        bn_good = result.allocation_by_category.get("bottleneck-good", 0.0)
        bn_bad = result.allocation_by_category.get("bottleneck-bad", 0.0)
        bottleneck_share = bn_good + bn_bad
        rows.append(
            BottleneckRow(
                good_behind=good_behind,
                bad_behind=bad_behind,
                bottleneck_share_of_server=bottleneck_share,
                good_share_of_bottleneck_service=ratio(bn_good, bottleneck_share),
                bad_share_of_bottleneck_service=ratio(bn_bad, bottleneck_share),
                ideal_good_share_of_bottleneck_service=good_behind / (good_behind + bad_behind),
                bottlenecked_good_served_fraction=result.served_fraction_by_category.get(
                    "bottleneck-good", 0.0
                ),
                ideal_bottlenecked_good_served_fraction=_ideal_served_fraction(
                    good_behind, bad_behind, behind, bottleneck_bandwidth, capacity,
                    direct_good, direct_bad,
                ),
            )
        )
    return rows


def _ideal_served_fraction(
    good_behind: int,
    bad_behind: int,
    behind: int,
    bottleneck_bandwidth: float,
    capacity: float,
    direct_good: int,
    direct_bad: int,
) -> float:
    """The paper's footnote-2 ideal: bottlenecked clients split l's bandwidth
    evenly, so each effectively owns l/n of the currency; the served fraction
    of a good client's demand is its proportional server share over its
    demand (capped at 1)."""
    per_client_bandwidth = bottleneck_bandwidth / behind
    direct_bandwidth = (direct_good + direct_bad) * DEFAULT_CLIENT_BANDWIDTH
    total_bandwidth = bottleneck_bandwidth + direct_bandwidth
    good_share = (good_behind * per_client_bandwidth) / total_bandwidth
    good_demand = good_behind * 2.0  # lambda = 2 per good client
    if good_demand == 0:
        return 0.0
    return min(1.0, good_share * capacity / good_demand)


def format_bottleneck(rows: Sequence[BottleneckRow]) -> str:
    """Render Figure 8 as a text table."""
    return format_table(
        headers=[
            "good/bad behind l",
            "l share of server",
            "good share (actual)",
            "good share (ideal)",
            "good served frac",
            "ideal served frac",
        ],
        rows=[
            (
                f"{row.good_behind}/{row.bad_behind}",
                row.bottleneck_share_of_server,
                row.good_share_of_bottleneck_service,
                row.ideal_good_share_of_bottleneck_service,
                row.bottlenecked_good_served_fraction,
                row.ideal_bottlenecked_good_served_fraction,
            )
            for row in rows
        ],
        title="Figure 8: good and bad clients sharing a bottleneck link",
    )
