"""Figures 4 and 5: the latency and byte cost of speak-up.

Both figures come from the same runs as Figure 3's "ON" bars (G = B = 50
Mbits/s at paper scale, capacity swept over {50, 100, 200} requests/s):

* Figure 4 plots the mean and 90th-percentile time that served good
  requests spent uploading dummy bytes;
* Figure 5 plots the average price (bytes uploaded per served request) for
  good and bad clients against the upper bound (G + B)/c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.allocation import FIGURE3_CAPACITIES, PAPER_CLIENT_COUNT
from repro.experiments.base import ExperimentScale, LanScenario
from repro.metrics.tables import format_table
from repro.scenarios.runner import Sweep, SweepRunner


@dataclass(frozen=True)
class CostRow:
    """Costs measured at one server capacity (speak-up on)."""

    capacity_rps: float
    mean_payment_time: float
    p90_payment_time: float
    mean_price_good_bytes: float
    mean_price_bad_bytes: float
    price_upper_bound_bytes: float
    good_fraction_served: float


def figure4_5_costs(
    scale: ExperimentScale,
    paper_capacities: Sequence[float] = FIGURE3_CAPACITIES,
    runner: Optional[SweepRunner] = None,
) -> List[CostRow]:
    """Measure payment time (Figure 4) and price (Figure 5) across capacities."""
    if not paper_capacities:
        return []
    runner = runner or SweepRunner()
    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    capacities = {
        scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients): paper_capacity
        for paper_capacity in paper_capacities
    }
    base = LanScenario(
        good_clients=good,
        bad_clients=bad,
        capacity_rps=next(iter(capacities)),
        defense="speakup",
        duration=scale.duration,
        seed=scale.seed,
    ).to_spec()
    records = runner.run(Sweep(base, axes={"capacity_rps": tuple(capacities)}))
    rows: List[CostRow] = []
    for record in records:
        result = record.result
        rows.append(
            CostRow(
                capacity_rps=capacities[record.overrides["capacity_rps"]],
                mean_payment_time=result.good.payment_time.mean,
                p90_payment_time=result.good.payment_time.p90,
                mean_price_good_bytes=result.mean_price_by_class.get("good", 0.0),
                mean_price_bad_bytes=result.mean_price_by_class.get("bad", 0.0),
                price_upper_bound_bytes=result.price_upper_bound_bytes,
                good_fraction_served=result.good_fraction_served,
            )
        )
    return rows


def format_costs(rows: Sequence[CostRow]) -> str:
    """Render Figures 4 and 5 as one table (seconds and KBytes)."""
    return format_table(
        headers=[
            "capacity",
            "mean_pay_s",
            "p90_pay_s",
            "price_good_KB",
            "price_bad_KB",
            "upper_bound_KB",
        ],
        rows=[
            (
                f"{row.capacity_rps:.0f}",
                row.mean_payment_time,
                row.p90_payment_time,
                row.mean_price_good_bytes / 1000.0,
                row.mean_price_bad_bytes / 1000.0,
                row.price_upper_bound_bytes / 1000.0,
            )
            for row in rows
        ],
        title="Figures 4 & 5: payment time and price per served request (speak-up on, G = B)",
    )
