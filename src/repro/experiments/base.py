"""Shared experiment machinery: scaling, scenario construction, running.

The paper's experiments run 50 clients for 600 seconds on Emulab.  A pure
Python simulation reproduces the same *proportions* at smaller scale, so the
harness is parameterised by an :class:`ExperimentScale`:

* ``ExperimentScale.test()`` — a few clients, a few seconds; used by tests;
* ``ExperimentScale.default()`` — half the paper's client count, 60 seconds;
  used by the benchmark harness (override with the ``REPRO_BENCH_DURATION``
  and ``REPRO_BENCH_CLIENT_SCALE`` environment variables);
* ``ExperimentScale.paper()`` — the full 50 clients / 600 seconds.

Client counts and the server capacity are scaled together, which keeps every
ratio the paper cares about (demand vs. capacity, G vs. B) unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.constants import (
    BAD_CLIENT_RATE,
    BAD_CLIENT_WINDOW,
    DEFAULT_CLIENT_BANDWIDTH,
    GOOD_CLIENT_RATE,
    GOOD_CLIENT_WINDOW,
    PAPER_EXPERIMENT_DURATION,
)
from repro.errors import ExperimentError
from repro.metrics.collector import RunResult
from repro.scenarios.spec import GroupSpec, ScenarioSpec, TopologySpec, freeze_overrides
from repro.scenarios.runner import Sweep, SweepRunner

#: Environment variables the benchmark harness reads.
ENV_DURATION = "REPRO_BENCH_DURATION"
ENV_CLIENT_SCALE = "REPRO_BENCH_CLIENT_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """How big a run to perform relative to the paper's setup."""

    duration: float = 60.0
    client_scale: float = 0.5
    seed: int = 0

    @classmethod
    def test(cls, seed: int = 0) -> "ExperimentScale":
        """Tiny runs for the unit/integration test suite."""
        return cls(duration=12.0, client_scale=0.2, seed=seed)

    @classmethod
    def default(cls, seed: int = 0) -> "ExperimentScale":
        """The benchmark default (overridable through the environment)."""
        duration = float(os.environ.get(ENV_DURATION, 60.0))
        client_scale = float(os.environ.get(ENV_CLIENT_SCALE, 0.5))
        return cls(duration=duration, client_scale=client_scale, seed=seed)

    @classmethod
    def paper(cls, seed: int = 0) -> "ExperimentScale":
        """The paper's full scale: 50 clients, 600 seconds."""
        return cls(duration=PAPER_EXPERIMENT_DURATION, client_scale=1.0, seed=seed)

    def clients(self, paper_count: int) -> int:
        """Scale a client count from the paper's setup (at least 1 if nonzero)."""
        if paper_count == 0:
            return 0
        return max(1, round(paper_count * self.client_scale))

    def capacity(self, paper_capacity: float, paper_clients: int, scaled_clients: int) -> float:
        """Scale the server capacity to keep load/capacity ratios unchanged."""
        if paper_clients == 0:
            return paper_capacity
        return paper_capacity * scaled_clients / paper_clients

    def with_seed(self, seed: int) -> "ExperimentScale":
        """The same scale with a different seed."""
        return replace(self, seed=seed)


@dataclass
class LanScenario:
    """A §7.2-style scenario: all clients on a LAN with the thinner.

    This is a convenience facade over :class:`~repro.scenarios.spec.ScenarioSpec`
    (see :meth:`to_spec`) kept for the common good-vs-bad LAN case.
    """

    good_clients: int
    bad_clients: int
    capacity_rps: float
    defense: str = "speakup"
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH
    good_rate: float = GOOD_CLIENT_RATE
    good_window: int = GOOD_CLIENT_WINDOW
    bad_rate: float = BAD_CLIENT_RATE
    bad_window: int = BAD_CLIENT_WINDOW
    duration: float = 60.0
    seed: int = 0
    encouragement_delay: float = 0.0
    extra_config: Dict = field(default_factory=dict)

    def total_clients(self) -> int:
        return self.good_clients + self.bad_clients

    def validate(self) -> None:
        if self.total_clients() <= 0:
            raise ExperimentError("scenario needs at least one client")
        if self.duration <= 0:
            raise ExperimentError("duration must be positive")
        if self.capacity_rps <= 0:
            raise ExperimentError("capacity must be positive")

    def to_spec(self) -> ScenarioSpec:
        """The equivalent declarative scenario."""
        self.validate()
        groups = ()
        if self.good_clients:
            groups += (
                GroupSpec(
                    count=self.good_clients,
                    client_class="good",
                    bandwidth_bps=self.client_bandwidth_bps,
                    rate_rps=self.good_rate,
                    window=self.good_window,
                ),
            )
        if self.bad_clients:
            groups += (
                GroupSpec(
                    count=self.bad_clients,
                    client_class="bad",
                    bandwidth_bps=self.client_bandwidth_bps,
                    rate_rps=self.bad_rate,
                    window=self.bad_window,
                ),
            )
        return ScenarioSpec(
            name="lan",
            topology=TopologySpec(kind="lan"),
            groups=groups,
            capacity_rps=self.capacity_rps,
            defense=self.defense,
            duration=self.duration,
            seed=self.seed,
            encouragement_delay=self.encouragement_delay,
            config_overrides=freeze_overrides(self.extra_config),
        )


def run_lan_scenario(scenario: LanScenario) -> RunResult:
    """Build, run, and collect one LAN scenario."""
    return scenario.to_spec().run()


def sweep_seeds(
    scenario: LanScenario,
    seeds: Sequence[int],
    runner: Optional[SweepRunner] = None,
) -> List[RunResult]:
    """Run the same scenario under several seeds (for variance estimates)."""
    runner = runner or SweepRunner()
    records = runner.run(Sweep(scenario.to_spec(), seeds=seeds))
    return [record.result for record in records]


def replace_scenario_seed(scenario: LanScenario, seed: int) -> LanScenario:
    """A copy of ``scenario`` with a different seed."""
    copy = LanScenario(**{**scenario.__dict__})
    copy.seed = seed
    return copy
