"""Shared experiment machinery: scaling, scenario construction, running.

The paper's experiments run 50 clients for 600 seconds on Emulab.  A pure
Python simulation reproduces the same *proportions* at smaller scale, so the
harness is parameterised by an :class:`ExperimentScale`:

* ``ExperimentScale.test()`` — a few clients, a few seconds; used by tests;
* ``ExperimentScale.default()`` — half the paper's client count, 60 seconds;
  used by the benchmark harness (override with the ``REPRO_BENCH_DURATION``
  and ``REPRO_BENCH_CLIENT_SCALE`` environment variables);
* ``ExperimentScale.paper()`` — the full 50 clients / 600 seconds.

Client counts and the server capacity are scaled together, which keeps every
ratio the paper cares about (demand vs. capacity, G vs. B) unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.constants import (
    BAD_CLIENT_RATE,
    BAD_CLIENT_WINDOW,
    DEFAULT_CLIENT_BANDWIDTH,
    GOOD_CLIENT_RATE,
    GOOD_CLIENT_WINDOW,
    PAPER_EXPERIMENT_DURATION,
)
from repro.errors import ExperimentError
from repro.clients.population import build_mixed_population
from repro.core.frontend import Deployment, DeploymentConfig
from repro.metrics.collector import RunResult
from repro.simnet.topology import build_lan, uniform_bandwidths

#: Environment variables the benchmark harness reads.
ENV_DURATION = "REPRO_BENCH_DURATION"
ENV_CLIENT_SCALE = "REPRO_BENCH_CLIENT_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """How big a run to perform relative to the paper's setup."""

    duration: float = 60.0
    client_scale: float = 0.5
    seed: int = 0

    @classmethod
    def test(cls, seed: int = 0) -> "ExperimentScale":
        """Tiny runs for the unit/integration test suite."""
        return cls(duration=12.0, client_scale=0.2, seed=seed)

    @classmethod
    def default(cls, seed: int = 0) -> "ExperimentScale":
        """The benchmark default (overridable through the environment)."""
        duration = float(os.environ.get(ENV_DURATION, 60.0))
        client_scale = float(os.environ.get(ENV_CLIENT_SCALE, 0.5))
        return cls(duration=duration, client_scale=client_scale, seed=seed)

    @classmethod
    def paper(cls, seed: int = 0) -> "ExperimentScale":
        """The paper's full scale: 50 clients, 600 seconds."""
        return cls(duration=PAPER_EXPERIMENT_DURATION, client_scale=1.0, seed=seed)

    def clients(self, paper_count: int) -> int:
        """Scale a client count from the paper's setup (at least 1 if nonzero)."""
        if paper_count == 0:
            return 0
        return max(1, round(paper_count * self.client_scale))

    def capacity(self, paper_capacity: float, paper_clients: int, scaled_clients: int) -> float:
        """Scale the server capacity to keep load/capacity ratios unchanged."""
        if paper_clients == 0:
            return paper_capacity
        return paper_capacity * scaled_clients / paper_clients

    def with_seed(self, seed: int) -> "ExperimentScale":
        """The same scale with a different seed."""
        return replace(self, seed=seed)


@dataclass
class LanScenario:
    """A §7.2-style scenario: all clients on a LAN with the thinner."""

    good_clients: int
    bad_clients: int
    capacity_rps: float
    defense: str = "speakup"
    client_bandwidth_bps: float = DEFAULT_CLIENT_BANDWIDTH
    good_rate: float = GOOD_CLIENT_RATE
    good_window: int = GOOD_CLIENT_WINDOW
    bad_rate: float = BAD_CLIENT_RATE
    bad_window: int = BAD_CLIENT_WINDOW
    duration: float = 60.0
    seed: int = 0
    encouragement_delay: float = 0.0
    extra_config: Dict = field(default_factory=dict)

    def total_clients(self) -> int:
        return self.good_clients + self.bad_clients

    def validate(self) -> None:
        if self.total_clients() <= 0:
            raise ExperimentError("scenario needs at least one client")
        if self.duration <= 0:
            raise ExperimentError("duration must be positive")
        if self.capacity_rps <= 0:
            raise ExperimentError("capacity must be positive")


def run_lan_scenario(scenario: LanScenario) -> RunResult:
    """Build, run, and collect one LAN scenario."""
    scenario.validate()
    bandwidths = uniform_bandwidths(scenario.total_clients(), scenario.client_bandwidth_bps)
    topology, hosts, thinner_host = build_lan(bandwidths)
    config = DeploymentConfig(
        server_capacity_rps=scenario.capacity_rps,
        defense=scenario.defense,
        seed=scenario.seed,
        encouragement_delay=scenario.encouragement_delay,
        **scenario.extra_config,
    )
    deployment = Deployment(topology, thinner_host, config)
    build_mixed_population(
        deployment,
        hosts,
        good_count=scenario.good_clients,
        bad_count=scenario.bad_clients,
        good_rate=scenario.good_rate,
        good_window=scenario.good_window,
        bad_rate=scenario.bad_rate,
        bad_window=scenario.bad_window,
    )
    deployment.run(scenario.duration)
    return deployment.results()


def sweep_seeds(scenario: LanScenario, seeds: Sequence[int]) -> List[RunResult]:
    """Run the same scenario under several seeds (for variance estimates)."""
    results = []
    for seed in seeds:
        results.append(run_lan_scenario(replace_scenario_seed(scenario, seed)))
    return results


def replace_scenario_seed(scenario: LanScenario, seed: int) -> LanScenario:
    """A copy of ``scenario`` with a different seed."""
    copy = LanScenario(**{**scenario.__dict__})
    copy.seed = seed
    return copy
