"""Figures 6 and 7: heterogeneous client bandwidths and RTTs (§7.5).

Figure 6: 50 all-good clients in five bandwidth categories (category ``i``
has ``0.5 · i`` Mbits/s), server capacity 10 requests/s.  The fraction of
the server captured by each category should track the bandwidth-proportional
ideal.

Figure 7: 50 clients in five RTT categories (category ``i`` has
``100 · i`` ms to the thinner), all 2 Mbits/s, capacity 10 requests/s, run
once with all-good clients and once with all-bad clients.  Good clients with
longer RTTs get less of the server (slow start and the inter-POST quiescence
cost them); bad clients, whose many concurrent channels hide those gaps, are
largely unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentScale
from repro.metrics.tables import format_table
from repro.scenarios.registry import build_scenario
from repro.scenarios.runner import SweepRunner

#: Paper-scale setup shared by both figures: 5 categories of 10 clients.
PAPER_CATEGORY_COUNT = 5
PAPER_CLIENTS_PER_CATEGORY = 10
PAPER_CAPACITY = 10.0


@dataclass(frozen=True)
class CategoryRow:
    """Server share captured by one client category."""

    category: str
    parameter: float            # bandwidth in Mbit/s (Fig 6) or RTT in ms (Fig 7)
    clients: int
    observed_allocation: float
    ideal_allocation: float


def figure6_bandwidth_heterogeneity(
    scale: ExperimentScale, runner: Optional[SweepRunner] = None
) -> List[CategoryRow]:
    """Reproduce Figure 6: allocation across bandwidth categories, all good."""
    runner = runner or SweepRunner()
    clients_per_category = max(1, scale.clients(PAPER_CLIENTS_PER_CATEGORY))
    capacity = PAPER_CAPACITY * (clients_per_category / PAPER_CLIENTS_PER_CATEGORY)
    bandwidths_mbit = [0.5 * (index + 1) for index in range(PAPER_CATEGORY_COUNT)]
    spec = build_scenario(
        "bandwidth-tiers",
        clients_per_category=clients_per_category,
        categories=PAPER_CATEGORY_COUNT,
        capacity_rps=capacity,
        duration=scale.duration,
        seed=scale.seed,
    )
    result = runner.run_specs([spec])[0]
    total_bandwidth = sum(bandwidths_mbit)
    rows = []
    for index, bandwidth in enumerate(bandwidths_mbit):
        label = f"cat-{index + 1}"
        rows.append(
            CategoryRow(
                category=label,
                parameter=bandwidth,
                clients=clients_per_category,
                observed_allocation=result.allocation_by_category.get(label, 0.0),
                ideal_allocation=bandwidth / total_bandwidth,
            )
        )
    return rows


def figure7_rtt_heterogeneity(
    scale: ExperimentScale,
    client_class: str = "good",
    runner: Optional[SweepRunner] = None,
) -> List[CategoryRow]:
    """Reproduce one series of Figure 7 (``client_class`` is "good" or "bad")."""
    runner = runner or SweepRunner()
    clients_per_category = max(1, scale.clients(PAPER_CLIENTS_PER_CATEGORY))
    capacity = PAPER_CAPACITY * (clients_per_category / PAPER_CLIENTS_PER_CATEGORY)
    rtts_ms = [100.0 * (index + 1) for index in range(PAPER_CATEGORY_COUNT)]
    spec = build_scenario(
        "rtt-tiers",
        clients_per_category=clients_per_category,
        categories=PAPER_CATEGORY_COUNT,
        capacity_rps=capacity,
        client_class=client_class,
        rtt_step_ms=100.0,
        duration=scale.duration,
        seed=scale.seed,
    )
    result = runner.run_specs([spec])[0]
    rows = []
    for index, rtt in enumerate(rtts_ms):
        label = f"cat-{index + 1}"
        rows.append(
            CategoryRow(
                category=label,
                parameter=rtt,
                clients=clients_per_category,
                observed_allocation=result.allocation_by_category.get(label, 0.0),
                ideal_allocation=1.0 / PAPER_CATEGORY_COUNT,
            )
        )
    return rows


def format_categories(rows: Sequence[CategoryRow], parameter_name: str, title: str) -> str:
    """Render a category breakdown (Figure 6 or one series of Figure 7)."""
    return format_table(
        headers=["category", parameter_name, "observed", "ideal"],
        rows=[
            (row.category, row.parameter, row.observed_allocation, row.ideal_allocation)
            for row in rows
        ],
        title=title,
    )
