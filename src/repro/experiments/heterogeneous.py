"""Figures 6 and 7: heterogeneous client bandwidths and RTTs (§7.5).

Figure 6: 50 all-good clients in five bandwidth categories (category ``i``
has ``0.5 · i`` Mbits/s), server capacity 10 requests/s.  The fraction of
the server captured by each category should track the bandwidth-proportional
ideal.

Figure 7: 50 clients in five RTT categories (category ``i`` has
``100 · i`` ms to the thinner), all 2 Mbits/s, capacity 10 requests/s, run
once with all-good clients and once with all-bad clients.  Good clients with
longer RTTs get less of the server (slow start and the inter-POST quiescence
cost them); bad clients, whose many concurrent channels hide those gaps, are
largely unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import MBIT, milliseconds
from repro.clients.population import PopulationSpec, build_population
from repro.core.frontend import Deployment, DeploymentConfig
from repro.experiments.base import ExperimentScale
from repro.metrics.collector import RunResult
from repro.metrics.tables import format_table
from repro.simnet.topology import build_lan

#: Paper-scale setup shared by both figures: 5 categories of 10 clients.
PAPER_CATEGORY_COUNT = 5
PAPER_CLIENTS_PER_CATEGORY = 10
PAPER_CAPACITY = 10.0


@dataclass(frozen=True)
class CategoryRow:
    """Server share captured by one client category."""

    category: str
    parameter: float            # bandwidth in Mbit/s (Fig 6) or RTT in ms (Fig 7)
    clients: int
    observed_allocation: float
    ideal_allocation: float


def _run_categorised(
    scale: ExperimentScale,
    bandwidths_mbit: Sequence[float],
    rtts_ms: Sequence[float],
    client_class: str,
    capacity: float,
    clients_per_category: int,
) -> RunResult:
    categories = len(bandwidths_mbit)
    bandwidths = []
    delays = []
    specs = []
    for index in range(categories):
        label = f"cat-{index + 1}"
        bandwidths.extend([bandwidths_mbit[index] * MBIT] * clients_per_category)
        # Host-attributed extra delay supplies the one-way RTT contribution.
        delays.extend([milliseconds(rtts_ms[index]) / 2.0] * clients_per_category)
        specs.append(
            PopulationSpec(
                count=clients_per_category,
                client_class=client_class,
                category=label,
            )
        )
    topology, hosts, thinner_host = build_lan(bandwidths, client_delays_s=delays)
    config = DeploymentConfig(server_capacity_rps=capacity, defense="speakup", seed=scale.seed)
    deployment = Deployment(topology, thinner_host, config)
    build_population(deployment, hosts, specs)
    deployment.run(scale.duration)
    return deployment.results()


def figure6_bandwidth_heterogeneity(scale: ExperimentScale) -> List[CategoryRow]:
    """Reproduce Figure 6: allocation across bandwidth categories, all good."""
    clients_per_category = max(1, scale.clients(PAPER_CLIENTS_PER_CATEGORY))
    capacity = PAPER_CAPACITY * (clients_per_category / PAPER_CLIENTS_PER_CATEGORY)
    bandwidths_mbit = [0.5 * (index + 1) for index in range(PAPER_CATEGORY_COUNT)]
    rtts_ms = [0.0] * PAPER_CATEGORY_COUNT
    result = _run_categorised(
        scale, bandwidths_mbit, rtts_ms, "good", capacity, clients_per_category
    )
    total_bandwidth = sum(bandwidths_mbit)
    rows = []
    for index, bandwidth in enumerate(bandwidths_mbit):
        label = f"cat-{index + 1}"
        rows.append(
            CategoryRow(
                category=label,
                parameter=bandwidth,
                clients=clients_per_category,
                observed_allocation=result.allocation_by_category.get(label, 0.0),
                ideal_allocation=bandwidth / total_bandwidth,
            )
        )
    return rows


def figure7_rtt_heterogeneity(
    scale: ExperimentScale, client_class: str = "good"
) -> List[CategoryRow]:
    """Reproduce one series of Figure 7 (``client_class`` is "good" or "bad")."""
    clients_per_category = max(1, scale.clients(PAPER_CLIENTS_PER_CATEGORY))
    capacity = PAPER_CAPACITY * (clients_per_category / PAPER_CLIENTS_PER_CATEGORY)
    bandwidths_mbit = [2.0] * PAPER_CATEGORY_COUNT
    rtts_ms = [100.0 * (index + 1) for index in range(PAPER_CATEGORY_COUNT)]
    result = _run_categorised(
        scale, bandwidths_mbit, rtts_ms, client_class, capacity, clients_per_category
    )
    rows = []
    for index, rtt in enumerate(rtts_ms):
        label = f"cat-{index + 1}"
        rows.append(
            CategoryRow(
                category=label,
                parameter=rtt,
                clients=clients_per_category,
                observed_allocation=result.allocation_by_category.get(label, 0.0),
                ideal_allocation=1.0 / PAPER_CATEGORY_COUNT,
            )
        )
    return rows


def format_categories(rows: Sequence[CategoryRow], parameter_name: str, title: str) -> str:
    """Render a category breakdown (Figure 6 or one series of Figure 7)."""
    return format_table(
        headers=["category", parameter_name, "observed", "ideal"],
        rows=[
            (row.category, row.parameter, row.observed_allocation, row.ideal_allocation)
            for row in rows
        ],
        title=title,
    )
