"""§4.3's failure story, measured: good-client service through a shard kill.

The paper's scale-out sketch (§4.3) distributes the thinner behind DNS and
asserts the usual front-end tricks handle front-end failure; it never
measures one.  This experiment runs the ``fleet-failover`` scenario — the
§7.2 LAN mix on a sharded fleet with a mid-run kill/heal pulse injected by
the fault layer — and reduces the injector's cumulative good-service samples
to the three numbers that summarise a failover:

* **pre-kill rate** — good requests served per second over the settled
  window before the kill (the second half of the pre-kill period, so
  start-up transients don't pollute the baseline);
* **dip rate** — the worst windowed rate between kill and heal, while the
  dead shard's clients sit out their DNS-TTL re-pin lags;
* **post-heal rate** — the rate over the tail of the run, after the heal
  plus a settling window.

``recovery_ratio`` is post-heal over pre-kill; the fleet passes when it is
at least :data:`RECOVERY_TARGET` (pooled admission keeps the server's full
capacity reachable by the survivors, so service should return to its
pre-kill level once every orphaned client has re-pinned).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentScale
from repro.faults.spec import FaultPlan
from repro.metrics.tables import format_table
from repro.scenarios.registry import build_scenario

#: Paper-scale population behind the fleet (the §7.2 LAN mix).
PAPER_CLIENT_COUNT = 50

#: Post-heal service must reach this fraction of the pre-kill rate.
RECOVERY_TARGET = 0.95


@dataclass(frozen=True)
class FailoverOutcome:
    """One kill/heal pulse reduced to its service-rate story."""

    shards: int
    admission_mode: str
    kill_at_s: float
    heal_at_s: float
    repin_ttl_s: float
    kills: int
    heals: int
    repinned_clients: int
    orphaned_requests: int
    pre_kill_rate_rps: float
    dip_rate_rps: float
    post_heal_rate_rps: float
    #: Windowed good-service rates for plotting: ``(start, end, rate)``.
    windows: Tuple[Tuple[float, float, float], ...] = field(default=())

    @property
    def recovery_ratio(self) -> float:
        """Post-heal service rate as a fraction of the pre-kill rate."""
        if self.pre_kill_rate_rps == 0:
            return 0.0
        return self.post_heal_rate_rps / self.pre_kill_rate_rps

    @property
    def dip_ratio(self) -> float:
        """Worst mid-outage service rate as a fraction of the pre-kill rate."""
        if self.pre_kill_rate_rps == 0:
            return 0.0
        return self.dip_rate_rps / self.pre_kill_rate_rps

    @property
    def recovered(self) -> bool:
        return self.recovery_ratio >= RECOVERY_TARGET


class _ServiceCurve:
    """Cumulative good-served samples as a queryable step function."""

    def __init__(self, samples: Sequence[Sequence[float]]) -> None:
        if len(samples) < 2:
            raise ExperimentError(
                "failover run produced fewer than two service samples; "
                "increase the duration or lower sample_interval_s"
            )
        self.times = [float(time) for time, _served in samples]
        self.served = [int(served) for _time, served in samples]

    def at(self, time: float) -> int:
        """Cumulative served at ``time`` (last sample at or before it)."""
        index = bisect_right(self.times, time) - 1
        return self.served[max(index, 0)]

    def rate(self, start: float, end: float) -> float:
        """Mean served/s over ``[start, end]``."""
        if end <= start:
            return 0.0
        return (self.at(end) - self.at(start)) / (end - start)


def failover_pulse(
    scale: ExperimentScale,
    shards: int = 4,
    shard_policy: str = "hash",
    admission_mode: str = "pooled",
    paper_capacity: float = 100.0,
    kill_shard: int = 1,
    kill_at_s: Optional[float] = None,
    heal_at_s: Optional[float] = None,
    repin_ttl_s: float = 2.0,
    window_s: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> FailoverOutcome:
    """Run one kill/heal pulse and summarise the good-service curve.

    The kill lands a third of the way into the run and the heal two thirds
    in (unless given explicitly), so every phase — settle, outage, recovery
    — gets a comparable share of the duration at any ``scale``.

    An explicit ``fault_plan`` (e.g. loaded from a JSON file via
    ``repro.cli failover --fault-plan``) replaces the scenario's generated
    kill/heal pulse entirely; pass matching ``kill_at_s``/``heal_at_s`` so
    the pre/dip/post windows line up with the plan's events.
    """
    duration = scale.duration
    kill_at = duration / 3.0 if kill_at_s is None else kill_at_s
    heal_at = 2.0 * duration / 3.0 if heal_at_s is None else heal_at_s
    if not 0.0 < kill_at < heal_at < duration:
        raise ExperimentError(
            f"need 0 < kill_at ({kill_at:g}) < heal_at ({heal_at:g}) "
            f"< duration ({duration:g})"
        )
    window = max(duration / 30.0, 0.5) if window_s is None else window_s

    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    capacity = scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients)

    spec = build_scenario(
        "fleet-failover",
        good_clients=good,
        bad_clients=bad,
        thinner_shards=shards,
        shard_policy=shard_policy,
        admission_mode=admission_mode,
        capacity_rps=capacity,
        kill_shard=kill_shard,
        kill_at_s=kill_at,
        heal_at_s=heal_at,
        repin_ttl_s=repin_ttl_s,
        duration=duration,
        seed=scale.seed,
    )
    if fault_plan is not None:
        fault_plan.validate(shards=shards, horizon_s=duration)
        spec = replace(spec, fault_plan=fault_plan)
    result = spec.run()
    failover = result.failover
    if failover is None:
        raise ExperimentError("fleet-failover run returned no failover metrics")

    curve = _ServiceCurve(failover.service_samples)

    # Baseline: the settled second half of the pre-kill period.
    pre_kill = curve.rate(kill_at / 2.0, kill_at)
    # Dip: the worst window while the shard is dark.
    dip = min(
        curve.rate(start, min(start + window, heal_at))
        for start in _window_starts(kill_at, heal_at, window)
    )
    # Recovery: the tail, once the heal plus one settling window has passed.
    tail_start = min(heal_at + window, duration - window)
    post_heal = curve.rate(tail_start, duration)

    windows = tuple(
        (start, min(start + window, duration), curve.rate(start, min(start + window, duration)))
        for start in _window_starts(0.0, duration, window)
    )

    return FailoverOutcome(
        shards=shards,
        admission_mode=admission_mode,
        kill_at_s=kill_at,
        heal_at_s=heal_at,
        repin_ttl_s=repin_ttl_s,
        kills=failover.kills,
        heals=failover.heals,
        repinned_clients=failover.repinned_clients,
        orphaned_requests=failover.orphaned_requests,
        pre_kill_rate_rps=pre_kill,
        dip_rate_rps=dip,
        post_heal_rate_rps=post_heal,
        windows=windows,
    )


def _window_starts(start: float, end: float, window: float) -> List[float]:
    starts: List[float] = []
    current = start
    while current < end - 1e-9:
        starts.append(current)
        current += window
    return starts or [start]


def _phase(start: float, end: float, outcome: FailoverOutcome) -> str:
    if start <= outcome.kill_at_s < end:
        return "<- kill"
    if start <= outcome.heal_at_s < end:
        return "<- heal"
    if end <= outcome.kill_at_s:
        return ""
    if start >= outcome.heal_at_s:
        return "healed"
    return "shard dark"


def format_failover(outcome: FailoverOutcome) -> str:
    """Render the pulse as a windowed service plot plus the summary table."""
    timeline = format_table(
        headers=["window (s)", "good served/s", "", "phase"],
        rows=[
            (
                f"{start:6.1f}-{end:6.1f}",
                f"{rate:7.2f}",
                "#" * _bar(rate, outcome.windows),
                _phase(start, end, outcome),
            )
            for start, end, rate in outcome.windows
        ],
        title=(
            "Section 4.3: good-client service through a shard kill/heal pulse "
            f"({outcome.shards} shards, {outcome.admission_mode} admission)"
        ),
    )
    verdict = "yes" if outcome.recovered else "NO"
    summary = format_table(
        headers=["metric", "value"],
        rows=[
            ("kill at (s)", f"{outcome.kill_at_s:g}"),
            ("heal at (s)", f"{outcome.heal_at_s:g}"),
            ("re-pin TTL (s)", f"{outcome.repin_ttl_s:g}"),
            ("kills / heals", f"{outcome.kills} / {outcome.heals}"),
            ("clients re-pinned", outcome.repinned_clients),
            ("requests orphaned", outcome.orphaned_requests),
            ("pre-kill rate (req/s)", f"{outcome.pre_kill_rate_rps:.2f}"),
            ("dip rate (req/s)", f"{outcome.dip_rate_rps:.2f}"),
            ("post-heal rate (req/s)", f"{outcome.post_heal_rate_rps:.2f}"),
            ("recovery ratio", f"{outcome.recovery_ratio:.3f}"),
            (f"recovered (>= {RECOVERY_TARGET:g})", verdict),
        ],
        title="Failover summary",
    )
    return timeline + "\n\n" + summary


def _bar(rate: float, windows: Sequence[Tuple[float, float, float]]) -> int:
    peak = max((r for _s, _e, r in windows), default=0.0)
    if peak <= 0:
        return 0
    return max(0, round(24 * rate / peak))
