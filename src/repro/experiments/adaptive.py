"""When should speak-up be on?  The adaptive-engagement design point, measured.

The paper frames speak-up as a defense that "does nothing in peacetime":
the thinner should charge clients bandwidth only while the server is under
attack.  That leaves the operator a control question the paper does not
evaluate — how quickly must the defense engage once a pulse starts, and
what does sluggish engagement cost the good clients?

This experiment answers it empirically with the ``adaptive-pulse``
scenario: good demand is steady, the attackers fire one full-rate pulse
mid-run, and an :class:`~repro.defenses.adaptive.AdaptiveDefense` watches
server utilisation with a configurable sampling cadence.  For each watcher
cadence we record

* **engagement lag** — seconds from pulse start until the inner defense
  switched on (roughly one check interval, since the pulse saturates the
  server almost immediately);
* **engaged time** — how long the defense ran in total (the bandwidth tax
  window);
* **good fraction served** — the paper's headline service metric over the
  whole run.

Two static baselines bracket the sweep: ``always-on`` (plain speak-up for
the whole run — maximal tax, no lag) and ``off`` (the undefended baseline —
no tax, and the pulse eats the good clients' service).  The adaptive rows
should approach the always-on service level from below as the watcher
samples faster, while only charging payment during (and shortly after) the
pulse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentScale
from repro.metrics.collector import RunResult
from repro.metrics.tables import format_table
from repro.scenarios.registry import build_scenario
from repro.scenarios.runner import SweepRunner

#: Load-watcher sampling cadences the sweep covers (seconds).
CHECK_INTERVALS = (0.5, 1.0, 2.0, 4.0)

#: Paper-scale population for the pulse workload (the §7.2 LAN mix).
PAPER_CLIENT_COUNT = 50


@dataclass(frozen=True)
class AdaptiveRow:
    """One policy of the engagement sweep."""

    mode: str
    check_interval_s: Optional[float]
    engage_lag_s: Optional[float]
    time_engaged_s: float
    engaged_fraction: float
    good_fraction_served: float
    good_allocation: float
    payment_bytes_sunk: float


def _engage_lag(result: RunResult, pulse_start: float) -> Optional[float]:
    engagement = result.engagement
    if engagement is None or engagement.first_engaged_at is None:
        return None
    return engagement.first_engaged_at - pulse_start


def adaptive_engagement(
    scale: ExperimentScale,
    check_intervals: Sequence[float] = CHECK_INTERVALS,
    paper_capacity: float = 100.0,
    runner: Optional[SweepRunner] = None,
) -> List[AdaptiveRow]:
    """Good-client service vs engagement lag across one attack pulse.

    Returns one row per watcher cadence plus the ``always-on`` and ``off``
    baselines, all on the identical pulse workload and seed.
    """
    runner = runner or SweepRunner()
    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    capacity = scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients)
    pulse_start = scale.duration / 4.0

    common = dict(
        good_clients=good,
        bad_clients=bad,
        capacity_rps=capacity,
        duration=scale.duration,
        seed=scale.seed,
    )
    specs = [
        build_scenario("adaptive-pulse", check_interval_s=interval, **common)
        for interval in check_intervals
    ]
    # The static baselines run the same pulse population with the composed
    # defense swapped out for a plain policy.
    specs.append(specs[0].with_values({"defense_spec.name": "speakup", "name": "always-on"}))
    specs.append(specs[0].with_values({"defense_spec.name": "none", "name": "off"}))

    results = runner.run_specs(specs)

    rows: List[AdaptiveRow] = []
    for interval, result in zip(check_intervals, results):
        engagement = result.engagement
        rows.append(
            AdaptiveRow(
                mode=f"adaptive@{interval:g}s",
                check_interval_s=interval,
                engage_lag_s=_engage_lag(result, pulse_start),
                time_engaged_s=engagement.time_engaged if engagement else 0.0,
                engaged_fraction=engagement.engaged_fraction if engagement else 0.0,
                good_fraction_served=result.good_fraction_served,
                good_allocation=result.good_allocation,
                payment_bytes_sunk=result.payment_bytes_sunk,
            )
        )
    for mode, result, engaged in (
        ("always-on", results[-2], scale.duration),
        ("off", results[-1], 0.0),
    ):
        rows.append(
            AdaptiveRow(
                mode=mode,
                check_interval_s=None,
                engage_lag_s=None,
                time_engaged_s=engaged,
                engaged_fraction=engaged / scale.duration if scale.duration else 0.0,
                good_fraction_served=result.good_fraction_served,
                good_allocation=result.good_allocation,
                payment_bytes_sunk=result.payment_bytes_sunk,
            )
        )
    return rows


def format_adaptive(rows: Sequence[AdaptiveRow]) -> str:
    """Render the engagement sweep as a text table."""
    return format_table(
        headers=[
            "policy",
            "engage lag (s)",
            "engaged (s)",
            "engaged frac",
            "good served frac",
            "good alloc",
            "payment (MB)",
        ],
        rows=[
            (
                row.mode,
                "-" if row.engage_lag_s is None else f"{row.engage_lag_s:.1f}",
                f"{row.time_engaged_s:.1f}",
                f"{row.engaged_fraction:.2f}",
                f"{row.good_fraction_served:.3f}",
                f"{row.good_allocation:.3f}",
                f"{row.payment_bytes_sunk / 1e6:.1f}",
            )
            for row in rows
        ],
        title=(
            "Adaptive engagement: good-client service vs watcher cadence "
            "across one attack pulse"
        ),
    )
