"""§7.4: the empirical adversarial advantage.

Two questions:

1. What is the minimum capacity at which *all* of the good demand is
   satisfied?  The paper measures ``c = 115`` against the proportional-ideal
   ``c_id = 100`` — a 15% adversarial advantage.  We binary-search the same
   quantity.
2. How does the bad clients' window ``w`` affect what they capture?  The
   paper reports that ``w = 20`` is the (pessimistic) worst case among
   ``w ∈ [1, 60]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.theory import ideal_capacity
from repro.experiments.allocation import PAPER_CLIENT_COUNT
from repro.experiments.base import ExperimentScale, LanScenario
from repro.metrics.tables import format_table
from repro.scenarios.runner import Sweep, SweepRunner


@dataclass(frozen=True)
class AdvantageResult:
    """Outcome of the minimum-capacity search."""

    ideal_capacity_rps: float
    measured_capacity_rps: float
    advantage: float            # measured/ideal - 1 (the paper reports 0.15)
    served_fraction_at_ideal: float
    search_points: tuple


@dataclass(frozen=True)
class WindowSweepRow:
    """Server share captured by bad clients for one window size."""

    window: int
    bad_allocation: float
    good_fraction_served: float


def _served_fraction_at(
    capacity: float, good: int, bad: int, scale: ExperimentScale, runner: SweepRunner
) -> float:
    spec = LanScenario(
        good_clients=good,
        bad_clients=bad,
        capacity_rps=capacity,
        defense="speakup",
        duration=scale.duration,
        seed=scale.seed,
    ).to_spec()
    return runner.run_specs([spec])[0].good_fraction_served


def empirical_adversarial_advantage(
    scale: ExperimentScale,
    served_threshold: float = 0.99,
    max_factor: float = 1.6,
    tolerance: float = 0.025,
    runner: Optional[SweepRunner] = None,
) -> AdvantageResult:
    """Find the smallest capacity (relative to c_id) serving all good demand.

    Binary search between ``c_id`` and ``max_factor * c_id``; a capacity
    "serves all good demand" when the fraction of good requests served is at
    least ``served_threshold``.
    """
    runner = runner or SweepRunner()
    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    good_demand = good * 2.0  # lambda = 2 requests/s per good client
    good_bandwidth = float(good)
    bad_bandwidth = float(bad)
    c_id = ideal_capacity(good_demand, good_bandwidth, bad_bandwidth)

    served_at_ideal = _served_fraction_at(c_id, good, bad, scale, runner)
    search_points = [(c_id / c_id, served_at_ideal)]

    low, high = c_id, c_id * max_factor
    if served_at_ideal >= served_threshold:
        # Already satisfied at the ideal: the advantage is (at most) zero.
        return AdvantageResult(c_id, c_id, 0.0, served_at_ideal, tuple(search_points))

    while (high - low) / c_id > tolerance:
        mid = (low + high) / 2.0
        served = _served_fraction_at(mid, good, bad, scale, runner)
        search_points.append((mid / c_id, served))
        if served >= served_threshold:
            high = mid
        else:
            low = mid
    measured = high
    return AdvantageResult(
        ideal_capacity_rps=c_id,
        measured_capacity_rps=measured,
        advantage=measured / c_id - 1.0,
        served_fraction_at_ideal=served_at_ideal,
        search_points=tuple(sorted(search_points)),
    )


def window_sweep(
    scale: ExperimentScale,
    windows: Sequence[int] = (1, 5, 10, 20, 40, 60),
    paper_capacity: float = 100.0,
    runner: Optional[SweepRunner] = None,
) -> List[WindowSweepRow]:
    """Vary the bad clients' window ``w`` and measure what they capture."""
    runner = runner or SweepRunner()
    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    capacity = scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients)
    base = LanScenario(
        good_clients=good,
        bad_clients=bad,
        capacity_rps=capacity,
        defense="speakup",
        duration=scale.duration,
        seed=scale.seed,
    ).to_spec()
    # Locate the bad group: to_spec() omits zero-count groups, so at tiny
    # scales (no good clients) it may be index 0 rather than 1.
    bad_index = next(
        index for index, group in enumerate(base.groups) if group.client_class == "bad"
    )
    window_path = f"groups.{bad_index}.window"
    records = runner.run(Sweep(base, axes={window_path: tuple(windows)}))
    return [
        WindowSweepRow(
            window=record.overrides[window_path],
            bad_allocation=record.result.bad_allocation,
            good_fraction_served=record.result.good_fraction_served,
        )
        for record in records
    ]


def format_window_sweep(rows: Sequence[WindowSweepRow]) -> str:
    """Render the window sweep as a text table."""
    return format_table(
        headers=["window", "bad_allocation", "good_served_frac"],
        rows=[(row.window, row.bad_allocation, row.good_fraction_served) for row in rows],
        title="Section 7.4: bad-client window sweep (c = c_id, G = B)",
    )
