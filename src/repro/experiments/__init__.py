"""Experiment harness: one module per table/figure of the paper's §7.

Every experiment accepts an :class:`~repro.experiments.base.ExperimentScale`
so the same code serves three audiences: unit/integration tests (seconds of
simulated time, a handful of clients), the benchmark harness (the default
scale, which reproduces the paper's shapes in minutes), and full paper-scale
runs (``ExperimentScale.paper()`` — 50 clients, 600 simulated seconds).

Each figure's sweep is expressed as a :class:`~repro.scenarios.spec.ScenarioSpec`
grid executed by a :class:`~repro.scenarios.runner.SweepRunner`; pass
``runner=SweepRunner(jobs=N)`` to any figure function to fan its grid out
across cores.
"""

from repro.experiments.base import ExperimentScale, LanScenario, run_lan_scenario
from repro.experiments.allocation import (
    Figure2Row,
    Figure3Row,
    figure2_allocation,
    figure3_provisioning,
    format_figure2,
    format_figure3,
)
from repro.experiments.cost import CostRow, figure4_5_costs, format_costs
from repro.experiments.adversary import (
    AdvantageResult,
    WindowSweepRow,
    empirical_adversarial_advantage,
    window_sweep,
)
from repro.experiments.heterogeneous import (
    CategoryRow,
    figure6_bandwidth_heterogeneity,
    figure7_rtt_heterogeneity,
    format_categories,
)
from repro.experiments.bottleneck import BottleneckRow, figure8_shared_bottleneck, format_bottleneck
from repro.experiments.cross_traffic import (
    CrossTrafficRow,
    figure9_cross_traffic,
    format_cross_traffic,
)
from repro.experiments.capacity import SinkRateResult, thinner_sink_capacity
from repro.experiments.fleet import (
    FleetProvisioningRow,
    fleet_provisioning_curve,
    format_fleet,
)

__all__ = [
    "FleetProvisioningRow",
    "fleet_provisioning_curve",
    "format_fleet",
    "ExperimentScale",
    "LanScenario",
    "run_lan_scenario",
    "Figure2Row",
    "Figure3Row",
    "figure2_allocation",
    "figure3_provisioning",
    "format_figure2",
    "format_figure3",
    "CostRow",
    "figure4_5_costs",
    "format_costs",
    "AdvantageResult",
    "WindowSweepRow",
    "empirical_adversarial_advantage",
    "window_sweep",
    "CategoryRow",
    "figure6_bandwidth_heterogeneity",
    "figure7_rtt_heterogeneity",
    "format_categories",
    "BottleneckRow",
    "figure8_shared_bottleneck",
    "format_bottleneck",
    "CrossTrafficRow",
    "figure9_cross_traffic",
    "format_cross_traffic",
    "SinkRateResult",
    "thinner_sink_capacity",
]
