"""Figure 9: speak-up's impact on other traffic (§7.7).

Ten good speak-up clients share a 1 Mbit/s, 100 ms bottleneck ``m`` with a
bystander host ``H`` that repeatedly downloads files from a separate web
server ``S`` on the far side of ``m``.  The thinner (fronting a server with
``c = 2`` requests/s) keeps the speak-up clients uploading payment bytes, so
``m``'s upload direction is saturated; ``H``'s requests and ACKs suffer, and
its download latency inflates several-fold for small transfers.

The experiment runs the speak-up workload in the simulator, lets it reach
steady state, and then models 100 downloads per transfer size with
:class:`repro.httpd.download.DownloadModel`, once with the payment traffic
present and once without.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import KBYTE, MBIT, milliseconds
from repro.experiments.base import ExperimentScale
from repro.httpd.download import DownloadModel
from repro.metrics.summary import mean, stddev
from repro.metrics.tables import format_table
from repro.rng import RandomStream
from repro.scenarios.registry import build_scenario

#: Paper-scale parameters for §7.7.
PAPER_SPEAKUP_CLIENTS = 10
PAPER_BOTTLENECK_BANDWIDTH = 1 * MBIT
PAPER_BOTTLENECK_DELAY = milliseconds(100.0)
PAPER_CAPACITY = 2.0
PAPER_TRANSFER_SIZES_KB = (1, 4, 16, 64, 256)
PAPER_DOWNLOADS_PER_SIZE = 100


@dataclass(frozen=True)
class CrossTrafficRow:
    """Download latency for one transfer size, with and without speak-up."""

    size_kbytes: float
    latency_without_speakup: float
    latency_with_speakup: float
    stddev_without: float
    stddev_with: float

    @property
    def inflation(self) -> float:
        """How many times slower the download is with speak-up running."""
        if self.latency_without_speakup == 0:
            return 1.0
        return self.latency_with_speakup / self.latency_without_speakup


def _build_dumbbell_deployment(scale: ExperimentScale, with_clients: bool):
    # The experiment's point is that the payment traffic saturates the
    # bottleneck, which needs a handful of concurrently-paying clients even
    # at reduced scale — so never shrink below four.
    clients = max(4, scale.clients(PAPER_SPEAKUP_CLIENTS))
    capacity = PAPER_CAPACITY * clients / PAPER_SPEAKUP_CLIENTS
    spec = build_scenario(
        "cross-traffic",
        speakup_clients=clients if with_clients else 0,
        capacity_rps=capacity,
        bottleneck_bandwidth_bps=PAPER_BOTTLENECK_BANDWIDTH,
        bottleneck_delay_s=PAPER_BOTTLENECK_DELAY,
        client_bandwidth_bps=2 * MBIT,
        duration=scale.duration,
        seed=scale.seed,
    )
    deployment = spec.build()
    model = DownloadModel(
        deployment.network,
        deployment.topology.host("H"),
        deployment.topology.host("webserver"),
        deployment.topology.shared_link("m"),
    )
    return deployment, model


def figure9_cross_traffic(
    scale: ExperimentScale,
    sizes_kbytes: Sequence[float] = PAPER_TRANSFER_SIZES_KB,
    downloads_per_size: int = PAPER_DOWNLOADS_PER_SIZE,
) -> List[CrossTrafficRow]:
    """Reproduce Figure 9: HTTP download latency with and without speak-up."""
    results = {}
    for with_speakup in (False, True):
        deployment, model = _build_dumbbell_deployment(scale, with_clients=with_speakup)
        # Let the payment traffic (if any) reach steady state before sampling.
        deployment.run(scale.duration)
        rng = RandomStream(scale.seed, f"downloads-{with_speakup}")
        per_size = {}
        for size_kb in sizes_kbytes:
            samples = model.repeated_downloads(size_kb * KBYTE, downloads_per_size, rng)
            latencies = [sample.latency for sample in samples]
            per_size[size_kb] = (mean(latencies), stddev(latencies))
        results[with_speakup] = per_size

    rows: List[CrossTrafficRow] = []
    for size_kb in sizes_kbytes:
        mean_without, std_without = results[False][size_kb]
        mean_with, std_with = results[True][size_kb]
        rows.append(
            CrossTrafficRow(
                size_kbytes=size_kb,
                latency_without_speakup=mean_without,
                latency_with_speakup=mean_with,
                stddev_without=std_without,
                stddev_with=std_with,
            )
        )
    return rows


def format_cross_traffic(rows: Sequence[CrossTrafficRow]) -> str:
    """Render Figure 9 as a text table."""
    return format_table(
        headers=["size_KB", "without_s", "with_s", "inflation_x"],
        rows=[
            (row.size_kbytes, row.latency_without_speakup, row.latency_with_speakup, row.inflation)
            for row in rows
        ],
        title="Figure 9: bystander HTTP download latency across the shared bottleneck",
    )
