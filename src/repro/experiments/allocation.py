"""Figures 2 and 3: how the thinner allocates the server.

Figure 2: 50 clients (2 Mbit/s each) on a LAN, ``c = 100`` requests/s; vary
the fraction ``f`` of good clients and measure the fraction of the server
they capture with speak-up, without speak-up, and against the ideal ``f``.

Figure 3: fix ``G = B`` (25 good, 25 bad) and vary the server capacity
``c ∈ {50, 100, 200}`` with speak-up off and on; report the allocation to
each class and the fraction of good requests served.  ``c = 100`` is the
ideal provisioning ``c_id`` for this workload; ``c = 200`` serves everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentScale, LanScenario
from repro.metrics.tables import format_table
from repro.scenarios.runner import Sweep, SweepRunner

#: The good-client fractions Figure 2 sweeps.
FIGURE2_FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9)

#: The capacities Figure 3 sweeps (requests/s at paper scale).
FIGURE3_CAPACITIES = (50.0, 100.0, 200.0)

#: Paper-scale client count shared by both figures.
PAPER_CLIENT_COUNT = 50


@dataclass(frozen=True)
class Figure2Row:
    """One point of Figure 2."""

    good_fraction: float
    good_clients: int
    bad_clients: int
    allocation_with_speakup: float
    allocation_without_speakup: float
    ideal: float


@dataclass(frozen=True)
class Figure3Row:
    """One bar group of Figure 3."""

    capacity_rps: float
    speakup_on: bool
    good_allocation: float
    bad_allocation: float
    good_fraction_served: float


def figure2_allocation(
    scale: ExperimentScale,
    fractions: Sequence[float] = FIGURE2_FRACTIONS,
    paper_capacity: float = 100.0,
    runner: Optional[SweepRunner] = None,
) -> List[Figure2Row]:
    """Reproduce Figure 2: allocation vs. the good clients' bandwidth fraction."""
    if not fractions:
        return []
    runner = runner or SweepRunner()
    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    capacity = scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients)

    splits: List[tuple] = []
    for fraction in fractions:
        good = max(1, round(fraction * total_clients))
        good = min(good, total_clients - 1) if fraction < 1.0 else total_clients
        splits.append((good, total_clients - good))

    base = LanScenario(
        good_clients=max(1, splits[0][0]),
        bad_clients=max(1, splits[0][1]),
        capacity_rps=capacity,
        duration=scale.duration,
        seed=scale.seed,
    ).to_spec()
    sweep = Sweep(
        base,
        axes={
            ("groups.0.count", "groups.1.count"): splits,
            "defense": ("speakup", "none"),
        },
    )
    records = runner.run(sweep)
    by_point = {
        (record.overrides["groups.0.count"], record.overrides["defense"]): record.result
        for record in records
    }

    rows: List[Figure2Row] = []
    for fraction, (good, bad) in zip(fractions, splits):
        rows.append(
            Figure2Row(
                good_fraction=fraction,
                good_clients=good,
                bad_clients=bad,
                allocation_with_speakup=by_point[(good, "speakup")].good_allocation,
                allocation_without_speakup=by_point[(good, "none")].good_allocation,
                ideal=good / total_clients,
            )
        )
    return rows


def figure3_provisioning(
    scale: ExperimentScale,
    paper_capacities: Sequence[float] = FIGURE3_CAPACITIES,
    runner: Optional[SweepRunner] = None,
) -> List[Figure3Row]:
    """Reproduce Figure 3: allocations and served fraction across capacities."""
    if not paper_capacities:
        return []
    runner = runner or SweepRunner()
    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    capacities = {
        scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients): paper_capacity
        for paper_capacity in paper_capacities
    }
    base = LanScenario(
        good_clients=good,
        bad_clients=bad,
        capacity_rps=next(iter(capacities)),
        duration=scale.duration,
        seed=scale.seed,
    ).to_spec()
    sweep = Sweep(
        base,
        axes={
            "capacity_rps": tuple(capacities),
            "defense": ("none", "speakup"),
        },
    )
    rows: List[Figure3Row] = []
    for record in runner.run(sweep):
        result = record.result
        rows.append(
            Figure3Row(
                capacity_rps=capacities[record.overrides["capacity_rps"]],
                speakup_on=(record.overrides["defense"] == "speakup"),
                good_allocation=result.good_allocation,
                bad_allocation=result.bad_allocation,
                good_fraction_served=result.good_fraction_served,
            )
        )
    return rows


def format_figure2(rows: Sequence[Figure2Row]) -> str:
    """Render Figure 2's series as a text table."""
    return format_table(
        headers=["good_fraction", "with_speakup", "without_speakup", "ideal"],
        rows=[
            (row.good_fraction, row.allocation_with_speakup, row.allocation_without_speakup, row.ideal)
            for row in rows
        ],
        title="Figure 2: fraction of server allocated to good clients (c = 100 req/s at paper scale)",
    )


def format_figure3(rows: Sequence[Figure3Row]) -> str:
    """Render Figure 3's bars as a text table."""
    return format_table(
        headers=["capacity", "speakup", "good_alloc", "bad_alloc", "good_served_frac"],
        rows=[
            (
                f"{row.capacity_rps:.0f}",
                "ON" if row.speakup_on else "OFF",
                row.good_allocation,
                row.bad_allocation,
                row.good_fraction_served,
            )
            for row in rows
        ],
        title="Figure 3: server allocation and served fraction, G = B",
    )
