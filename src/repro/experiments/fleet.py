"""§4.3 empirically: provisioning a sharded thinner fleet.

The paper argues the thinner itself must be provisioned against the attack
(condition C1) and gives the closed form in :mod:`repro.analysis.provisioning`:
during a full-bore attack the front-end tier must sink roughly ``G + B``
bits/s of payment traffic, however many boxes that tier is made of.  The
fleet subsystem lets us check the scale-out half of that story by
*measurement* instead of arithmetic: run the same over-subscribed workload
in front of 1, 2, 4, ... thinner shards and record how much payment traffic
each shard actually absorbed.

Two quantities are compared per shard count ``N``:

* **closed form** — ``payment_traffic_estimate(B, G) / N``, the per-shard
  sink rate an evenly split fleet must be provisioned for;
* **observed** — each shard's clients' delivered payment bytes over the
  run, as bits/s; the mean over shards is the empirical per-shard load and
  the max shows how far the dispatch policy strays from an even split.

The observed mean tracks the closed form's ``1/N`` curve from below (clients
also spend time in request RTTs, POST quiescent gaps, and TCP slow start, so
they deliver a high fraction — not 100% — of their bandwidth), which is
exactly the shape Figure "provisioning" of §4.3 sketches: per-front-end
capacity falls inversely with fleet size while the aggregate stays ``G + B``.

:func:`fleet_provisioning_campaign` is the same experiment executed as a
checkpointed out-of-core campaign (:mod:`repro.campaigns`): identical rows,
but killable and resumable, with the records streamed from per-worker
spools instead of held in memory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.provisioning import payment_traffic_estimate
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentScale
from repro.metrics.tables import format_table
from repro.scenarios.registry import build_scenario
from repro.scenarios.runner import Sweep, SweepRecord, SweepRunner

#: Fleet sizes the provisioning sweep covers.
FLEET_SHARD_COUNTS = (1, 2, 4, 8)

#: Paper-scale population behind the fleet (the §7.2 LAN mix).
PAPER_CLIENT_COUNT = 50


@dataclass(frozen=True)
class FleetProvisioningRow:
    """One fleet size of the empirical provisioning curve."""

    shards: int
    good_bandwidth_bps: float
    bad_bandwidth_bps: float
    #: ``payment_traffic_estimate(B, G)``: what the whole tier must sink.
    predicted_fleet_bps: float
    #: The closed form's per-shard share, ``predicted / shards``.
    predicted_shard_bps: float
    #: Payment bits/s actually delivered to the whole fleet.
    observed_fleet_bps: float
    #: Mean and max over shards of the observed per-shard sink rate.
    observed_shard_mean_bps: float
    observed_shard_max_bps: float

    @property
    def fleet_utilisation(self) -> float:
        """Observed aggregate sink rate over the closed-form estimate."""
        if self.predicted_fleet_bps == 0:
            return 0.0
        return self.observed_fleet_bps / self.predicted_fleet_bps

    @property
    def shard_imbalance(self) -> float:
        """Max-over-mean of the per-shard load (1.0 = perfectly even)."""
        if self.observed_shard_mean_bps == 0:
            return 0.0
        return self.observed_shard_max_bps / self.observed_shard_mean_bps


def fleet_provisioning_curve(
    scale: ExperimentScale,
    shard_counts: Sequence[int] = FLEET_SHARD_COUNTS,
    shard_policy: str = "least-loaded",
    admission_mode: str = "partitioned",
    paper_capacity: float = 100.0,
    runner: Optional[SweepRunner] = None,
) -> List[FleetProvisioningRow]:
    """Measure per-shard payment load across fleet sizes and compare to §4.3.

    The default dispatch policy is ``least-loaded`` so the curve isolates
    the provisioning question (how much must *one* front-end sink when the
    tier splits the attack N ways) from hash-imbalance noise; rerun with
    ``shard_policy="hash"`` to see the imbalance column grow instead.
    """
    if not shard_counts:
        return []
    runner = runner or SweepRunner()
    sweep = _provisioning_sweep(
        scale, shard_counts, shard_policy, admission_mode, paper_capacity
    )
    return [_row_from_record(record) for record in runner.run(sweep)]


def _provisioning_sweep(
    scale: ExperimentScale,
    shard_counts: Sequence[int],
    shard_policy: str,
    admission_mode: str,
    paper_capacity: float,
) -> Sweep:
    """The provisioning grid: the fleet-lan mix swept over fleet sizes."""
    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    capacity = scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients)

    base = build_scenario(
        "fleet-lan",
        good_clients=good,
        bad_clients=bad,
        thinner_shards=shard_counts[0],
        shard_policy=shard_policy,
        admission_mode=admission_mode,
        capacity_rps=capacity,
        duration=scale.duration,
        seed=scale.seed,
    )
    return Sweep(base, axes={"thinner_shards": tuple(shard_counts)})


def _row_from_record(record: SweepRecord) -> FleetProvisioningRow:
    """One provisioning-curve row from one executed sweep point."""
    result = record.result
    shards = int(record.overrides["thinner_shards"])
    predicted = payment_traffic_estimate(
        result.bad_bandwidth_bps, result.good_bandwidth_bps
    )
    per_shard_bps = [
        shard.client_bytes_paid * 8.0 / result.duration for shard in result.shards
    ]
    observed_total = sum(per_shard_bps)
    return FleetProvisioningRow(
        shards=shards,
        good_bandwidth_bps=result.good_bandwidth_bps,
        bad_bandwidth_bps=result.bad_bandwidth_bps,
        predicted_fleet_bps=predicted,
        predicted_shard_bps=predicted / shards,
        observed_fleet_bps=observed_total,
        observed_shard_mean_bps=observed_total / shards,
        observed_shard_max_bps=max(per_shard_bps) if per_shard_bps else 0.0,
    )


def fleet_provisioning_campaign(
    scale: ExperimentScale,
    directory: str,
    shard_counts: Sequence[int] = FLEET_SHARD_COUNTS,
    shard_policy: str = "least-loaded",
    admission_mode: str = "partitioned",
    paper_capacity: float = 100.0,
    jobs: int = 1,
    workers: Optional[int] = None,
    checkpoint_every: int = 8,
) -> List[FleetProvisioningRow]:
    """The same §4.3 curve, executed as a checkpointed campaign.

    The demonstrator for the out-of-core runner: the identical sweep runs
    through :class:`~repro.campaigns.runner.CampaignRunner` (per-worker
    JSONL spools in ``directory``), the rows are rebuilt by streaming the
    spools back through :class:`~repro.campaigns.store.CampaignStore`, and
    because every point is a pure function of its spec the rows match
    :func:`fleet_provisioning_curve` exactly.  Calling it again on a
    half-finished directory resumes instead of starting over.
    """
    if not shard_counts:
        return []
    from repro.campaigns import CAMPAIGN_FILENAME, CampaignRunner, CampaignStore

    runner = CampaignRunner(jobs=jobs)
    if os.path.exists(os.path.join(directory, CAMPAIGN_FILENAME)):
        status = runner.resume(directory)
    else:
        sweep = _provisioning_sweep(
            scale, shard_counts, shard_policy, admission_mode, paper_capacity
        )
        status = runner.run(
            sweep, directory, workers=workers, checkpoint_every=checkpoint_every
        )
    if not status.complete:
        raise ExperimentError(
            f"fleet provisioning campaign in {directory!r} is incomplete "
            f"({status.done}/{status.points} points)"
        )
    store = CampaignStore(directory)
    return [_row_from_record(record) for record in store.iter_records()]


def format_fleet(rows: Sequence[FleetProvisioningRow]) -> str:
    """Render the provisioning curve as a text table (rates in Mbit/s)."""
    mbit = 1e6

    return format_table(
        headers=[
            "shards",
            "predicted/shard",
            "observed mean",
            "observed max",
            "fleet util",
            "imbalance",
        ],
        rows=[
            (
                row.shards,
                f"{row.predicted_shard_bps / mbit:.2f}",
                f"{row.observed_shard_mean_bps / mbit:.2f}",
                f"{row.observed_shard_max_bps / mbit:.2f}",
                f"{row.fleet_utilisation:.2f}",
                f"{row.shard_imbalance:.2f}",
            )
            for row in rows
        ],
        title=(
            "Section 4.3: per-shard payment sink rate (Mbit/s) vs the closed "
            "form (G+B)/N"
        ),
    )
