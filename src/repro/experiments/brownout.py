"""Gray failures, measured: retry amplification and health-driven ejection.

Fail-stop kills (``repro.experiments.failover``) are the easy case — the
router notices a dead shard immediately.  Real fleets mostly suffer *gray*
failures: a shard that stays up but serves badly.  This experiment runs the
``fleet-brownout`` scenario through two such brownouts and reduces each to
the number an operator would page on:

* **Retry amplification** (fleet-wide lossy pulse): clients whose uploads
  vanish retry them.  With a *naive* policy (immediate, unbudgeted) a loss
  probability ``p`` multiplies offered load by roughly ``1/(1-p)`` — the
  classic retry storm.  A *budgeted* policy (token bucket plus
  decorrelated-jitter backoff) must hold the amplification near 1.
  Amplification over the pulse is ``sends / (sends - retries)``, i.e.
  wire-level upload starts per fresh request.

* **Ejection gain** (single-shard stall pulse): a stalled shard keeps
  accepting bytes but stops granting admission, silently starving its
  pinned clients.  With the :class:`~repro.core.fleet.HealthProber` armed,
  the shard's grant-rate EWMA collapses below the fleet median, the prober
  ejects it and re-pins its clients onto healthy shards; service during the
  pulse must beat the probe-less run, where the clients sit starved until
  the shard recovers.

Both comparisons share one workload (the §7.2 LAN mix on a sharded fleet)
so the four arms differ only in fault kind, retry policy, and prober.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentScale
from repro.experiments.failover import PAPER_CLIENT_COUNT, _ServiceCurve
from repro.metrics.collector import RunResult
from repro.metrics.tables import format_table
from repro.scenarios.registry import build_scenario

#: A naive retry policy under the default lossy pulse must amplify offered
#: load by at least this factor (the storm being demonstrated).
NAIVE_AMPLIFICATION_FLOOR = 2.0

#: A budgeted retry policy under the same pulse must stay at or below this.
BUDGETED_AMPLIFICATION_CEILING = 1.2


@dataclass(frozen=True)
class BrownoutOutcome:
    """Two gray-failure comparisons reduced to their headline numbers."""

    shards: int
    admission_mode: str
    start_at_s: float
    end_at_s: float
    loss_p: float
    #: Upload starts per fresh request over the lossy pulse, naive retries.
    naive_amplification: float
    #: Same with the token-bucket budget armed.
    budgeted_amplification: float
    #: Retries the budget refused to spend (budgeted lossy arm).
    retries_suppressed: int
    #: Prober activity in the stall arm with the probe armed.
    ejections: int
    readmits: int
    ejected_repins: int
    #: Good requests served during the stall pulse, probe armed vs not.
    probe_served_in_pulse: int
    no_probe_served_in_pulse: int

    @property
    def ejection_gain(self) -> float:
        """Pulse-window good service with the prober over without."""
        if self.no_probe_served_in_pulse == 0:
            return float("inf") if self.probe_served_in_pulse else 1.0
        return self.probe_served_in_pulse / self.no_probe_served_in_pulse

    @property
    def storm_demonstrated(self) -> bool:
        return self.naive_amplification >= NAIVE_AMPLIFICATION_FLOOR

    @property
    def budget_held(self) -> bool:
        return self.budgeted_amplification <= BUDGETED_AMPLIFICATION_CEILING

    @property
    def ejection_won(self) -> bool:
        return self.probe_served_in_pulse > self.no_probe_served_in_pulse


class _RetryCurve:
    """Cumulative ``(sends, retries)`` samples as a queryable step function."""

    def __init__(self, samples: Sequence[Sequence[float]]) -> None:
        if len(samples) < 2:
            raise ExperimentError(
                "brownout run produced fewer than two retry samples; "
                "increase the duration or lower sample_interval_s"
            )
        self.times = [float(sample[0]) for sample in samples]
        self.sent = [int(sample[1]) for sample in samples]
        self.retried = [int(sample[2]) for sample in samples]

    def amplification(self, start: float, end: float) -> float:
        """Upload starts per fresh request over ``[start, end]``."""
        lo = max(bisect_right(self.times, start) - 1, 0)
        hi = max(bisect_right(self.times, end) - 1, 0)
        sends = self.sent[hi] - self.sent[lo]
        fresh = sends - (self.retried[hi] - self.retried[lo])
        if fresh <= 0:
            return float("inf") if sends > 0 else 1.0
        return sends / fresh


def _failover_of(result: RunResult, arm: str):
    if result.failover is None:
        raise ExperimentError(f"brownout arm {arm!r} returned no failover metrics")
    return result.failover


def brownout_comparison(
    scale: ExperimentScale,
    shards: int = 4,
    shard_policy: str = "hash",
    admission_mode: str = "pooled",
    paper_capacity: float = 100.0,
    loss_p: float = 0.6,
    stall_shard: int = 0,
    start_at_s: Optional[float] = None,
    end_at_s: Optional[float] = None,
    probe_interval_s: float = 0.5,
    eject_fraction: float = 0.3,
    sample_interval_s: float = 0.25,
) -> BrownoutOutcome:
    """Run the four brownout arms and summarise both comparisons.

    Arms one and two put a fleet-wide lossy pulse (probability ``loss_p``)
    under naive and budgeted retry policies; arms three and four stall one
    shard with and without the health prober.  The pulse lands a third of
    the way into the run and lifts two thirds in unless given explicitly.
    """
    duration = scale.duration
    start = duration / 3.0 if start_at_s is None else start_at_s
    end = 2.0 * duration / 3.0 if end_at_s is None else end_at_s
    if not 0.0 < start < end < duration:
        raise ExperimentError(
            f"need 0 < start ({start:g}) < end ({end:g}) < duration ({duration:g})"
        )

    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    capacity = scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients)

    def run(fault: str, retry: str, probe: bool) -> RunResult:
        spec = build_scenario(
            "fleet-brownout",
            good_clients=good,
            bad_clients=bad,
            thinner_shards=shards,
            shard_policy=shard_policy,
            admission_mode=admission_mode,
            capacity_rps=capacity,
            fault=fault,
            fault_shard=stall_shard,
            loss_p=loss_p,
            loss_scope="fleet",
            start_at_s=start,
            end_at_s=end,
            retry=retry,
            health_probe=probe,
            probe_interval_s=probe_interval_s,
            eject_fraction=eject_fraction,
            sample_interval_s=sample_interval_s,
            duration=duration,
            seed=scale.seed,
        )
        return spec.run()

    naive = _failover_of(run("lossy", "naive", False), "naive")
    budgeted = _failover_of(run("lossy", "budgeted", False), "budgeted")
    probed = _failover_of(run("stall", "none", True), "probe")
    unprobed = _failover_of(run("stall", "none", False), "no-probe")

    naive_amp = _RetryCurve(naive.retry_samples).amplification(start, end)
    budgeted_amp = _RetryCurve(budgeted.retry_samples).amplification(start, end)

    probe_curve = _ServiceCurve(probed.service_samples)
    bare_curve = _ServiceCurve(unprobed.service_samples)

    return BrownoutOutcome(
        shards=shards,
        admission_mode=admission_mode,
        start_at_s=start,
        end_at_s=end,
        loss_p=loss_p,
        naive_amplification=naive_amp,
        budgeted_amplification=budgeted_amp,
        retries_suppressed=budgeted.retries_suppressed,
        ejections=probed.ejections,
        readmits=probed.readmits,
        ejected_repins=probed.ejected_repins,
        probe_served_in_pulse=probe_curve.at(end) - probe_curve.at(start),
        no_probe_served_in_pulse=bare_curve.at(end) - bare_curve.at(start),
    )


def format_brownout(outcome: BrownoutOutcome) -> str:
    """Render both comparisons as summary tables."""
    storm = format_table(
        headers=["metric", "value"],
        rows=[
            ("pulse (s)", f"{outcome.start_at_s:g}-{outcome.end_at_s:g}"),
            ("upload loss probability", f"{outcome.loss_p:g}"),
            ("naive amplification", f"{outcome.naive_amplification:.2f}x"),
            ("budgeted amplification", f"{outcome.budgeted_amplification:.2f}x"),
            ("retries suppressed by budget", outcome.retries_suppressed),
            (
                f"storm demonstrated (naive >= {NAIVE_AMPLIFICATION_FLOOR:g}x)",
                "yes" if outcome.storm_demonstrated else "NO",
            ),
            (
                f"budget held (<= {BUDGETED_AMPLIFICATION_CEILING:g}x)",
                "yes" if outcome.budget_held else "NO",
            ),
        ],
        title=(
            "Retry storm: fleet-wide lossy pulse, naive vs budgeted retries "
            f"({outcome.shards} shards, {outcome.admission_mode} admission)"
        ),
    )
    ejection = format_table(
        headers=["metric", "value"],
        rows=[
            ("ejections / readmits", f"{outcome.ejections} / {outcome.readmits}"),
            ("clients re-pinned by ejection", outcome.ejected_repins),
            ("good served in pulse, probe on", outcome.probe_served_in_pulse),
            ("good served in pulse, probe off", outcome.no_probe_served_in_pulse),
            (
                "ejection gain",
                "inf"
                if outcome.ejection_gain == float("inf")
                else f"{outcome.ejection_gain:.2f}x",
            ),
            ("ejection won", "yes" if outcome.ejection_won else "NO"),
        ],
        title="Health-driven ejection: single-shard stall, probe on vs off",
    )
    return storm + "\n\n" + ejection
