"""§7.1: how much payment traffic the thinner can sink.

The paper measures its C++/OKWS thinner sinking 1451 Mbits/s of payment
bytes with 1500-byte packets (379 Mbits/s with 120-byte packets) at 90% CPU
on a 3 GHz Xeon.  A Python reproduction obviously cannot match a kernel-
tuned C++ server byte-for-byte; what it *can* measure, and what the claim is
really about, is that per-chunk payment accounting is cheap — cheap enough
that the thinner's CPU is not the bottleneck during an attack.

``thinner_sink_capacity`` therefore drives the same accounting path the
simulated thinner uses (credit a chunk of dummy bytes to a contending
request's balance, occasionally consult the going rate) in a tight loop of
real wall-clock time and reports the achieved rate in Mbits/s for the
paper's two chunk sizes.  ``speakup-repro capacity`` prints these figures;
they are an analogue of the paper's §7.1 numbers, not a like-for-like
comparison with the C++/OKWS prototype.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ExperimentError

#: The paper's two payload sizes (bytes).
PAPER_CHUNK_SIZES = (1500, 120)


@dataclass(frozen=True)
class SinkRateResult:
    """Measured accounting throughput for one chunk size."""

    chunk_bytes: int
    chunks_processed: int
    elapsed_seconds: float

    @property
    def chunks_per_second(self) -> float:
        if self.elapsed_seconds == 0:
            return 0.0
        return self.chunks_processed / self.elapsed_seconds

    @property
    def mbits_per_second(self) -> float:
        return self.chunks_per_second * self.chunk_bytes * 8.0 / 1e6


class _AccountingTable:
    """The thinner's per-contender byte accounting, reduced to its hot path."""

    def __init__(self, contenders: int) -> None:
        self.balances: Dict[int, float] = {i: 0.0 for i in range(contenders)}
        self.total_sunk = 0.0

    def credit(self, contender_id: int, chunk_bytes: int) -> None:
        self.balances[contender_id] += chunk_bytes
        self.total_sunk += chunk_bytes

    def winner(self) -> int:
        return max(self.balances, key=self.balances.get)

    def settle(self, contender_id: int) -> float:
        price = self.balances[contender_id]
        self.balances[contender_id] = 0.0
        return price


def measure_sink_rate(
    chunk_bytes: int,
    duration_seconds: float = 0.5,
    contenders: int = 1000,
    auction_every_chunks: int = 10_000,
) -> SinkRateResult:
    """Measure how fast the accounting path absorbs payment chunks.

    ``contenders`` approximates the number of concurrently paying clients
    (the paper supports tens to hundreds of thousands); an auction is run
    every ``auction_every_chunks`` credited chunks so the measurement
    includes the occasional scan for the top bidder, as the real thinner's
    workload does.
    """
    if chunk_bytes <= 0:
        raise ExperimentError("chunk_bytes must be positive")
    if duration_seconds <= 0:
        raise ExperimentError("duration_seconds must be positive")
    if contenders <= 0:
        raise ExperimentError("contenders must be positive")
    table = _AccountingTable(contenders)
    processed = 0
    contender_id = 0
    start = time.perf_counter()
    deadline = start + duration_seconds
    while time.perf_counter() < deadline:
        # Credit a burst of chunks between clock checks to keep the clock
        # overhead out of the measurement.
        for _ in range(1000):
            table.credit(contender_id, chunk_bytes)
            contender_id += 1
            if contender_id == contenders:
                contender_id = 0
            processed += 1
            if processed % auction_every_chunks == 0:
                table.settle(table.winner())
    elapsed = time.perf_counter() - start
    return SinkRateResult(chunk_bytes=chunk_bytes, chunks_processed=processed, elapsed_seconds=elapsed)


def thinner_sink_capacity(
    chunk_sizes: Sequence[int] = PAPER_CHUNK_SIZES,
    duration_seconds: float = 0.5,
    contenders: int = 1000,
) -> List[SinkRateResult]:
    """Measure the accounting throughput for each of the paper's chunk sizes."""
    return [
        measure_sink_rate(chunk_bytes, duration_seconds=duration_seconds, contenders=contenders)
        for chunk_bytes in chunk_sizes
    ]
