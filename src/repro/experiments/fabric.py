"""Dispatch strategies across datacenter fabrics: does topology change the answer?

The §4.3 fleet experiments all ran on a star-of-stars, where every client
reaches every shard over an uncontended private link — so dispatch policy
only moves *population* balance, never path contention.  On a leaf-spine or
fat-tree fabric with an oversubscribed core and bystander cross-traffic, the
payment flows converging on a shard share fabric links with each other and
with the cross-traffic: an unlucky dispatch decision now costs real
bandwidth.  This experiment runs the same ``fabric-mega`` population on each
requested fabric under each registered dispatch strategy and tabulates
good-client service and per-shard payment-load imbalance, optionally with a
mid-run shard kill/heal pulse composed on top (the chaos-smoke
configuration) to confirm the registry strategies stay failover-clean off
the star.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.routing import ROUTER_STRATEGY_NAMES
from repro.experiments.base import ExperimentScale
from repro.faults.spec import kill_heal_pulse
from repro.metrics.tables import format_table
from repro.scenarios.registry import build_scenario
from repro.scenarios.runner import Sweep, SweepRunner

#: Fabric shapes the comparison covers (``star`` is the legacy star-of-stars).
FABRIC_TOPOLOGIES = ("star", "leaf-spine", "fat-tree")

#: Paper-scale population behind the fleet (the §7.2 LAN mix).
PAPER_CLIENT_COUNT = 50


@dataclass(frozen=True)
class FabricComparisonRow:
    """One (fabric, strategy) cell of the comparison grid."""

    fabric: str
    strategy: str
    #: Fraction of the server's service the good clients captured.
    good_allocation: float
    #: Fraction of good demand actually served.
    good_fraction_served: float
    total_served: int
    #: Max-over-mean of per-shard payment bytes sunk (1.0 = perfectly even).
    shard_imbalance: float


def _imbalance(result) -> float:
    loads = [shard.client_bytes_paid for shard in result.shards]
    if not loads:
        return 0.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    return max(loads) / mean


def fabric_strategy_comparison(
    scale: ExperimentScale,
    fabrics: Sequence[str] = FABRIC_TOPOLOGIES,
    strategies: Sequence[str] = ROUTER_STRATEGY_NAMES,
    shards: int = 8,
    oversubscription: float = 4.0,
    cross_traffic_pairs: int = 4,
    probe: str = "pins",
    kill_shard: Optional[int] = None,
    kill_at_s: Optional[float] = None,
    heal_at_s: Optional[float] = None,
    paper_capacity: float = 100.0,
    runner: Optional[SweepRunner] = None,
) -> List[FabricComparisonRow]:
    """Run every requested strategy on every requested fabric.

    All cells share one population, capacity, and seed (from ``scale``), so
    differences are attributable to the fabric shape and the dispatch
    strategy alone.  Within a fabric the strategies run as one sweep over
    ``router_spec.name``.  Passing ``kill_shard`` composes a
    :func:`~repro.faults.spec.kill_heal_pulse` onto every cell (defaults:
    kill at 25% of the run, heal at 60%).
    """
    runner = runner or SweepRunner()
    total_clients = scale.clients(PAPER_CLIENT_COUNT)
    good = total_clients // 2
    bad = total_clients - good
    shards = min(shards, max(1, total_clients))
    capacity = scale.capacity(paper_capacity, PAPER_CLIENT_COUNT, total_clients)

    fault_plan = None
    if kill_shard is not None:
        kill_at = kill_at_s if kill_at_s is not None else scale.duration * 0.25
        heal_at = heal_at_s if heal_at_s is not None else scale.duration * 0.6
        fault_plan = kill_heal_pulse(kill_shard, kill_at, heal_at)

    rows: List[FabricComparisonRow] = []
    for fabric in fabrics:
        base = build_scenario(
            "fabric-mega",
            good_clients=good,
            bad_clients=bad,
            thinner_shards=shards,
            fabric=fabric,
            oversubscription=oversubscription,
            cross_traffic_pairs=cross_traffic_pairs if fabric != "star" else 0,
            probe=probe,
            capacity_rps=capacity,
            duration=scale.duration,
            seed=scale.seed,
        )
        if fault_plan is not None:
            base = replace(base, fault_plan=fault_plan)
        sweep = Sweep(base, axes={"router_spec.name": tuple(strategies)})
        for record in runner.run(sweep):
            result = record.result
            rows.append(
                FabricComparisonRow(
                    fabric=fabric,
                    strategy=record.overrides["router_spec.name"],
                    good_allocation=result.good_allocation,
                    good_fraction_served=result.good_fraction_served,
                    total_served=result.total_served,
                    shard_imbalance=_imbalance(result),
                )
            )
    return rows


def format_fabric(rows: Sequence[FabricComparisonRow]) -> str:
    """Render the comparison grid as a text table."""
    return format_table(
        headers=[
            "fabric",
            "strategy",
            "good alloc",
            "good served",
            "served",
            "imbalance",
        ],
        rows=[
            (
                row.fabric,
                row.strategy,
                f"{row.good_allocation:.3f}",
                f"{row.good_fraction_served:.3f}",
                row.total_served,
                f"{row.shard_imbalance:.2f}",
            )
            for row in rows
        ],
        title="Dispatch strategies across fabric topologies (good-client service)",
    )
