"""HTTP-ish substrate: request/response messages, the emulated back-end
server, and the ACK-clocked download model used by the cross-traffic
experiment (§7.7).

The real prototype (§6) is an OKWS Web service whose clients are browsers
driven by JavaScript.  What the evaluation actually depends on is (a) the
request abstraction, (b) a back-end that serves one request at a time with a
jittered service time, and (c) 1-MByte POSTs as the payment vehicle.  This
subpackage supplies (a) and (b); the POST mechanics live in
:mod:`repro.core.payment`.
"""

from repro.httpd.messages import (
    PaymentPost,
    Request,
    RequestState,
    Response,
    new_request,
    reset_request_ids,
)
from repro.httpd.server import EmulatedServer, ServerState, ServerStats
from repro.httpd.download import DownloadModel, DownloadResult

__all__ = [
    "PaymentPost",
    "Request",
    "RequestState",
    "Response",
    "new_request",
    "reset_request_ids",
    "EmulatedServer",
    "ServerState",
    "ServerStats",
    "DownloadModel",
    "DownloadResult",
]
