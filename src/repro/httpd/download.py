"""ACK-clocked HTTP download model for the cross-traffic experiment (§7.7).

The paper measures how an innocent bystander ``H`` downloading files from a
separate web server ``S`` suffers when it shares a bottleneck ``m`` with ten
speak-up clients that are uploading payment bytes.  The two mechanisms the
paper names are (1) ACKs (and the request itself) from ``H`` being delayed
and lost on the congested upload direction, and (2) the request/response
exchange being delayed.

We model a download as a fresh TCP connection:

* the three-way handshake costs one effective RTT,
* the request costs half an effective RTT (plus a retransmission-timeout
  penalty when it is lost on the congested uplink),
* the response body is transferred with the slow-start model of
  :func:`repro.simnet.tcp.slow_start_transfer_time`, stretched by ACK loss,

where the *effective* RTT adds the drop-tail queueing delay of any congested
direction of the shared cable.  Congestion is read off the live simulation —
the model asks the :class:`~repro.simnet.network.FluidNetwork` how loaded
each direction of the bottleneck currently is — so "with speak-up" and
"without speak-up" runs differ only in what the payment traffic does to the
link, exactly as in the testbed experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import DEFAULT_MSS_BYTES
from repro.errors import SimulationError
from repro.rng import RandomStream
from repro.simnet.host import Host
from repro.simnet.link import DuplexLink
from repro.simnet.network import FluidNetwork
from repro.simnet.tcp import slow_start_transfer_time

#: Utilisation above which a drop-tail queue is considered standing-full.
CONGESTION_THRESHOLD = 0.95

#: Per-packet loss probability on a congested drop-tail queue shared with
#: greedy TCP uploads.  Conservative relative to what a saturated 1 Mbit/s
#: uplink would really do to competing packets.
CONGESTED_LOSS_RATE = 0.05

#: Classic initial retransmission timeout (RFC 2988 era, matching 2006 stacks).
INITIAL_RTO = 3.0


@dataclass
class DownloadResult:
    """Outcome of one modelled HTTP download."""

    size_bytes: float
    latency: float
    effective_rtt: float
    base_rtt: float
    request_retransmitted: bool
    ack_loss_rate: float

    @property
    def inflation_over(self) -> float:
        """Ratio of effective to base RTT (a quick congestion indicator)."""
        if self.base_rtt <= 0:
            return 1.0
        return self.effective_rtt / self.base_rtt


class DownloadModel:
    """Estimates HTTP download latency for a victim host behind a shared cable."""

    def __init__(
        self,
        network: FluidNetwork,
        victim: Host,
        web_server: Host,
        bottleneck: DuplexLink,
        mss_bytes: float = DEFAULT_MSS_BYTES,
        congested_loss_rate: float = CONGESTED_LOSS_RATE,
        congestion_threshold: float = CONGESTION_THRESHOLD,
    ) -> None:
        if not 0.0 <= congested_loss_rate < 1.0:
            raise SimulationError("congested_loss_rate must be in [0, 1)")
        self.network = network
        self.victim = victim
        self.web_server = web_server
        self.bottleneck = bottleneck
        self.mss_bytes = mss_bytes
        self.congested_loss_rate = congested_loss_rate
        self.congestion_threshold = congestion_threshold

    # -- live congestion state ----------------------------------------------------

    def base_rtt(self) -> float:
        """Round-trip propagation delay between the victim and the web server."""
        return self.network.topology.rtt(self.victim, self.web_server)

    def uplink_congested(self) -> bool:
        """Is the victim-to-server direction of the bottleneck saturated right now?"""
        return self.network.link_utilisation(self.bottleneck.up) >= self.congestion_threshold

    def downlink_congested(self) -> bool:
        """Is the server-to-victim direction of the bottleneck saturated right now?"""
        return self.network.link_utilisation(self.bottleneck.down) >= self.congestion_threshold

    def effective_rtt(self) -> float:
        """Base RTT plus standing queueing delay of any congested direction."""
        rtt = self.base_rtt()
        if self.uplink_congested():
            rtt += self.bottleneck.up.max_queueing_delay()
        if self.downlink_congested():
            rtt += self.bottleneck.down.max_queueing_delay()
        return rtt

    def available_download_bps(self) -> float:
        """Bandwidth left for the download on the server-to-victim direction."""
        capacity = self.bottleneck.down.capacity_bps
        in_use = self.network.link_load_bps(self.bottleneck.down)
        # A new TCP transfer will claim a fair share from whatever is there;
        # at minimum it gets an equal split with the existing flows.
        competitors = len(self.network.flows_on(self.bottleneck.down))
        fair_share = capacity / (competitors + 1)
        return max(fair_share, capacity - in_use)

    # -- the model itself -----------------------------------------------------------

    def download(self, size_bytes: float, rng: Optional[RandomStream] = None) -> DownloadResult:
        """Model one download of ``size_bytes`` under current network conditions.

        When ``rng`` is provided, request loss is sampled (so repeated calls
        reproduce the mean *and* variance the paper reports); otherwise the
        expected penalty is used.
        """
        if size_bytes <= 0:
            raise SimulationError("size_bytes must be positive")
        base = self.base_rtt()
        rtt = self.effective_rtt()
        uplink_congested = self.uplink_congested()
        loss = self.congested_loss_rate if uplink_congested else 0.0

        # Handshake (SYN, SYN/ACK, ACK piggybacked on the request) and request.
        latency = rtt  # handshake
        latency += rtt / 2.0  # request reaches the server
        request_retransmitted = False
        if loss > 0.0:
            if rng is not None:
                if rng.bernoulli(loss):
                    request_retransmitted = True
                    latency += INITIAL_RTO
                if rng.bernoulli(loss):  # SYN loss is just as expensive
                    latency += INITIAL_RTO
            else:
                latency += 2.0 * loss * INITIAL_RTO

        # Response body: slow start over the effective RTT, stretched by the
        # fraction of ACKs that never make it back across the congested uplink.
        transfer = slow_start_transfer_time(
            size_bytes,
            rtt,
            self.available_download_bps(),
            mss_bytes=self.mss_bytes,
        )
        if loss > 0.0:
            transfer /= (1.0 - loss)
        latency += transfer

        return DownloadResult(
            size_bytes=size_bytes,
            latency=latency,
            effective_rtt=rtt,
            base_rtt=base,
            request_retransmitted=request_retransmitted,
            ack_loss_rate=loss,
        )

    def repeated_downloads(
        self, size_bytes: float, count: int, rng: RandomStream
    ) -> list[DownloadResult]:
        """Model ``count`` back-to-back downloads (the paper runs 100 per size)."""
        if count <= 0:
            raise SimulationError("count must be positive")
        return [self.download(size_bytes, rng) for _ in range(count)]
