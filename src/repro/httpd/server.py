"""The emulated back-end server.

§6: "The server is currently emulated ... The server processes requests with
a service time selected uniformly at random from [.9/c, 1.1/c]."  The server
handles exactly one request at a time and notifies the thinner when it is
ready for the next one — that notification is what triggers a virtual
auction.

For the heterogeneous-request extension (§5) the server also exports
SUSPEND, RESUME, and ABORT, with the remaining work of a suspended request
preserved so it can be resumed later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Optional

from repro.constants import SERVICE_TIME_JITTER
from repro.errors import ServerError
from repro.httpd.messages import Request, RequestState
from repro.rng import RandomStream
from repro.simnet.engine import Engine, Event


class ServerState(Enum):
    """The server either sits idle or works on exactly one request."""

    IDLE = "idle"
    BUSY = "busy"


@dataclass
class ServerStats:
    """Aggregate accounting of what the server spent its time on."""

    served: int = 0
    aborted: int = 0
    suspensions: int = 0
    resumptions: int = 0
    busy_time: float = 0.0
    served_by_class: Dict[str, int] = field(default_factory=dict)
    busy_time_by_class: Dict[str, float] = field(default_factory=dict)
    served_by_category: Dict[str, int] = field(default_factory=dict)
    busy_time_by_category: Dict[str, float] = field(default_factory=dict)

    def record_work(self, request: Request, seconds: float) -> None:
        """Attribute ``seconds`` of server time to the request's class/category."""
        self.busy_time += seconds
        self.busy_time_by_class[request.client_class] = (
            self.busy_time_by_class.get(request.client_class, 0.0) + seconds
        )
        if request.category is not None:
            self.busy_time_by_category[request.category] = (
                self.busy_time_by_category.get(request.category, 0.0) + seconds
            )

    def record_served(self, request: Request) -> None:
        """Count a completed request."""
        self.served += 1
        self.served_by_class[request.client_class] = (
            self.served_by_class.get(request.client_class, 0) + 1
        )
        if request.category is not None:
            self.served_by_category[request.category] = (
                self.served_by_category.get(request.category, 0) + 1
            )

    def allocation_by_class(self) -> Dict[str, float]:
        """Fraction of served requests that went to each client class."""
        total = sum(self.served_by_class.values())
        if total == 0:
            return {}
        return {cls: count / total for cls, count in self.served_by_class.items()}

    def allocation_by_category(self) -> Dict[str, float]:
        """Fraction of served requests that went to each category label."""
        total = sum(self.served_by_category.values())
        if total == 0:
            return {}
        return {cat: count / total for cat, count in self.served_by_category.items()}


class EmulatedServer:
    """A single-threaded server with capacity ``c`` requests/s.

    Callbacks
    ---------
    on_request_done(request):
        Fired when a request finishes; the thinner uses this to return the
        response to the client.
    on_ready():
        Fired immediately after ``on_request_done`` (and after an ABORT) when
        the server is free for the next request — the auction trigger.
    """

    def __init__(
        self,
        engine: Engine,
        capacity_rps: float,
        rng: RandomStream,
        jitter: float = SERVICE_TIME_JITTER,
    ) -> None:
        if capacity_rps <= 0:
            raise ServerError(f"capacity must be positive, got {capacity_rps}")
        self.engine = engine
        self.capacity_rps = float(capacity_rps)
        self.jitter = jitter
        self.rng = rng
        self.state = ServerState.IDLE
        self.current: Optional[Request] = None
        self.stats = ServerStats()
        self.on_request_done: Optional[Callable[[Request], None]] = None
        self.on_ready: Optional[Callable[[], None]] = None

        self._completion_event: Optional[Event] = None
        self._work_started_at: Optional[float] = None
        self._remaining_work: Dict[int, float] = {}

    # -- queries -----------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a request is being processed."""
        return self.state == ServerState.BUSY

    @property
    def mean_service_time(self) -> float:
        """Mean per-request service time, 1/c."""
        return 1.0 / self.capacity_rps

    def utilisation(self, duration: float) -> float:
        """Fraction of ``duration`` the server spent busy."""
        if duration <= 0:
            raise ServerError("duration must be positive")
        return min(1.0, self.stats.busy_time / duration)

    def remaining_work(self, request: Request) -> Optional[float]:
        """Remaining service seconds for a suspended or in-progress request."""
        if self.current is request and self._work_started_at is not None:
            elapsed = self.engine.now - self._work_started_at
            return max(0.0, self._remaining_work[request.request_id] - elapsed)
        return self._remaining_work.get(request.request_id)

    # -- request lifecycle ----------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Start working on ``request`` (must be idle)."""
        if self.busy:
            raise ServerError(
                f"server is busy with request {self.current.request_id}; "
                f"cannot accept request {request.request_id}"
            )
        if request.request_id not in self._remaining_work:
            service_time = request.difficulty * self.rng.service_time(self.capacity_rps, self.jitter)
            request.service_time = service_time
            self._remaining_work[request.request_id] = service_time
        self._begin(request)

    def resume(self, request: Request) -> None:
        """Resume a previously suspended request (§5)."""
        if self.busy:
            raise ServerError("cannot resume while the server is busy")
        if request.request_id not in self._remaining_work:
            raise ServerError(f"request {request.request_id} has no suspended work to resume")
        self.stats.resumptions += 1
        self._begin(request)

    def suspend(self) -> Request:
        """Suspend the in-progress request and return it (§5)."""
        if not self.busy or self.current is None:
            raise ServerError("no request in progress to suspend")
        request = self.current
        elapsed = self.engine.now - self._work_started_at
        self._remaining_work[request.request_id] = max(
            0.0, self._remaining_work[request.request_id] - elapsed
        )
        self.stats.record_work(request, elapsed)
        self.stats.suspensions += 1
        request.state = RequestState.SUSPENDED
        request.suspend_count += 1
        self._clear_current()
        return request

    def abort(self, request: Request) -> None:
        """Abandon a request entirely (its partial work is wasted)."""
        if self.current is request:
            elapsed = self.engine.now - self._work_started_at
            self.stats.record_work(request, elapsed)
            self._clear_current()
        self._remaining_work.pop(request.request_id, None)
        self.stats.aborted += 1
        request.state = RequestState.DROPPED
        request.drop_reason = "aborted"
        if not self.busy and self.on_ready is not None:
            self.on_ready()

    # -- internals -------------------------------------------------------------------

    def _begin(self, request: Request) -> None:
        self.state = ServerState.BUSY
        self.current = request
        request.state = RequestState.ADMITTED
        if request.admitted_at is None:
            request.admitted_at = self.engine.now
        self._work_started_at = self.engine.now
        remaining = self._remaining_work[request.request_id]
        self._completion_event = self.engine.schedule_after(remaining, self._finish, request)

    def _clear_current(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        self.current = None
        self._work_started_at = None
        self.state = ServerState.IDLE

    def _finish(self, request: Request) -> None:
        if self.current is not request:  # pragma: no cover - defensive
            return
        elapsed = self.engine.now - self._work_started_at
        self.stats.record_work(request, elapsed)
        self.stats.record_served(request)
        self._remaining_work.pop(request.request_id, None)
        self._clear_current()
        request.state = RequestState.SERVED
        request.completed_at = self.engine.now
        if self.on_request_done is not None:
            self.on_request_done(request)
        if self.on_ready is not None:
            self.on_ready()
