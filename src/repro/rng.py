"""Named, seeded random streams.

Every stochastic component of the simulation (client arrival processes,
server service times, drop decisions of baseline defenses, ...) draws from
its own named stream derived from a single experiment seed.  This keeps runs
reproducible and keeps components statistically independent of one another:
adding a new consumer of randomness never perturbs the draws seen by the
existing ones.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, Sequence


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic 64-bit seed for ``name`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A named pseudo-random stream with the distributions the sim needs."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        self.seed = derive_seed(root_seed, name)
        self._rng = random.Random(self.seed)

    # -- basic draws -------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform draw in [low, high]."""
        return self._rng.uniform(low, high)

    def random(self) -> float:
        """Uniform draw in [0, 1)."""
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer draw in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, items: Sequence):
        """Uniformly pick one element of ``items``."""
        if not items:
            raise IndexError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def sample(self, items: Sequence, k: int) -> list:
        """Sample ``k`` distinct elements from ``items``."""
        return self._rng.sample(items, k)

    # -- distributions used by the paper's workload model -------------------

    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process of ``rate``/s."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self._rng.expovariate(rate)

    def exponentials(self, rate: float, count: int) -> list[float]:
        """``count`` consecutive exponential draws in one call.

        Returns exactly the values ``count`` successive :meth:`exponential`
        calls would (same underlying stream state), but with the attribute
        lookups and call overhead hoisted out of the loop — the batched
        arrival pregeneration in :mod:`repro.clients.base` draws thousands
        of inter-arrival gaps per refill.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        expovariate = self._rng.expovariate
        return [expovariate(rate) for _ in range(count)]

    def service_time(self, capacity: float, jitter: float = 0.1) -> float:
        """Service time uniform in [(1-jitter)/c, (1+jitter)/c] (paper section 6)."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        mean = 1.0 / capacity
        return self._rng.uniform((1.0 - jitter) * mean, (1.0 + jitter) * mean)

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self._rng.random() < probability

    def pareto(self, shape: float, scale: float) -> float:
        """Pareto draw (used for synthetic heavy-tailed request difficulty)."""
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        return scale * (1.0 / (1.0 - self._rng.random())) ** (1.0 / shape)

    def lognormal(self, mean: float, sigma: float) -> float:
        """Log-normal draw (alternative request-difficulty model)."""
        return self._rng.lognormvariate(mean, sigma)

    def poisson_arrivals(self, rate: float, duration: float) -> list[float]:
        """Materialise a Poisson arrival process on [0, duration)."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        arrivals: list[float] = []
        t = 0.0
        while True:
            t += self.exponential(rate)
            if t >= duration:
                break
            arrivals.append(t)
        return arrivals


class StreamFactory:
    """Creates :class:`RandomStream` objects that all derive from one seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = RandomStream(self.root_seed, name)
        return self._streams[name]

    def streams(self, names: Iterable[str]) -> list[RandomStream]:
        """Return (creating as needed) one stream per name."""
        return [self.stream(name) for name in names]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)


def deterministic_jitter(identity: str, spread: float) -> float:
    """A deterministic pseudo-jitter in [0, spread) derived from ``identity``.

    Useful when a component needs stable but distinct per-entity offsets
    (e.g. staggering client start times) without consuming stream state.
    """
    if spread < 0:
        raise ValueError("spread must be non-negative")
    digest = hashlib.sha256(identity.encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return fraction * spread


def halton(index: int, base: int = 2) -> float:
    """Low-discrepancy Halton value, used to place heterogeneous categories."""
    if index < 0:
        raise ValueError("index must be non-negative")
    if base < 2:
        raise ValueError("base must be >= 2")
    result = 0.0
    f = 1.0
    i = index + 1
    while i > 0:
        f /= base
        result += f * (i % base)
        i //= base
    return result


def spread_points(count: int, low: float, high: float) -> list[float]:
    """Deterministically spread ``count`` points across [low, high]."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    if count == 1:
        return [(low + high) / 2.0]
    step = (high - low) / (count - 1)
    return [low + i * step for i in range(count)]


def geometric_levels(count: int, low: float, high: float) -> list[float]:
    """Deterministic geometric progression of ``count`` values in [low, high]."""
    if count <= 0:
        raise ValueError("count must be positive")
    if low <= 0 or high <= 0:
        raise ValueError("bounds must be positive")
    if count == 1:
        return [math.sqrt(low * high)]
    ratio = (high / low) ** (1.0 / (count - 1))
    return [low * ratio**i for i in range(count)]
