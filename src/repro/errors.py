"""Exception hierarchy for the speak-up reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine or fluid network was used incorrectly."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or re-used after cancellation."""


class TopologyError(SimulationError):
    """A host, link, or path was configured inconsistently."""


class FlowError(SimulationError):
    """A flow was started, stopped, or queried in an invalid state."""


class ThinnerError(ReproError):
    """The thinner front-end was driven with an invalid request lifecycle."""


class PaymentError(ThinnerError):
    """A payment channel was opened, credited, or closed in an invalid state."""


class AuctionError(ThinnerError):
    """The virtual auction was asked to run with inconsistent state."""


class ServerError(ReproError):
    """The emulated server was driven through an invalid state transition."""


class DefenseError(ReproError):
    """A baseline defense was configured or attached incorrectly."""


class ClientError(ReproError):
    """A workload client was configured or driven incorrectly."""


class FaultError(ReproError):
    """A fault plan is malformed or was injected into an unsupported fleet."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run failed to complete."""


class AnalysisError(ReproError):
    """A closed-form analysis routine was called with invalid parameters."""
