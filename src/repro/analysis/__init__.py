"""Closed-form analysis from the paper.

* :mod:`repro.analysis.theory` — the design goal and provisioning arithmetic
  of §3.1 (bandwidth-proportional allocation, the ideal capacity ``c_id``).
* :mod:`repro.analysis.auction` — Theorem 3.1 and its extensions (§3.4).
* :mod:`repro.analysis.botnet` — the botnet/clientele sizing arguments of §2.1.
* :mod:`repro.analysis.provisioning` — thinner provisioning estimates (§4.3).
"""

from repro.analysis.theory import (
    allocation_without_speakup,
    good_service_rate,
    ideal_allocation,
    ideal_capacity,
    required_provisioning_factor,
    surviving_good_fraction,
)
from repro.analysis.auction import (
    auction_price,
    jittered_service_bound,
    post_gap_efficiency,
    theorem_3_1_bound,
)
from repro.analysis.botnet import (
    attack_bandwidth,
    clientele_needed_to_survive,
    defended_botnet_multiplier,
)
from repro.analysis.provisioning import (
    payment_traffic_estimate,
    thinner_connection_memory,
    thinner_cpu_headroom,
)

__all__ = [
    "ideal_allocation",
    "good_service_rate",
    "ideal_capacity",
    "required_provisioning_factor",
    "surviving_good_fraction",
    "allocation_without_speakup",
    "theorem_3_1_bound",
    "jittered_service_bound",
    "post_gap_efficiency",
    "auction_price",
    "attack_bandwidth",
    "clientele_needed_to_survive",
    "defended_botnet_multiplier",
    "payment_traffic_estimate",
    "thinner_connection_memory",
    "thinner_cpu_headroom",
]
