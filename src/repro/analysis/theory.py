"""The design goal and provisioning arithmetic of §3.1.

Notation follows the paper:

* ``g`` — aggregate good demand in requests/s;
* ``G`` — aggregate good bandwidth (requests/s worth of traffic the good
  clients *could* send, or bytes/s — only ratios matter);
* ``B`` — aggregate bad bandwidth in the same unit as ``G``;
* ``c`` — server capacity in requests/s.
"""

from __future__ import annotations

from repro.errors import AnalysisError


def _check_bandwidths(good_bandwidth: float, bad_bandwidth: float) -> None:
    if good_bandwidth < 0 or bad_bandwidth < 0:
        raise AnalysisError("bandwidths must be non-negative")
    if good_bandwidth + bad_bandwidth == 0:
        raise AnalysisError("at least one of G and B must be positive")


def ideal_allocation(good_bandwidth: float, bad_bandwidth: float) -> float:
    """The bandwidth-proportional share of the server good clients should get.

    §3.1's design goal: the good clients capture G/(G+B) of the server
    (when their demand exceeds that share).
    """
    _check_bandwidths(good_bandwidth, bad_bandwidth)
    return good_bandwidth / (good_bandwidth + bad_bandwidth)


def good_service_rate(
    good_demand: float, good_bandwidth: float, bad_bandwidth: float, capacity: float
) -> float:
    """Requests/s of good work the server should process: min(g, G/(G+B)·c)."""
    if good_demand < 0:
        raise AnalysisError("good demand must be non-negative")
    if capacity <= 0:
        raise AnalysisError("capacity must be positive")
    _check_bandwidths(good_bandwidth, bad_bandwidth)
    return min(good_demand, ideal_allocation(good_bandwidth, bad_bandwidth) * capacity)


def ideal_capacity(good_demand: float, good_bandwidth: float, bad_bandwidth: float) -> float:
    """The idealized provisioning requirement ``c_id = g(1 + B/G)`` (§3.1).

    A server at least this large serves every good request when speak-up
    allocates exactly in proportion to bandwidth.
    """
    if good_demand < 0:
        raise AnalysisError("good demand must be non-negative")
    if good_bandwidth <= 0:
        raise AnalysisError("good bandwidth must be positive for c_id to be finite")
    if bad_bandwidth < 0:
        raise AnalysisError("bad bandwidth must be non-negative")
    return good_demand * (1.0 + bad_bandwidth / good_bandwidth)


def required_provisioning_factor(good_bandwidth: float, bad_bandwidth: float) -> float:
    """Over-provisioning (relative to good demand) needed to survive an attack.

    ``c_id / g = 1 + B/G``; for B = G this is the paper's factor of two.
    """
    if good_bandwidth <= 0:
        raise AnalysisError("good bandwidth must be positive")
    if bad_bandwidth < 0:
        raise AnalysisError("bad bandwidth must be non-negative")
    return 1.0 + bad_bandwidth / good_bandwidth


def surviving_good_fraction(
    spare_capacity_fraction: float, good_to_bad_bandwidth_ratio: float
) -> float:
    """Fraction of good demand served, from spare capacity and G/B (§2.1).

    A server with utilisation ``1 - s`` (spare capacity ``s``) has
    ``c = g / (1 - s)``.  Under proportional allocation the good clients get
    ``min(g, G/(G+B) · c)``, so the served fraction of good demand is
    ``min(1, (G/(G+B)) / (1 - s))``.
    """
    if not 0.0 < spare_capacity_fraction < 1.0:
        raise AnalysisError("spare capacity fraction must be in (0, 1)")
    if good_to_bad_bandwidth_ratio <= 0:
        raise AnalysisError("G/B ratio must be positive")
    ratio = good_to_bad_bandwidth_ratio
    good_share = ratio / (1.0 + ratio)
    utilisation = 1.0 - spare_capacity_fraction
    return min(1.0, good_share / utilisation)


def allocation_without_speakup(
    good_request_rate: float, bad_request_rate: float, capacity: float
) -> float:
    """Share of the server good clients get with random drops and no speak-up.

    §3's illustration: when ``g + B > c`` and the server randomly drops the
    excess, good clients get only ``g / (g + B)`` of the server.  When the
    server is not overloaded everyone is served and the share is just the
    good fraction of the load.
    """
    if good_request_rate < 0 or bad_request_rate < 0:
        raise AnalysisError("request rates must be non-negative")
    if capacity <= 0:
        raise AnalysisError("capacity must be positive")
    total = good_request_rate + bad_request_rate
    if total == 0:
        return 0.0
    return good_request_rate / total
