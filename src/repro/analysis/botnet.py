"""Botnet and clientele sizing arithmetic from §2.1.

The paper argues speak-up's applicability using rough numbers: the average
bot has ~100 Kbits/s of bandwidth, botnets of 10,000 (100,000) hosts
generate ~500 Mbits/s (~5 Gbits/s) when each bot spends half its bandwidth,
and a site with 90% spare capacity is fully defended when its good clients
have one ninth of the attackers' aggregate bandwidth.
"""

from __future__ import annotations

from repro.constants import KBIT
from repro.errors import AnalysisError

#: The paper's working estimate of the average bot's upload bandwidth.
AVERAGE_BOT_BANDWIDTH_BPS = 100 * KBIT

#: The fraction of its bandwidth the paper assumes each bot spends attacking.
DEFAULT_BOT_DUTY_CYCLE = 0.5


def attack_bandwidth(
    botnet_size: int,
    per_bot_bandwidth_bps: float = AVERAGE_BOT_BANDWIDTH_BPS,
    duty_cycle: float = DEFAULT_BOT_DUTY_CYCLE,
) -> float:
    """Aggregate attack bandwidth B of a botnet, in bits/s."""
    if botnet_size < 0:
        raise AnalysisError("botnet size must be non-negative")
    if per_bot_bandwidth_bps <= 0:
        raise AnalysisError("per-bot bandwidth must be positive")
    if not 0.0 < duty_cycle <= 1.0:
        raise AnalysisError("duty cycle must be in (0, 1]")
    return botnet_size * per_bot_bandwidth_bps * duty_cycle


def clientele_needed_to_survive(
    botnet_size: int,
    spare_capacity_fraction: float,
    per_bot_bandwidth_bps: float = AVERAGE_BOT_BANDWIDTH_BPS,
    per_client_bandwidth_bps: float = AVERAGE_BOT_BANDWIDTH_BPS,
    bot_duty_cycle: float = DEFAULT_BOT_DUTY_CYCLE,
) -> int:
    """How many good clients keep themselves unharmed against a botnet.

    §2.1: good clients are unharmed when ``G/(G+B) ≥ 1 - s`` where ``s`` is
    the server's spare capacity, i.e. ``G ≥ B (1 - s)/s``.  With 90% spare
    capacity and equal per-host bandwidth, ~1,000 good clients withstand a
    10,000-bot attack — the paper's headline example.
    """
    if not 0.0 < spare_capacity_fraction < 1.0:
        raise AnalysisError("spare capacity fraction must be in (0, 1)")
    if per_client_bandwidth_bps <= 0:
        raise AnalysisError("per-client bandwidth must be positive")
    bad = attack_bandwidth(botnet_size, per_bot_bandwidth_bps, bot_duty_cycle)
    needed_good_bandwidth = bad * (1.0 - spare_capacity_fraction) / spare_capacity_fraction
    clients = needed_good_bandwidth / per_client_bandwidth_bps
    return int(clients) + (0 if clients == int(clients) else 1)


def defended_botnet_multiplier(spare_capacity_fraction: float) -> float:
    """How much larger a botnet must be to inflict the same harm on a
    speak-up-defended site whose good clients previously matched the attack.

    Without speak-up a botnet only needs to exceed the server's spare
    capacity in *requests*; with speak-up it must exceed the good clients'
    aggregate *bandwidth* scaled by s/(1-s).  The ratio of those two
    thresholds is a rough "bar-raising" factor; the paper describes it as
    "perhaps several orders of magnitude".
    """
    if not 0.0 < spare_capacity_fraction < 1.0:
        raise AnalysisError("spare capacity fraction must be in (0, 1)")
    return spare_capacity_fraction / (1.0 - spare_capacity_fraction)
