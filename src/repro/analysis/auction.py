"""Analysis of the virtual auction's robustness to cheating (§3.4).

Theorem 3.1: in a system with regular service intervals, any client that
continuously delivers an ``epsilon`` fraction of the average bandwidth
received by the thinner gets at least an ``epsilon/2`` fraction of the
service, regardless of how the other clients time or divide their bandwidth.
"""

from __future__ import annotations

from repro.errors import AnalysisError


def theorem_3_1_bound(bandwidth_fraction: float) -> float:
    """Lower bound on the service fraction of a client with ``epsilon`` bandwidth.

    The proof shows the client's share of total spending is at most
    ``2/(t/k + 1)``, from which ``k/t >= epsilon/(2 - epsilon) >= epsilon/2``.
    We return the tighter ``epsilon / (2 - epsilon)`` form (which the paper
    rounds down to ``epsilon/2``).
    """
    if not 0.0 <= bandwidth_fraction <= 1.0:
        raise AnalysisError("bandwidth fraction must be in [0, 1]")
    if bandwidth_fraction == 0.0:
        return 0.0
    return bandwidth_fraction / (2.0 - bandwidth_fraction)


def jittered_service_bound(bandwidth_fraction: float, jitter: float) -> float:
    """Theorem 3.1 extended to service times in [(1-delta)/c, (1+delta)/c].

    §3.4: "for service times that fluctuate within a bounded range ..., X
    receives at least a (1 - 2·delta)·epsilon/2 fraction of the service."
    """
    if not 0.0 <= jitter < 0.5:
        raise AnalysisError("jitter must be in [0, 0.5) for the bound to be meaningful")
    base = theorem_3_1_bound(bandwidth_fraction)
    return max(0.0, (1.0 - 2.0 * jitter)) * base


def post_gap_efficiency(
    post_bytes: float,
    bandwidth_bps: float,
    rtt: float,
    quiescent_rtts: float = 2.0,
) -> float:
    """Fraction of its bandwidth a client actually delivers given POST gaps.

    §3.4 notes that a good client is quiescent for two RTTs between POSTs
    (and slow-starts within each POST, ignored here): a POST of ``P`` bytes
    at ``W`` bits/s takes ``8P/W`` seconds, followed by ``quiescent_rtts·RTT``
    of silence, so the delivered fraction is ``(8P/W) / (8P/W + gap)``.
    The paper's observation that a big POST relative to the bandwidth-delay
    product makes the gaps negligible falls straight out of this expression.
    """
    if post_bytes <= 0 or bandwidth_bps <= 0:
        raise AnalysisError("post_bytes and bandwidth must be positive")
    if rtt < 0 or quiescent_rtts < 0:
        raise AnalysisError("rtt and quiescent_rtts must be non-negative")
    transfer = 8.0 * post_bytes / bandwidth_bps
    gap = quiescent_rtts * rtt
    return transfer / (transfer + gap)


def auction_price(
    good_bandwidth_bps: float, bad_bandwidth_bps: float, capacity_rps: float
) -> float:
    """The average price in bytes per request: (G + B) / c (§3.3).

    G and B are in bits/s here (as the experiments measure them); the result
    is converted to bytes per request, matching Figure 5's y-axis.
    """
    if capacity_rps <= 0:
        raise AnalysisError("capacity must be positive")
    if good_bandwidth_bps < 0 or bad_bandwidth_bps < 0:
        raise AnalysisError("bandwidths must be non-negative")
    return (good_bandwidth_bps + bad_bandwidth_bps) / (8.0 * capacity_rps)


def adversarial_advantage(measured_capacity: float, ideal_capacity_value: float) -> float:
    """How much extra provisioning the empirical adversary forced (§7.4).

    The paper reports that all good demand was served at ``c = 115`` against
    ``c_id = 100`` — an advantage of 0.15.  Returns
    ``measured/ideal - 1``.
    """
    if ideal_capacity_value <= 0:
        raise AnalysisError("ideal capacity must be positive")
    if measured_capacity <= 0:
        raise AnalysisError("measured capacity must be positive")
    return measured_capacity / ideal_capacity_value - 1.0
