"""Thinner provisioning estimates (§4.3).

The thinner must absorb the whole inflated request stream — attack traffic
plus the good clients' payment bytes — without congesting, and must hold
state for every concurrent client.  These helpers turn the paper's sizing
discussion into numbers an operator (or a test) can check.
"""

from __future__ import annotations

from repro.errors import AnalysisError

#: §6: with modern kernels the per-connection cost is dominated by RAM; a few
#: tens of kilobytes per open connection is the usual figure for an epoll
#: server with modest buffers.
PER_CONNECTION_BYTES = 32 * 1024


def payment_traffic_estimate(
    attack_bandwidth_bps: float, good_bandwidth_bps: float, utilisation_headroom: float = 1.0
) -> float:
    """Total traffic the thinner must sink during an attack, in bits/s.

    Both populations spend their bandwidth when encouraged, so the thinner
    sees roughly ``B + G`` (times any safety headroom the operator wants).
    """
    if attack_bandwidth_bps < 0 or good_bandwidth_bps < 0:
        raise AnalysisError("bandwidths must be non-negative")
    if utilisation_headroom < 1.0:
        raise AnalysisError("headroom must be at least 1.0")
    return (attack_bandwidth_bps + good_bandwidth_bps) * utilisation_headroom


def thinner_connection_memory(
    concurrent_clients: int, per_connection_bytes: float = PER_CONNECTION_BYTES
) -> float:
    """RAM needed for the thinner's concurrent connections, in bytes.

    §6: "the limit on concurrent clients is not per-connection descriptors
    but rather the RAM consumed by each open connection."
    """
    if concurrent_clients < 0:
        raise AnalysisError("concurrent_clients must be non-negative")
    if per_connection_bytes <= 0:
        raise AnalysisError("per_connection_bytes must be positive")
    return concurrent_clients * per_connection_bytes


def thinner_cpu_headroom(
    measured_sink_rate_bps: float, expected_attack_bps: float
) -> float:
    """How many times over the expected attack the thinner's CPU can sink.

    The paper measures 1.5 Gbits/s of payment traffic on one commodity core
    (§7.1) against 95th-percentile attack sizes in the low hundreds of
    Mbits/s (§4.3), i.e. a headroom factor well above one.
    """
    if measured_sink_rate_bps <= 0:
        raise AnalysisError("measured sink rate must be positive")
    if expected_attack_bps <= 0:
        raise AnalysisError("expected attack size must be positive")
    return measured_sink_rate_bps / expected_attack_bps
