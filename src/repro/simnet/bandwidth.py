"""Max-min fair bandwidth allocation (progressive filling).

Two entry points:

* :func:`waterfill` — the core progressive-filling loop over an explicit set
  of flows, an explicit set of capacity constraints, and a per-flow rate
  ceiling.  The :class:`~repro.simnet.network.FluidNetwork` calls this on the
  (usually small) component of flows affected by a change.
* :func:`max_min_fair_rates` — the textbook global computation over a set of
  flows.  It is the reference implementation: simple, obviously correct, and
  used by the property-based tests to validate the incremental path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.simnet.flow import Flow
from repro.simnet.link import Link

#: The allocator's float-comparison tolerance, in bits/s.  It plays three
#: distinct roles, all of them guards against floating-point dust rather
#: than model parameters:
#:
#: * in :func:`waterfill`, a link is saturated when its remaining capacity
#:   drops to ``RATE_EPSILON`` and a flow is capped when its rate climbs to
#:   within ``RATE_EPSILON`` of its ceiling — without the slack, residue
#:   from the incremental fill could leave a constraint "almost" binding
#:   and the loop unable to freeze anyone;
#: * final rates below ``RATE_EPSILON`` are snapped to exactly zero so a
#:   completion event is never scheduled astronomically far in the future;
#: * in :meth:`FluidNetwork._apply_rates
#:   <repro.simnet.network.FluidNetwork._apply_rates>`, a rate change
#:   smaller than ``RATE_EPSILON`` is treated as "unchanged", which keeps a
#:   recomputation that reproduces the same allocation from cancelling and
#:   re-scheduling every completion event in the component (the heap churn,
#:   not the arithmetic, is what would hurt).
#:
#: 1e-9 bits/s is roughly one bit per 30 simulated years — far below
#: anything the model can observe, far above double-precision noise on the
#: Mbit/s-scale quantities involved.
RATE_EPSILON = 1e-9


def waterfill_lists(
    caps: list,
    flow_links: list,
    remaining: list,
    unfrozen_on: list,
) -> list:
    """Index-based progressive-filling core.

    Flows are ``0..n-1`` (``caps[i]`` the effective ceiling, ``flow_links[i]``
    the indices into ``remaining`` of the constraint links flow ``i``
    crosses); ``remaining`` holds the links' capacities and ``unfrozen_on``
    the per-link unfrozen crossing counts (both consumed in place).  Returns
    the per-flow rates as a list.  This is the same loop :func:`waterfill`
    has always run, with the ``Flow``-keyed dicts replaced by positional
    lists — the allocator's flush calls it directly with dense ids, and the
    vectorized twin (:func:`repro.simnet.soa.waterfill_arrays`) mirrors it
    operation for operation.
    """
    n = len(caps)
    inf = float("inf")
    rates = [0.0] * n
    frozen = [False] * n
    unfrozen_count = n
    current_level = 0.0

    while unfrozen_count > 0:
        best_level = inf
        binding_link: int | None = None
        binding_flow: int | None = None
        for index, count in enumerate(unfrozen_on):
            if count > 0:
                level = current_level + remaining[index] / count
                if level < best_level:
                    best_level = level
                    binding_link = index
                    binding_flow = None
        for i in range(n):
            if not frozen[i]:
                cap = caps[i]
                if cap < best_level:
                    best_level = cap
                    binding_link = None
                    binding_flow = i

        if best_level == inf:
            # No finite constraint at all (cannot happen with real links);
            # freeze everything at its cap to terminate.
            for i in range(n):
                if not frozen[i]:
                    rates[i] = caps[i]
                    frozen[i] = True
            break

        increment = max(0.0, best_level - current_level)
        if increment > 0:
            for i in range(n):
                if frozen[i]:
                    continue
                rates[i] += increment
                for index in flow_links[i]:
                    remaining[index] -= increment
        current_level = best_level

        newly_frozen = []
        for i in range(n):
            if frozen[i]:
                continue
            if rates[i] >= caps[i] - RATE_EPSILON:
                newly_frozen.append(i)
                continue
            for index in flow_links[i]:
                if remaining[index] <= RATE_EPSILON:
                    newly_frozen.append(i)
                    break
        if not newly_frozen:
            # Floating-point residue can leave the binding constraint a hair
            # above the saturation epsilon; freeze exactly the flows the
            # binding constraint limits so progress (and work conservation)
            # are preserved rather than freezing everything.
            if binding_flow is not None:
                newly_frozen = [binding_flow]
            elif binding_link is not None:
                newly_frozen = [
                    i
                    for i in range(n)
                    if not frozen[i] and binding_link in flow_links[i]
                ]
            else:  # pragma: no cover - defensive termination
                newly_frozen = [i for i in range(n) if not frozen[i]]

        for i in newly_frozen:
            frozen[i] = True
            unfrozen_count -= 1
            for index in flow_links[i]:
                unfrozen_on[index] -= 1

    for i in range(n):
        if rates[i] < RATE_EPSILON:
            rates[i] = 0.0
    return rates


def waterfill(
    flows: Sequence[Flow],
    constraint_links: Iterable[Link],
    effective_caps: Mapping[Flow, float],
) -> Dict[Flow, float]:
    """Progressive filling over ``flows`` subject to ``constraint_links``.

    ``effective_caps`` bounds each flow individually (its own cap combined
    with the capacity of any path link deliberately excluded from
    ``constraint_links`` because it can never saturate).
    """
    if not flows:
        return {}

    links = list(constraint_links)
    link_index = {link: i for i, link in enumerate(links)}
    remaining = [link.capacity_bps for link in links]
    unfrozen_on = [0] * len(links)

    inf = float("inf")
    caps = []
    flow_links = []
    for flow in flows:
        # Which constraint links does the flow actually cross?
        indices = [link_index[link] for link in flow.path if link in link_index]
        flow_links.append(indices)
        for index in indices:
            unfrozen_on[index] += 1
        caps.append(effective_caps.get(flow, inf))

    rates = waterfill_lists(caps, flow_links, remaining, unfrozen_on)
    return {flow: rates[i] for i, flow in enumerate(flows)}


def max_min_fair_rates(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """Global max-min fair rates (bits/s) for ``flows`` (reference path)."""
    if not flows:
        return {}
    links: list[Link] = []
    seen = set()
    for flow in flows:
        for link in flow.path:
            if id(link) not in seen:
                seen.add(id(link))
                links.append(link)
    caps = {flow: flow.effective_cap() for flow in flows}
    return waterfill(list(flows), links, caps)


def link_utilisations(flows: Iterable[Flow]) -> Dict[Link, float]:
    """Return the fraction of each link's capacity consumed by ``flows``.

    Uses the flows' currently assigned ``rate_bps``; call after the network
    has allocated rates.
    """
    usage: Dict[Link, float] = {}
    for flow in flows:
        for link in flow.path:
            usage[link] = usage.get(link, 0.0) + flow.rate_bps
    return {link: used / link.capacity_bps for link, used in usage.items()}


def bottleneck_link(flow: Flow, flows: Iterable[Flow]) -> Link:
    """Return the link on ``flow``'s path with the highest utilisation."""
    utilisation = link_utilisations(flows)
    return max(flow.path, key=lambda link: utilisation.get(link, 0.0))
