"""Struct-of-arrays state store backing the fluid core.

The per-object Python cost of the simulator's hot loops — one ``Flow``,
``Link`` and ``PaymentChannel`` touched one attribute at a time — is what is
left between the dirty-set allocator (PR 2) and the ROADMAP's 100k+ events/s
target.  This module moves the hot *state* out of the objects and into
preallocated, growable numpy arrays indexed by dense integer ids:

* **flows** — rate, delivered bytes, last integration time, static bound,
  rate cap (``inf`` encodes "uncapped"), size (``inf`` encodes unbounded),
  completion-event flag, and the path as a padded row of link ids;
* **links** — capacity and potential load (entry-group sums stay in a small
  per-link dict keyed by the entry's dense id: they are sparse per
  *(link, entry)* pair and never read by a vectorized pass, only the
  potential they roll up into is);
* **payment channels** — committed and consumed bytes plus the id of the
  in-flight POST's flow, which is what lets the kinetic bid index re-key a
  whole batch of dirty channels in one vectorized pass
  (:meth:`SoAStore.bid_trajectories`).

The objects stay the public API: ``Flow``/``Link``/``PaymentChannel`` become
thin views whose properties read and write the arrays (falling back to
scalar slots while detached, and freezing the final values back into those
slots when their row is released, so completed flows stay readable forever).

Coherence rules (documented once, relied on everywhere):

* a row is live between ``acquire``/``register`` and ``release``; vectorized
  passes only ever gather rows reachable from live objects, so released rows
  may hold stale garbage;
* arrays grow by doubling and are **rebound** (``self.f_rate = bigger``), so
  hot loops must re-fetch array attributes after any call that can acquire a
  row, and views must always index through the store attribute rather than
  caching the ndarray;
* every scalar handed back to Python code is boxed with ``.item()`` /
  ``.tolist()`` so ``numpy.float64`` never leaks into JSON-serialised
  results or event payloads.

Bit-exactness: all element-wise kernels here mirror the scalar code
operation for operation (same order of multiplies, divides and ``min``),
which keeps the vectorized paths bit-identical to the object paths — the
regression gate for this refactor.  The only reductions used are exact ones:
``np.subtract.at`` (repeated subtraction of one scalar, order-free),
first-occurrence ``argmin`` (identical to a strict ``<`` scan), and
``bincount`` of 0/1 weights (exact small-integer sums).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.simnet.bandwidth import RATE_EPSILON

_INF = float("inf")

#: Initial row capacities; doubled on demand.
_FLOW_SEED = 1024
_LINK_SEED = 256
_CHANNEL_SEED = 1024
#: Initial padded path width (links per flow); grown if a longer path shows up.
_PATH_SEED = 4


class SoAStore:
    """Dense-id arrays for flows, links and payment channels.

    One store per :class:`~repro.simnet.network.FluidNetwork`; links are
    (re-)registered when a network takes over a topology, flows acquire and
    release rows as they attach and detach, channels register once and keep
    their row for the run (their state is three scalars — recycling would
    buy nothing and cost a freeze-back on every close).
    """

    __slots__ = (
        "f_rate",
        "f_delivered",
        "f_last",
        "f_bound",
        "f_cap",
        "f_size",
        "f_event",
        "f_path",
        "f_plen",
        "_flow_cap",
        "_flow_top",
        "_flow_free",
        "_path_width",
        "l_cap",
        "l_pot",
        "l_views",
        "c_committed",
        "c_consumed",
        "c_flow",
        "_chan_top",
        "_chan_cap",
        "fm_rate",
        "fm_delivered",
        "fm_last",
        "fm_bound",
        "fm_cap",
        "fm_size",
        "fm_event",
        "lm_pot",
        "cm_committed",
        "cm_consumed",
        "cm_flow",
    )

    def __init__(self) -> None:
        self._flow_cap = _FLOW_SEED
        self._flow_top = 0
        self._flow_free: List[int] = []
        self._path_width = _PATH_SEED
        self.f_rate = np.zeros(_FLOW_SEED)
        self.f_delivered = np.zeros(_FLOW_SEED)
        self.f_last = np.zeros(_FLOW_SEED)
        self.f_bound = np.zeros(_FLOW_SEED)
        self.f_cap = np.zeros(_FLOW_SEED)
        self.f_size = np.zeros(_FLOW_SEED)
        self.f_event = np.zeros(_FLOW_SEED, dtype=bool)
        self.f_path = np.full((_FLOW_SEED, _PATH_SEED), -1, dtype=np.int64)
        self.f_plen = np.zeros(_FLOW_SEED, dtype=np.int64)

        self.l_cap = np.zeros(_LINK_SEED)
        self.l_pot = np.zeros(_LINK_SEED)
        self.l_views: List[object] = []

        self._chan_cap = _CHANNEL_SEED
        self._chan_top = 0
        self.c_committed = np.zeros(_CHANNEL_SEED)
        self.c_consumed = np.zeros(_CHANNEL_SEED)
        self.c_flow = np.full(_CHANNEL_SEED, -1, dtype=np.int64)
        self._refresh_views()

    def _refresh_views(self) -> None:
        """Rebuild the scalar-access memoryviews after any array rebind.

        Single-element reads through a memoryview return plain Python
        scalars roughly twice as fast as ``ndarray.item()``, and writes are
        in-place on the same buffer — so the object views and the scalar
        hot paths go through these, while vectorized kernels use the
        ndarrays directly.  Anyone holding one of these across a call that
        can grow the store must re-fetch it (same rule as the ndarrays).
        """
        self.fm_rate = memoryview(self.f_rate)
        self.fm_delivered = memoryview(self.f_delivered)
        self.fm_last = memoryview(self.f_last)
        self.fm_bound = memoryview(self.f_bound)
        self.fm_cap = memoryview(self.f_cap)
        self.fm_size = memoryview(self.f_size)
        self.fm_event = memoryview(self.f_event)
        self.lm_pot = memoryview(self.l_pot)
        self.cm_committed = memoryview(self.c_committed)
        self.cm_consumed = memoryview(self.c_consumed)
        self.cm_flow = memoryview(self.c_flow)

    # -- links -----------------------------------------------------------------

    @property
    def link_count(self) -> int:
        return len(self.l_views)

    def register_link(self, link) -> int:
        """Assign ``link`` a dense id, mirror its capacity, zero its load."""
        lid = len(self.l_views)
        if lid >= self.l_cap.shape[0]:
            self.l_cap = np.concatenate([self.l_cap, np.zeros(self.l_cap.shape[0])])
            self.l_pot = np.concatenate([self.l_pot, np.zeros(self.l_pot.shape[0])])
            self._refresh_views()
        self.l_views.append(link)
        self.l_cap[lid] = link.capacity_bps
        self.l_pot[lid] = 0.0
        link._lid = lid
        link._soa = self
        return lid

    # -- flows -----------------------------------------------------------------

    def _grow_flows(self) -> None:
        old = self._flow_cap
        new = old * 2
        self.f_rate = np.concatenate([self.f_rate, np.zeros(old)])
        self.f_delivered = np.concatenate([self.f_delivered, np.zeros(old)])
        self.f_last = np.concatenate([self.f_last, np.zeros(old)])
        self.f_bound = np.concatenate([self.f_bound, np.zeros(old)])
        self.f_cap = np.concatenate([self.f_cap, np.zeros(old)])
        self.f_size = np.concatenate([self.f_size, np.zeros(old)])
        self.f_event = np.concatenate([self.f_event, np.zeros(old, dtype=bool)])
        self.f_path = np.concatenate(
            [self.f_path, np.full((old, self._path_width), -1, dtype=np.int64)]
        )
        self.f_plen = np.concatenate([self.f_plen, np.zeros(old, dtype=np.int64)])
        self._flow_cap = new
        self._refresh_views()

    def _grow_path_width(self, width: int) -> None:
        new_width = max(width, self._path_width * 2)
        wider = np.full((self._flow_cap, new_width), -1, dtype=np.int64)
        wider[:, : self._path_width] = self.f_path
        self.f_path = wider
        self._path_width = new_width

    def acquire_flow(self, flow, lids: Sequence[int]) -> int:
        """Give ``flow`` a live row initialised from its scalar slots."""
        free = self._flow_free
        if free:
            fid = free.pop()
        else:
            fid = self._flow_top
            if fid >= self._flow_cap:
                self._grow_flows()
            self._flow_top = fid + 1
        n = len(lids)
        if n > self._path_width:
            self._grow_path_width(n)
        self.fm_rate[fid] = flow._srate
        self.fm_delivered[fid] = flow._sdelivered
        self.fm_last[fid] = flow._slast
        self.fm_bound[fid] = flow._sbound
        cap = flow._scap
        self.fm_cap[fid] = _INF if cap is None else cap
        size = flow.size_bytes
        self.fm_size[fid] = _INF if size is None else size
        self.fm_event[fid] = flow._completion_event is not None
        row = self.f_path[fid]
        row[:n] = lids
        row[n:] = -1
        self.f_plen[fid] = n
        flow._fid = fid
        return fid

    def release_flow(self, flow) -> None:
        """Freeze the row's final values back into ``flow`` and free the row."""
        fid = flow._fid
        flow._srate = self.fm_rate[fid]
        flow._sdelivered = self.fm_delivered[fid]
        flow._slast = self.fm_last[fid]
        flow._sbound = self.fm_bound[fid]
        cap = self.fm_cap[fid]
        flow._scap = None if cap == _INF else cap
        flow._fid = -1
        self._flow_free.append(fid)

    # -- payment channels -------------------------------------------------------

    def register_channel(self) -> int:
        cid = self._chan_top
        if cid >= self._chan_cap:
            old = self._chan_cap
            self.c_committed = np.concatenate([self.c_committed, np.zeros(old)])
            self.c_consumed = np.concatenate([self.c_consumed, np.zeros(old)])
            self.c_flow = np.concatenate([self.c_flow, np.full(old, -1, dtype=np.int64)])
            self._chan_cap = old * 2
            self._refresh_views()
        self._chan_top = cid + 1
        return cid

    def bid_trajectories(
        self, cids: Sequence[int], now: float
    ) -> Tuple[List[float], List[float]]:
        """Vectorized ``(intercept, slope)`` for a batch of channel ids.

        ``-1`` entries (contenders with no channel) yield ``(0.0, 0.0)``.
        Mirrors :meth:`PaymentChannel.peek_balance` +
        ``payment_rate_bps()/8`` + the index's ``base - slope*now`` keying,
        operation for operation, so each element is bit-identical to the
        scalar computation.  Returns plain Python floats.
        """
        carr = np.asarray(cids, dtype=np.int64)
        has_chan = carr >= 0
        cs = np.where(has_chan, carr, 0)
        fids = self.c_flow[cs]
        has_flow = has_chan & (fids >= 0)
        fs = np.where(has_flow, fids, 0)
        rate = self.f_rate[fs]
        dt = now - self.f_last[fs]
        delivered = self.f_delivered[fs]
        live = has_flow & (dt > 0) & (rate > 0)
        extra = np.where(live, rate * dt / 8.0, 0.0)
        clipped = np.minimum(extra, self.f_size[fs] - delivered)
        extra = np.where(live, clipped, 0.0)
        in_flight = np.where(has_flow, delivered + extra, 0.0)
        base = (self.c_committed[cs] + in_flight) - self.c_consumed[cs]
        base = np.where(has_chan, base, 0.0)
        slope = np.where(has_flow, rate, 0.0) / 8.0
        intercepts = base - slope * now
        return intercepts.tolist(), slope.tolist()


def waterfill_arrays(
    caps: np.ndarray,
    remaining: np.ndarray,
    unfrozen_on: np.ndarray,
    csr_idx: np.ndarray,
    row_counts: np.ndarray,
) -> np.ndarray:
    """Vectorized progressive filling — bit-identical to ``waterfill_lists``.

    ``caps`` is the per-flow effective ceiling, ``remaining`` the per-link
    capacities (consumed in place), ``unfrozen_on`` the per-link unfrozen
    crossing counts (consumed in place), and ``csr_idx``/``row_counts`` the
    flows' crossed-link lists in CSR form (indices local to ``remaining``).

    Each round mirrors the scalar loop exactly: first-occurrence ``argmin``
    matches the strict ``<`` scans, per-crossing ``np.subtract.at`` matches
    the per-flow repeated subtraction of one increment, and the freeze tests
    use the same epsilon comparisons in the same order.
    """
    n = caps.shape[0]
    rates = np.zeros(n)
    frozen = np.zeros(n, dtype=bool)
    row_ids = np.repeat(np.arange(n), row_counts)
    unfrozen_count = n
    current_level = 0.0
    while unfrozen_count > 0:
        if remaining.shape[0]:
            active = unfrozen_on > 0
            levels = np.where(
                active,
                current_level + remaining / np.where(active, unfrozen_on, 1),
                np.inf,
            )
            binding_link = int(np.argmin(levels))
            link_level = float(levels[binding_link])
            if link_level == _INF:
                binding_link = None
        else:
            binding_link = None
            link_level = _INF
        flow_caps = np.where(frozen, np.inf, caps)
        binding_flow = int(np.argmin(flow_caps))
        cap_level = float(flow_caps[binding_flow])

        if cap_level < link_level:
            best_level = cap_level
            binding_link = None
        else:
            best_level = link_level
            binding_flow = None

        if best_level == _INF:
            unf = ~frozen
            rates[unf] = caps[unf]
            break

        increment = best_level - current_level
        if increment < 0.0:
            increment = 0.0
        if increment > 0:
            unf = ~frozen
            rates[unf] += increment
            sel = unf[row_ids]
            np.subtract.at(remaining, csr_idx[sel], increment)
        current_level = best_level

        unf = ~frozen
        cap_hit = unf & (rates >= caps - RATE_EPSILON)
        saturated = remaining <= RATE_EPSILON
        if saturated.any():
            crossing_sat = (
                np.bincount(row_ids, weights=saturated[csr_idx], minlength=n) > 0
            )
            newly = cap_hit | (unf & crossing_sat)
        else:
            newly = cap_hit
        if not newly.any():
            # Same float-residue fallback as the scalar loop: freeze exactly
            # what the binding constraint limits.
            if binding_flow is not None:
                newly = np.zeros(n, dtype=bool)
                newly[binding_flow] = True
            elif binding_link is not None:
                crossing = (
                    np.bincount(
                        row_ids, weights=(csr_idx == binding_link), minlength=n
                    )
                    > 0
                )
                newly = unf & crossing
            else:  # pragma: no cover - defensive termination
                newly = unf
        frozen |= newly
        unfrozen_count -= int(newly.sum())
        dropped = newly[row_ids]
        np.subtract.at(unfrozen_on, csr_idx[dropped], 1)

    rates[rates < RATE_EPSILON] = 0.0
    return rates
