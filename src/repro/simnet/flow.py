"""Flows: fluid byte transfers across a path of directed links.

A flow models one direction of one transport connection (a payment POST, a
request upload, an HTTP response body).  The :class:`~repro.simnet.network.
FluidNetwork` assigns each active flow a rate (max-min fair share, further
limited by the flow's own rate cap, which the slow-start model adjusts) and
integrates delivered bytes whenever rates change.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

from repro.errors import FlowError
from repro.simnet.host import Host
from repro.simnet.link import Link, path_delay


class FlowState(enum.Enum):
    """Lifecycle of a flow."""

    CREATED = "created"
    ACTIVE = "active"
    COMPLETED = "completed"
    STOPPED = "stopped"


_flow_ids = itertools.count(1)


class Flow:
    """A unidirectional fluid transfer from ``src`` to ``dst``.

    Parameters
    ----------
    src, dst:
        Endpoints.  Only used for bookkeeping and tracing; the constraint set
        is ``path``.
    path:
        The directed links the flow crosses, in order.
    size_bytes:
        Total bytes to transfer, or ``None`` for an unbounded flow (e.g. the
        aggressive-retry stream of §3.2) that runs until explicitly stopped.
    rate_cap_bps:
        An upper bound on the flow's rate in addition to fair sharing;
        the TCP slow-start ramp raises this over time.
    label:
        Free-form tag used by traces and metrics (e.g. ``"payment"``).
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "path",
        "size_bytes",
        "delivered_bytes",
        "rate_bps",
        "rate_cap_bps",
        "label",
        "state",
        "started_at",
        "finished_at",
        "on_complete",
        "on_rate_change",
        "_last_integration",
        "_completion_event",
        "_path_ids",
        "_path_min_cap",
        "_bound",
        "owner",
    )

    def __init__(
        self,
        src: Host,
        dst: Host,
        path: list[Link],
        size_bytes: Optional[float] = None,
        rate_cap_bps: Optional[float] = None,
        label: str = "flow",
        on_complete: Optional[Callable[["Flow"], None]] = None,
    ) -> None:
        if not path:
            raise FlowError("a flow needs a non-empty path")
        if size_bytes is not None and size_bytes <= 0:
            raise FlowError(f"size_bytes must be positive or None, got {size_bytes}")
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise FlowError(f"rate_cap_bps must be positive or None, got {rate_cap_bps}")
        self.flow_id = next(_flow_ids)
        self.src = src
        self.dst = dst
        self.path = list(path)
        self.size_bytes = size_bytes
        self.delivered_bytes = 0.0
        self.rate_bps = 0.0
        self.rate_cap_bps = rate_cap_bps
        self.label = label
        self.state = FlowState.CREATED
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.on_complete = on_complete
        self.on_rate_change: Optional[Callable[["Flow"], None]] = None
        self._last_integration: float = 0.0
        self._completion_event = None
        #: Immutable per-path precomputations the allocator's hot loops use:
        #: the links' identities (dict-key ints, paired with ``path`` by
        #: index) and the narrowest capacity along the path.
        self._path_ids = tuple(id(link) for link in self.path)
        self._path_min_cap = min(link.capacity_bps for link in self.path)
        #: Static rate bound maintained by the owning network while active:
        #: ``min(path capacities, rate cap)``.
        self._bound = 0.0
        #: Arbitrary back-reference for higher layers (e.g. the payment
        #: channel that owns this flow).
        self.owner = None

    # -- derived quantities -------------------------------------------------

    @property
    def is_active(self) -> bool:
        """True while the network is allocating bandwidth to this flow."""
        return self.state == FlowState.ACTIVE

    @property
    def is_bounded(self) -> bool:
        """True if the flow has a fixed number of bytes to transfer."""
        return self.size_bytes is not None

    @property
    def remaining_bytes(self) -> Optional[float]:
        """Bytes left to deliver, or None for an unbounded flow."""
        if self.size_bytes is None:
            return None
        return max(0.0, self.size_bytes - self.delivered_bytes)

    @property
    def one_way_delay(self) -> float:
        """Propagation delay along the flow's path plus host-attributed delay."""
        return path_delay(self.path) + self.src.extra_delay_s + self.dst.extra_delay_s

    def effective_cap(self) -> float:
        """The flow's own rate ceiling (infinite when uncapped)."""
        return self.rate_cap_bps if self.rate_cap_bps is not None else float("inf")

    def uses_link(self, link: Link) -> bool:
        """True if the flow's path crosses ``link``."""
        return link in self.path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = "unbounded" if self.size_bytes is None else f"{self.size_bytes:.0f}B"
        return (
            f"Flow(#{self.flow_id} {self.label} {self.src.name}->{self.dst.name} "
            f"{size} {self.state.value} rate={self.rate_bps / 1e6:.3f}Mbit/s)"
        )
