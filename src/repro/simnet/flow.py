"""Flows: fluid byte transfers across a path of directed links.

A flow models one direction of one transport connection (a payment POST, a
request upload, an HTTP response body).  The :class:`~repro.simnet.network.
FluidNetwork` assigns each active flow a rate (max-min fair share, further
limited by the flow's own rate cap, which the slow-start model adjusts) and
integrates delivered bytes whenever rates change.

Since the struct-of-arrays refactor a flow is a *view*: while attached to a
network its hot numeric state (rate, delivered bytes, integration clock,
static bound, rate cap) lives in the network's
:class:`~repro.simnet.soa.SoAStore` row ``_fid``, and the public attributes
below are properties reading that row.  Detached flows — not yet started, or
already finished — fall back to plain scalar slots (``_srate`` etc.); the
network freezes the row's final values back into those slots when the flow
detaches, so a completed flow's ``delivered_bytes`` stays readable forever
without holding a row.  Property reads go through the store's memoryviews,
which hand back plain Python floats — ``numpy.float64`` never escapes.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

from repro.errors import FlowError
from repro.simnet.host import Host
from repro.simnet.link import Link, path_delay

_INF = float("inf")


class FlowState(enum.Enum):
    """Lifecycle of a flow."""

    CREATED = "created"
    ACTIVE = "active"
    COMPLETED = "completed"
    STOPPED = "stopped"


_flow_ids = itertools.count(1)


class Flow:
    """A unidirectional fluid transfer from ``src`` to ``dst``.

    Parameters
    ----------
    src, dst:
        Endpoints.  Only used for bookkeeping and tracing; the constraint set
        is ``path``.
    path:
        The directed links the flow crosses, in order.
    size_bytes:
        Total bytes to transfer, or ``None`` for an unbounded flow (e.g. the
        aggressive-retry stream of §3.2) that runs until explicitly stopped.
    rate_cap_bps:
        An upper bound on the flow's rate in addition to fair sharing;
        the TCP slow-start ramp raises this over time.
    label:
        Free-form tag used by traces and metrics (e.g. ``"payment"``).
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "path",
        "size_bytes",
        "label",
        "state",
        "started_at",
        "finished_at",
        "on_complete",
        "on_rate_change",
        "_completion_event",
        "_path_lids",
        "_path_min_cap",
        "owner",
        "_fid",
        "_soa",
        "_srate",
        "_sdelivered",
        "_slast",
        "_sbound",
        "_scap",
    )

    def __init__(
        self,
        src: Host,
        dst: Host,
        path: list[Link],
        size_bytes: Optional[float] = None,
        rate_cap_bps: Optional[float] = None,
        label: str = "flow",
        on_complete: Optional[Callable[["Flow"], None]] = None,
    ) -> None:
        if not path:
            raise FlowError("a flow needs a non-empty path")
        if size_bytes is not None and size_bytes <= 0:
            raise FlowError(f"size_bytes must be positive or None, got {size_bytes}")
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise FlowError(f"rate_cap_bps must be positive or None, got {rate_cap_bps}")
        self.flow_id = next(_flow_ids)
        self.src = src
        self.dst = dst
        self.path = list(path)
        self.size_bytes = size_bytes
        self.label = label
        self.state = FlowState.CREATED
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.on_complete = on_complete
        self.on_rate_change: Optional[Callable[["Flow"], None]] = None
        self._completion_event = None
        #: Dense link ids along the path (paired with ``path`` by index);
        #: assigned by the network at attach time, when every path link is
        #: guaranteed to be registered with its store.
        self._path_lids: tuple = ()
        #: The narrowest capacity along the path.
        self._path_min_cap = min(link.capacity_bps for link in self.path)
        #: Arbitrary back-reference for higher layers (e.g. the payment
        #: channel that owns this flow).
        self.owner = None
        #: Struct-of-arrays row id (-1 while detached) and its store.
        self._fid = -1
        self._soa = None
        # Scalar fallbacks, authoritative while detached.
        self._srate = 0.0
        self._sdelivered = 0.0
        self._slast = 0.0
        self._sbound = 0.0
        self._scap = rate_cap_bps

    # -- array-backed state ---------------------------------------------------

    @property
    def rate_bps(self) -> float:
        """Currently allocated rate in bits/s."""
        fid = self._fid
        if fid >= 0:
            return self._soa.fm_rate[fid]
        return self._srate

    @rate_bps.setter
    def rate_bps(self, value: float) -> None:
        fid = self._fid
        if fid >= 0:
            self._soa.fm_rate[fid] = value
        else:
            self._srate = value

    @property
    def delivered_bytes(self) -> float:
        """Bytes delivered so far (as of the last integration)."""
        fid = self._fid
        if fid >= 0:
            return self._soa.fm_delivered[fid]
        return self._sdelivered

    @delivered_bytes.setter
    def delivered_bytes(self, value: float) -> None:
        fid = self._fid
        if fid >= 0:
            self._soa.fm_delivered[fid] = value
        else:
            self._sdelivered = value

    @property
    def _last_integration(self) -> float:
        fid = self._fid
        if fid >= 0:
            return self._soa.fm_last[fid]
        return self._slast

    @_last_integration.setter
    def _last_integration(self, value: float) -> None:
        fid = self._fid
        if fid >= 0:
            self._soa.fm_last[fid] = value
        else:
            self._slast = value

    @property
    def _bound(self) -> float:
        """Static rate bound maintained by the owning network while active."""
        fid = self._fid
        if fid >= 0:
            return self._soa.fm_bound[fid]
        return self._sbound

    @_bound.setter
    def _bound(self, value: float) -> None:
        fid = self._fid
        if fid >= 0:
            self._soa.fm_bound[fid] = value
        else:
            self._sbound = value

    @property
    def rate_cap_bps(self) -> Optional[float]:
        """The flow's private rate ceiling (``None`` = uncapped)."""
        fid = self._fid
        if fid >= 0:
            cap = self._soa.fm_cap[fid]
            return None if cap == _INF else cap
        return self._scap

    @rate_cap_bps.setter
    def rate_cap_bps(self, value: Optional[float]) -> None:
        fid = self._fid
        if fid >= 0:
            self._soa.fm_cap[fid] = _INF if value is None else value
        else:
            self._scap = value

    # -- derived quantities -------------------------------------------------

    @property
    def is_active(self) -> bool:
        """True while the network is allocating bandwidth to this flow."""
        return self.state == FlowState.ACTIVE

    @property
    def is_bounded(self) -> bool:
        """True if the flow has a fixed number of bytes to transfer."""
        return self.size_bytes is not None

    @property
    def remaining_bytes(self) -> Optional[float]:
        """Bytes left to deliver, or None for an unbounded flow."""
        if self.size_bytes is None:
            return None
        return max(0.0, self.size_bytes - self.delivered_bytes)

    @property
    def one_way_delay(self) -> float:
        """Propagation delay along the flow's path plus host-attributed delay."""
        return path_delay(self.path) + self.src.extra_delay_s + self.dst.extra_delay_s

    def effective_cap(self) -> float:
        """The flow's own rate ceiling (infinite when uncapped)."""
        cap = self.rate_cap_bps
        return cap if cap is not None else _INF

    def uses_link(self, link: Link) -> bool:
        """True if the flow's path crosses ``link``."""
        return link in self.path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = "unbounded" if self.size_bytes is None else f"{self.size_bytes:.0f}B"
        return (
            f"Flow(#{self.flow_id} {self.label} {self.src.name}->{self.dst.name} "
            f"{size} {self.state.value} rate={self.rate_bps / 1e6:.3f}Mbit/s)"
        )
