"""The fluid network: flow lifecycle, rate allocation, byte integration.

:class:`FluidNetwork` owns the set of active flows.  Whenever that set (or a
flow's private rate cap) changes, bandwidth must be re-shared and the
completion events of the flows whose rates changed must be rescheduled.
Delivered bytes are integrated lazily, per flow, under piecewise-constant
rates (which makes the integration exact).

Rate recomputation is **deferred and batched** (the dirty-set scheme).  A
flow attach/detach/cap change only does O(path) bookkeeping: it records the
affected links in a dirty set (remembering which of them were already
potentially saturated before the change) and arms the engine's flush hook.
The actual recomputation runs at most once per batch of changes — immediately
before the engine fires the next event, before an idle clock fast-forwards,
or when a caller reads rates (:meth:`FluidNetwork.sync`,
:meth:`aggregate_rate_bps`, ...).  Deferral is exact because the simulated
clock cannot advance past the change instant before the flush runs: the old
rates remain valid for the zero simulated seconds they are still in effect.
Batching collapses the common same-instant chains (a flow start immediately
followed by its slow-start cap, an auction teardown cascade) into a single
recomputation and — more importantly — a single round of completion-event
cancel/reschedule heap traffic.

Recomputation is also *component-restricted*: most changes (a payment POST
finishing on one client's uplink, say) can only affect the rates of flows
that share a potentially-saturated link with the changed flow, directly or
transitively.  Each link maintains its "potential load" — an upper bound on
the aggregate rate its flows could jointly push through it, with flows
grouped by their entry link so a well-provisioned core link is not falsely
flagged (see :mod:`repro.simnet.link`).  A link whose capacity covers its
potential load can never saturate and never constrains anyone, so the search
for affected flows only crosses links whose potential load exceeds capacity.
Rates for the affected component are then recomputed with progressive
filling (:func:`repro.simnet.bandwidth.waterfill`); everything outside the
component keeps its previous, still-valid rate.  The brute-force global
computation (:func:`repro.simnet.bandwidth.max_min_fair_rates`) remains
available both as a reference for the property-based tests and as an
``incremental=False`` escape hatch.

Steady-state traffic recomputes the *same* component shapes over and over
(one more identical payment POST on an otherwise unchanged uplink), so the
network keeps an LRU cache keyed by the component's structural signature —
which constraint links it spans and, per flow, which of them it crosses and
its rate ceiling.  Flows with identical structure provably receive identical
max-min rates, so cached rate vectors can be re-applied positionally to a
sorted view of the component without re-running the waterfill.

Propagation delays are *not* folded into byte accounting — they are exposed
via :meth:`FluidNetwork.rtt` and the higher layers (thinner, clients, HTTP
download model) account for them explicitly where the paper's evaluation
does (encouragement latency, quiescent periods, auction responses).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import FlowError
from repro.perf.counters import SimCounters
from repro.simnet.bandwidth import RATE_EPSILON, max_min_fair_rates, waterfill
from repro.simnet.engine import Engine
from repro.simnet.flow import Flow, FlowState
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.topology import Topology
from repro.simnet.trace import Tracer

#: Completion is declared when fewer than this many bytes remain; guards
#: against floating-point residue keeping a flow alive forever.
BYTES_EPSILON = 1e-6

#: Slack used when comparing a link's potential load against its capacity.
#: A link is "constraining" only when its potential load *strictly* exceeds
#: capacity by more than this: flows that can jointly fill a link exactly are
#: each already limited to their static bounds by something else, so the link
#: cannot force anyone below their bound.
_CAPACITY_SLACK = 1e-6

_INF = float("inf")


class FluidNetwork:
    """Fluid-flow network simulator bound to an :class:`Engine` and a topology."""

    #: Entries kept in the component-signature → rate-vector LRU cache.
    RATE_CACHE_SIZE = 256

    #: Components smaller than this skip the cache entirely: building and
    #: hashing the structural signature costs more than just waterfilling a
    #: handful of flows.  The cache pays off where waterfill's cost curve
    #: bends — wide components recomputed repeatedly in steady state.
    RATE_CACHE_MIN_FLOWS = 16

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        tracer: Optional[Tracer] = None,
        incremental: bool = True,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.tracer = tracer
        #: When False, every change triggers a global recomputation (slower,
        #: used as a cross-check in tests).
        self.incremental = incremental

        self._active: Dict[Flow, None] = {}
        #: Hot-path instrumentation (see :mod:`repro.perf.counters`).
        self.counters = SimCounters()

        # Dirty-set state for the deferred, batched rate recomputation.
        self._dirty = False
        self._dirty_seeds: Dict[int, Link] = {}
        self._dirty_pre: Set[int] = set()
        self._dirty_flows: Dict[Flow, None] = {}
        self._rate_cache: "OrderedDict[tuple, Tuple[float, ...]]" = OrderedDict()

        self.total_delivered_bytes = 0.0
        self.completed_flows = 0
        self.stopped_flows = 0

        engine.add_flush_callback(self._flush_rates)
        self._reset_link_state()

    def _reset_link_state(self) -> None:
        """Clear allocator bookkeeping on every link of the topology.

        Links carry their runtime state in ``__slots__`` (see
        :mod:`repro.simnet.link`); a topology handed to a fresh network may
        have been driven by a previous one.
        """
        for host in self.topology.hosts:
            host.access.up._reset_runtime()
            host.access.down._reset_runtime()
        for cable in self.topology.shared_links:
            cable.up._reset_runtime()
            cable.down._reset_runtime()

    # -- queries ---------------------------------------------------------------

    @property
    def active_flows(self) -> List[Flow]:
        """Flows currently being allocated bandwidth (a copy)."""
        return list(self._active)

    def active_flow_count(self) -> int:
        """Number of currently active flows."""
        return len(self._active)

    def rtt(self, a: Host, b: Host) -> float:
        """Round-trip propagation delay between two hosts."""
        return self.topology.rtt(a, b)

    # -- flow construction -------------------------------------------------------

    def create_flow(
        self,
        src: Host,
        dst: Host,
        size_bytes: Optional[float] = None,
        rate_cap_bps: Optional[float] = None,
        label: str = "flow",
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Build (but do not start) a flow routed by the topology."""
        path = self.topology.path(src, dst)
        return Flow(
            src,
            dst,
            path,
            size_bytes=size_bytes,
            rate_cap_bps=rate_cap_bps,
            label=label,
            on_complete=on_complete,
        )

    # -- flow lifecycle ------------------------------------------------------------

    def start_flow(self, flow: Flow) -> Flow:
        """Activate ``flow``; its rate materialises at the next flush."""
        if flow.state == FlowState.ACTIVE:
            raise FlowError(f"flow {flow.flow_id} is already active")
        if flow.state in (FlowState.COMPLETED, FlowState.STOPPED):
            raise FlowError(f"flow {flow.flow_id} has already finished ({flow.state.value})")
        flow.state = FlowState.ACTIVE
        flow.started_at = self.engine.now
        flow._last_integration = self.engine.now

        self._note_change(flow.path, flow)
        self._attach(flow)
        if self.tracer is not None:
            self.tracer.record(
                "flow_start",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                src=flow.src.name,
                dst=flow.dst.name,
                size=flow.size_bytes,
            )
        return flow

    def send(
        self,
        src: Host,
        dst: Host,
        size_bytes: Optional[float] = None,
        rate_cap_bps: Optional[float] = None,
        label: str = "flow",
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Create and immediately start a flow."""
        flow = self.create_flow(
            src,
            dst,
            size_bytes=size_bytes,
            rate_cap_bps=rate_cap_bps,
            label=label,
            on_complete=on_complete,
        )
        return self.start_flow(flow)

    def stop_flow(self, flow: Flow) -> float:
        """Deactivate ``flow`` (e.g. the auction winner's payment channel).

        Returns the bytes it delivered.  Stopping an already-finished flow is
        a no-op so callers do not need to worry about races with completion.
        """
        if flow.state != FlowState.ACTIVE:
            return flow.delivered_bytes
        self._integrate(flow)
        self._note_change(flow.path)
        self._detach(flow, FlowState.STOPPED)
        self.stopped_flows += 1
        if self.tracer is not None:
            self.tracer.record(
                "flow_stop",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                delivered=flow.delivered_bytes,
            )
        return flow.delivered_bytes

    def set_rate_cap(self, flow: Flow, rate_cap_bps: Optional[float]) -> None:
        """Change a flow's private rate ceiling (slow-start ramp) and mark it dirty."""
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise FlowError(f"rate cap must be positive or None, got {rate_cap_bps}")
        if flow.rate_cap_bps == rate_cap_bps:
            return
        flow.rate_cap_bps = rate_cap_bps
        if flow.state != FlowState.ACTIVE:
            return
        path = flow.path
        self._note_change(path, flow)
        old_bound = flow._bound
        new_bound = flow._path_min_cap
        if rate_cap_bps is not None and rate_cap_bps < new_bound:
            new_bound = rate_cap_bps
        if new_bound != old_bound:
            flow._bound = new_bound
            delta = new_bound - old_bound
            entry = path[0]
            entry._potential += delta
            for link in path[1:]:
                link._add_entry_load(entry, delta)

    def sync(self) -> None:
        """Flush pending rate updates, then bring every active flow's
        ``delivered_bytes`` up to the current time."""
        self._flush_rates()
        for flow in self._active:
            self._integrate(flow)

    def delivered_bytes(self, flow: Flow) -> float:
        """Delivered bytes of ``flow`` as of now (integrating if still active).

        Exact even while a rate recomputation is pending: pending changes
        were made at the *current* instant, so the pre-change rate still
        covers the whole integration interval.
        """
        if flow.state == FlowState.ACTIVE:
            self._integrate(flow)
        return flow.delivered_bytes

    # -- bookkeeping internals ------------------------------------------------------

    def _note_change(self, path: List[Link], flow: Optional[Flow] = None) -> None:
        """Record a flow-set change: O(path), no recomputation.

        Must run *before* the change mutates the load bookkeeping — the
        flush seeds the affected component from links that were potentially
        saturated either before any change in the batch or after all of
        them.
        """
        self.counters.reallocations += 1
        seeds = self._dirty_seeds
        pre = self._dirty_pre
        slack = _CAPACITY_SLACK
        for link in path:
            lid = id(link)
            if lid not in seeds:
                seeds[lid] = link
            if link._potential > link.capacity_bps + slack:
                pre.add(lid)
        if flow is not None:
            self._dirty_flows[flow] = None
        if not self._dirty:
            self._dirty = True
            self.engine.request_flush()

    def _attach(self, flow: Flow) -> None:
        self._active[flow] = None
        path = flow.path
        bound = flow._path_min_cap
        cap = flow.rate_cap_bps
        if cap is not None and cap < bound:
            bound = cap
        flow._bound = bound
        entry = path[0]
        entry._flows[flow] = None
        entry._flow_count += 1
        entry._potential += bound
        for link in path[1:]:
            link._flows[flow] = None
            link._flow_count += 1
            link._add_entry_load(entry, bound)

    def _detach(self, flow: Flow, final_state: FlowState) -> None:
        self._active.pop(flow, None)
        path = flow.path
        bound = flow._bound
        flow._bound = 0.0
        entry = path[0]
        entry._flows.pop(flow, None)
        entry._flow_count -= 1
        entry._potential -= bound
        if not entry._flows:
            entry._potential = 0.0
            entry._entry_sums.clear()
        for link in path[1:]:
            link._flows.pop(flow, None)
            link._flow_count -= 1
            link._add_entry_load(entry, -bound)
            if not link._flows:
                link._potential = 0.0
                link._entry_sums.clear()
        flow.state = final_state
        flow.finished_at = self.engine.now
        flow.rate_bps = 0.0
        if flow._completion_event is not None:
            flow._completion_event.cancel()
            flow._completion_event = None

    def _integrate(self, flow: Flow) -> None:
        now = self.engine.now
        dt = now - flow._last_integration
        if dt > 0 and flow.rate_bps > 0:
            delivered = flow.rate_bps * dt / 8.0
            if flow.size_bytes is not None:
                remaining = flow.size_bytes - flow.delivered_bytes
                if delivered > remaining:
                    delivered = remaining
            flow.delivered_bytes += delivered
            self.total_delivered_bytes += delivered
        flow._last_integration = now

    def _is_constraining(self, link: Link) -> bool:
        return link._potential > link.capacity_bps + _CAPACITY_SLACK

    # -- deferred rate recomputation ---------------------------------------------------

    def _flush_rates(self) -> None:
        """Recompute rates for everything touched since the last flush.

        Registered as the engine's flush callback; also invoked directly by
        the rate-reading queries.  No-op when nothing is dirty.
        """
        if not self._dirty:
            return
        self._dirty = False
        counters = self.counters
        counters.flushes += 1
        seeds = self._dirty_seeds
        pre = self._dirty_pre
        dirty_flows = self._dirty_flows
        self._dirty_seeds = {}
        self._dirty_pre = set()
        self._dirty_flows = {}

        if not self.incremental:
            flows = list(self._active)
            counters.waterfill_calls += 1
            counters.flows_touched += len(flows)
            self._apply_rates(flows, max_min_fair_rates(flows))
            return

        slack = _CAPACITY_SLACK
        seed_links = [
            link
            for lid, link in seeds.items()
            if lid in pre or link._potential > link.capacity_bps + slack
        ]
        component = self._component(seed_links)
        for flow in dirty_flows:
            if flow.state is FlowState.ACTIVE and flow not in component:
                component[flow] = None
        if not component:
            return
        flows = list(component)

        # Which links can actually bind the component?
        constraint_links: List[Link] = []
        constraint_seen: Set[int] = set()
        for flow in flows:
            for link in flow.path:
                lid = id(link)
                if lid not in constraint_seen and link._potential > link.capacity_bps + slack:
                    constraint_seen.add(lid)
                    constraint_links.append(link)

        use_cache = len(flows) >= self.RATE_CACHE_MIN_FLOWS

        # Per-flow ceilings (own cap folded with never-saturating path links)
        # and, when caching, the component's structural signature.
        effective_caps: Dict[Flow, float] = {}
        structs: List[tuple] = []
        for flow in flows:
            cap = flow.rate_cap_bps
            if cap is None:
                cap = _INF
            path = flow.path
            ids = flow._path_ids
            if use_cache:
                crossed: List[int] = []
                for index in range(len(path)):
                    lid = ids[index]
                    if lid in constraint_seen:
                        crossed.append(lid)
                    else:
                        capacity = path[index].capacity_bps
                        if capacity < cap:
                            cap = capacity
                crossed.sort()
                structs.append((tuple(crossed), cap))
            else:
                for index in range(len(path)):
                    if ids[index] not in constraint_seen:
                        capacity = path[index].capacity_bps
                        if capacity < cap:
                            cap = capacity
            effective_caps[flow] = cap

        if not use_cache:
            # Below the cache threshold: cache_hits/misses deliberately not
            # touched, so those counters measure cache traffic alone.
            counters.waterfill_calls += 1
            counters.flows_touched += len(flows)
            self._apply_rates(flows, waterfill(flows, constraint_links, effective_caps))
            return

        order = sorted(range(len(flows)), key=structs.__getitem__)
        key = (
            tuple(sorted((id(link), link.capacity_bps) for link in constraint_links)),
            tuple(structs[index] for index in order),
        )
        cache = self._rate_cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            counters.cache_hits += 1
            rates = {}
            for position, index in enumerate(order):
                rates[flows[index]] = cached[position]
        else:
            counters.cache_misses += 1
            counters.waterfill_calls += 1
            counters.flows_touched += len(flows)
            rates = waterfill(flows, constraint_links, effective_caps)
            cache[key] = tuple(rates[flows[index]] for index in order)
            if len(cache) > self.RATE_CACHE_SIZE:
                cache.popitem(last=False)
        self._apply_rates(flows, rates)

    def _component(self, seed_links: List[Link]) -> Dict[Flow, None]:
        component: Dict[Flow, None] = {}
        visited = {id(link) for link in seed_links}
        frontier = list(seed_links)
        slack = _CAPACITY_SLACK
        while frontier:
            next_frontier: List[Link] = []
            for link in frontier:
                for flow in link._flows:
                    if flow in component:
                        continue
                    component[flow] = None
                    path = flow.path
                    ids = flow._path_ids
                    for index in range(len(path)):
                        oid = ids[index]
                        if oid not in visited:
                            other = path[index]
                            if other._potential > other.capacity_bps + slack:
                                visited.add(oid)
                                next_frontier.append(other)
            frontier = next_frontier
        return component

    def _apply_rates(self, flows: List[Flow], rates: Dict[Flow, float]) -> None:
        for flow in flows:
            new_rate = rates.get(flow, 0.0)
            changed = abs(new_rate - flow.rate_bps) > RATE_EPSILON
            if changed:
                # Settle what was delivered at the old rate before switching.
                self._integrate(flow)
                flow.rate_bps = new_rate
                if flow.on_rate_change is not None:
                    flow.on_rate_change(flow)
            # A flow whose rate did not change keeps its completion event:
            # with a constant rate the absolute completion time is unchanged.
            if changed or (flow.is_bounded and flow._completion_event is None):
                self._reschedule_completion(flow)

    def _reschedule_completion(self, flow: Flow) -> None:
        if flow._completion_event is not None:
            flow._completion_event.cancel()
            flow._completion_event = None
        if not flow.is_bounded or flow.state != FlowState.ACTIVE:
            return
        remaining = flow.size_bytes - flow.delivered_bytes
        if remaining <= BYTES_EPSILON:
            # Completed exactly at this instant; finish via an immediate event
            # so the caller of the triggering operation returns first.
            flow._completion_event = self.engine.call_soon(self._complete, flow)
        elif flow.rate_bps > RATE_EPSILON:
            eta = remaining * 8.0 / flow.rate_bps
            flow._completion_event = self.engine.schedule_after(eta, self._complete, flow)

    def _complete(self, flow: Flow) -> None:
        if flow.state != FlowState.ACTIVE:
            return
        self._integrate(flow)
        remaining = (flow.size_bytes or 0.0) - flow.delivered_bytes
        if remaining > BYTES_EPSILON:
            # Rates changed between scheduling and firing; the reallocation
            # that changed them already rescheduled us, so just bail out.
            return
        flow.delivered_bytes = float(flow.size_bytes)
        self._note_change(flow.path)
        self._detach(flow, FlowState.COMPLETED)
        self.completed_flows += 1
        if self.tracer is not None:
            self.tracer.record(
                "flow_complete",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                delivered=flow.delivered_bytes,
            )
        if flow.on_complete is not None:
            flow.on_complete(flow)

    # -- aggregate statistics ----------------------------------------------------------

    def aggregate_rate_bps(self, predicate: Optional[Callable[[Flow], bool]] = None) -> float:
        """Sum of current rates over active flows matching ``predicate``."""
        self._flush_rates()
        total = 0.0
        for flow in self._active:
            if predicate is None or predicate(flow):
                total += flow.rate_bps
        return total

    def flows_on(self, link: Link) -> List[Flow]:
        """Active flows whose path crosses ``link``."""
        return list(link._flows)

    def link_load_bps(self, link: Link) -> float:
        """Aggregate rate currently crossing ``link``."""
        self._flush_rates()
        return sum(flow.rate_bps for flow in link._flows)

    def link_utilisation(self, link: Link) -> float:
        """Fraction of ``link``'s capacity in use right now."""
        return self.link_load_bps(link) / link.capacity_bps
