"""The fluid network: flow lifecycle, rate allocation, byte integration.

:class:`FluidNetwork` owns the set of active flows.  Whenever that set (or a
flow's private rate cap) changes, it re-shares bandwidth and reschedules the
completion events of the flows whose rates changed.  Delivered bytes are
integrated lazily, per flow, under piecewise-constant rates (which makes the
integration exact).

Reallocation is *component-restricted*: most changes (a payment POST
finishing on one client's uplink, say) can only affect the rates of flows
that share a potentially-saturated link with the changed flow, directly or
transitively.  The network therefore keeps, per link, the "potential load" —
the sum of its flows' static rate bounds (each flow's narrowest path link
combined with its private cap).  A link whose capacity covers its potential
load can never saturate and never constrains anyone, so the search for
affected flows only crosses links whose potential load exceeds capacity.
Rates for the affected component are then recomputed with progressive
filling (:func:`repro.simnet.bandwidth.waterfill`); everything outside the
component keeps its previous, still-valid rate.  The brute-force global
computation (:func:`repro.simnet.bandwidth.max_min_fair_rates`) remains
available both as a reference for the property-based tests and as a
``incremental=False`` escape hatch.

Propagation delays are *not* folded into byte accounting — they are exposed
via :meth:`FluidNetwork.rtt` and the higher layers (thinner, clients, HTTP
download model) account for them explicitly where the paper's evaluation
does (encouragement latency, quiescent periods, auction responses).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import FlowError
from repro.simnet.bandwidth import RATE_EPSILON, max_min_fair_rates, waterfill
from repro.simnet.engine import Engine
from repro.simnet.flow import Flow, FlowState
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.topology import Topology
from repro.simnet.trace import Tracer

#: Completion is declared when fewer than this many bytes remain; guards
#: against floating-point residue keeping a flow alive forever.
BYTES_EPSILON = 1e-6

#: Slack used when comparing a link's potential load against its capacity.
_CAPACITY_SLACK = 1e-6


class FluidNetwork:
    """Fluid-flow network simulator bound to an :class:`Engine` and a topology."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        tracer: Optional[Tracer] = None,
        incremental: bool = True,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.tracer = tracer
        #: When False, every change triggers a global recomputation (slower,
        #: used as a cross-check in tests).
        self.incremental = incremental

        self._active: Dict[Flow, None] = {}
        self._link_flows: Dict[Link, Dict[Flow, None]] = {}
        self._potential_load: Dict[Link, float] = {}
        self._bounds: Dict[Flow, float] = {}

        self.total_delivered_bytes = 0.0
        self.completed_flows = 0
        self.stopped_flows = 0

    # -- queries ---------------------------------------------------------------

    @property
    def active_flows(self) -> List[Flow]:
        """Flows currently being allocated bandwidth (a copy)."""
        return list(self._active)

    def active_flow_count(self) -> int:
        """Number of currently active flows."""
        return len(self._active)

    def rtt(self, a: Host, b: Host) -> float:
        """Round-trip propagation delay between two hosts."""
        return self.topology.rtt(a, b)

    # -- flow construction -------------------------------------------------------

    def create_flow(
        self,
        src: Host,
        dst: Host,
        size_bytes: Optional[float] = None,
        rate_cap_bps: Optional[float] = None,
        label: str = "flow",
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Build (but do not start) a flow routed by the topology."""
        path = self.topology.path(src, dst)
        return Flow(
            src,
            dst,
            path,
            size_bytes=size_bytes,
            rate_cap_bps=rate_cap_bps,
            label=label,
            on_complete=on_complete,
        )

    # -- flow lifecycle ------------------------------------------------------------

    def start_flow(self, flow: Flow) -> Flow:
        """Activate ``flow`` and re-share bandwidth."""
        if flow.state == FlowState.ACTIVE:
            raise FlowError(f"flow {flow.flow_id} is already active")
        if flow.state in (FlowState.COMPLETED, FlowState.STOPPED):
            raise FlowError(f"flow {flow.flow_id} has already finished ({flow.state.value})")
        flow.state = FlowState.ACTIVE
        flow.started_at = self.engine.now
        flow._last_integration = self.engine.now

        pre_constraining = self._constraining_snapshot(flow.path)
        self._attach(flow)
        if self.tracer is not None:
            self.tracer.record(
                "flow_start",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                src=flow.src.name,
                dst=flow.dst.name,
                size=flow.size_bytes,
            )
        self._reallocate(flow, pre_constraining)
        return flow

    def send(
        self,
        src: Host,
        dst: Host,
        size_bytes: Optional[float] = None,
        rate_cap_bps: Optional[float] = None,
        label: str = "flow",
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Create and immediately start a flow."""
        flow = self.create_flow(
            src,
            dst,
            size_bytes=size_bytes,
            rate_cap_bps=rate_cap_bps,
            label=label,
            on_complete=on_complete,
        )
        return self.start_flow(flow)

    def stop_flow(self, flow: Flow) -> float:
        """Deactivate ``flow`` (e.g. the auction winner's payment channel).

        Returns the bytes it delivered.  Stopping an already-finished flow is
        a no-op so callers do not need to worry about races with completion.
        """
        if flow.state != FlowState.ACTIVE:
            return flow.delivered_bytes
        self._integrate(flow)
        pre_constraining = self._constraining_snapshot(flow.path)
        self._detach(flow, FlowState.STOPPED)
        self.stopped_flows += 1
        if self.tracer is not None:
            self.tracer.record(
                "flow_stop",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                delivered=flow.delivered_bytes,
            )
        self._reallocate(None, pre_constraining, extra_links=flow.path)
        return flow.delivered_bytes

    def set_rate_cap(self, flow: Flow, rate_cap_bps: Optional[float]) -> None:
        """Change a flow's private rate ceiling (slow-start ramp) and re-share."""
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise FlowError(f"rate cap must be positive or None, got {rate_cap_bps}")
        if flow.rate_cap_bps == rate_cap_bps:
            return
        flow.rate_cap_bps = rate_cap_bps
        if flow.state != FlowState.ACTIVE:
            return
        pre_constraining = self._constraining_snapshot(flow.path)
        old_bound = self._bounds[flow]
        new_bound = self._static_bound(flow)
        if new_bound != old_bound:
            self._bounds[flow] = new_bound
            for link in flow.path:
                self._potential_load[link] += new_bound - old_bound
        self._reallocate(flow, pre_constraining)

    def sync(self) -> None:
        """Bring every active flow's ``delivered_bytes`` up to the current time."""
        for flow in self._active:
            self._integrate(flow)

    def delivered_bytes(self, flow: Flow) -> float:
        """Delivered bytes of ``flow`` as of now (integrating if still active)."""
        if flow.state == FlowState.ACTIVE:
            self._integrate(flow)
        return flow.delivered_bytes

    # -- bookkeeping internals ------------------------------------------------------

    def _static_bound(self, flow: Flow) -> float:
        bound = min(link.capacity_bps for link in flow.path)
        return min(bound, flow.effective_cap())

    def _attach(self, flow: Flow) -> None:
        self._active[flow] = None
        bound = self._static_bound(flow)
        self._bounds[flow] = bound
        for link in flow.path:
            self._link_flows.setdefault(link, {})[flow] = None
            self._potential_load[link] = self._potential_load.get(link, 0.0) + bound
            link._flow_count += 1

    def _detach(self, flow: Flow, final_state: FlowState) -> None:
        self._active.pop(flow, None)
        bound = self._bounds.pop(flow, 0.0)
        for link in flow.path:
            flows_on_link = self._link_flows.get(link)
            if flows_on_link is not None:
                flows_on_link.pop(flow, None)
                if not flows_on_link:
                    del self._link_flows[link]
            self._potential_load[link] = self._potential_load.get(link, 0.0) - bound
            if self._potential_load[link] <= _CAPACITY_SLACK:
                self._potential_load.pop(link, None)
            link._flow_count -= 1
        flow.state = final_state
        flow.finished_at = self.engine.now
        flow.rate_bps = 0.0
        if flow._completion_event is not None:
            flow._completion_event.cancel()
            flow._completion_event = None

    def _integrate(self, flow: Flow) -> None:
        now = self.engine.now
        dt = now - flow._last_integration
        if dt > 0 and flow.rate_bps > 0:
            delivered = flow.rate_bps * dt / 8.0
            if flow.size_bytes is not None:
                remaining = flow.size_bytes - flow.delivered_bytes
                if delivered > remaining:
                    delivered = remaining
            flow.delivered_bytes += delivered
            self.total_delivered_bytes += delivered
        flow._last_integration = now

    def _is_constraining(self, link: Link) -> bool:
        return self._potential_load.get(link, 0.0) > link.capacity_bps + _CAPACITY_SLACK

    def _constraining_snapshot(self, links) -> Dict[Link, bool]:
        return {link: self._is_constraining(link) for link in links}

    # -- reallocation --------------------------------------------------------------------

    def _reallocate(
        self,
        changed_flow: Optional[Flow],
        pre_constraining: Dict[Link, bool],
        extra_links: Optional[List[Link]] = None,
    ) -> None:
        if not self.incremental:
            self._apply_rates(list(self._active), max_min_fair_rates(list(self._active)))
            return

        # Seed the affected component with every path link that constrains
        # traffic either before or after the change.
        seed: List[Link] = []
        seen = set()
        candidate_links = list(pre_constraining) + list(extra_links or [])
        for link in candidate_links:
            if id(link) in seen:
                continue
            seen.add(id(link))
            if pre_constraining.get(link, False) or self._is_constraining(link):
                seed.append(link)

        component = self._component(seed)
        if changed_flow is not None and changed_flow.state == FlowState.ACTIVE:
            if changed_flow not in component:
                component[changed_flow] = None
        if not component:
            return

        flows = list(component)
        constraint_links: List[Link] = []
        constraint_seen = set()
        for flow in flows:
            for link in flow.path:
                if id(link) not in constraint_seen and self._is_constraining(link):
                    constraint_seen.add(id(link))
                    constraint_links.append(link)

        effective_caps: Dict[Flow, float] = {}
        for flow in flows:
            cap = flow.effective_cap()
            for link in flow.path:
                if id(link) not in constraint_seen:
                    cap = min(cap, link.capacity_bps)
            effective_caps[flow] = cap

        rates = waterfill(flows, constraint_links, effective_caps)
        self._apply_rates(flows, rates)

    def _component(self, seed_links: List[Link]) -> Dict[Flow, None]:
        component: Dict[Flow, None] = {}
        visited = {id(link) for link in seed_links}
        frontier = list(seed_links)
        while frontier:
            next_frontier: List[Link] = []
            for link in frontier:
                for flow in self._link_flows.get(link, {}):
                    if flow in component:
                        continue
                    component[flow] = None
                    for other in flow.path:
                        if id(other) not in visited and self._is_constraining(other):
                            visited.add(id(other))
                            next_frontier.append(other)
            frontier = next_frontier
        return component

    def _apply_rates(self, flows: List[Flow], rates: Dict[Flow, float]) -> None:
        for flow in flows:
            new_rate = rates.get(flow, 0.0)
            changed = abs(new_rate - flow.rate_bps) > RATE_EPSILON
            if changed:
                # Settle what was delivered at the old rate before switching.
                self._integrate(flow)
                flow.rate_bps = new_rate
                if flow.on_rate_change is not None:
                    flow.on_rate_change(flow)
            # A flow whose rate did not change keeps its completion event:
            # with a constant rate the absolute completion time is unchanged.
            if changed or (flow.is_bounded and flow._completion_event is None):
                self._reschedule_completion(flow)

    def _reschedule_completion(self, flow: Flow) -> None:
        if flow._completion_event is not None:
            flow._completion_event.cancel()
            flow._completion_event = None
        if not flow.is_bounded or flow.state != FlowState.ACTIVE:
            return
        remaining = flow.size_bytes - flow.delivered_bytes
        if remaining <= BYTES_EPSILON:
            # Completed exactly at this instant; finish via an immediate event
            # so the caller of the triggering operation returns first.
            flow._completion_event = self.engine.call_soon(self._complete, flow)
        elif flow.rate_bps > RATE_EPSILON:
            eta = remaining * 8.0 / flow.rate_bps
            flow._completion_event = self.engine.schedule_after(eta, self._complete, flow)

    def _complete(self, flow: Flow) -> None:
        if flow.state != FlowState.ACTIVE:
            return
        self._integrate(flow)
        remaining = (flow.size_bytes or 0.0) - flow.delivered_bytes
        if remaining > BYTES_EPSILON:
            # Rates changed between scheduling and firing; the reallocation
            # that changed them already rescheduled us, so just bail out.
            return
        flow.delivered_bytes = float(flow.size_bytes)
        pre_constraining = self._constraining_snapshot(flow.path)
        self._detach(flow, FlowState.COMPLETED)
        self.completed_flows += 1
        if self.tracer is not None:
            self.tracer.record(
                "flow_complete",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                delivered=flow.delivered_bytes,
            )
        self._reallocate(None, pre_constraining, extra_links=flow.path)
        if flow.on_complete is not None:
            flow.on_complete(flow)

    # -- aggregate statistics ----------------------------------------------------------

    def aggregate_rate_bps(self, predicate: Optional[Callable[[Flow], bool]] = None) -> float:
        """Sum of current rates over active flows matching ``predicate``."""
        total = 0.0
        for flow in self._active:
            if predicate is None or predicate(flow):
                total += flow.rate_bps
        return total

    def flows_on(self, link: Link) -> List[Flow]:
        """Active flows whose path crosses ``link``."""
        return list(self._link_flows.get(link, {}))

    def link_load_bps(self, link: Link) -> float:
        """Aggregate rate currently crossing ``link``."""
        return sum(flow.rate_bps for flow in self._link_flows.get(link, {}))

    def link_utilisation(self, link: Link) -> float:
        """Fraction of ``link``'s capacity in use right now."""
        return self.link_load_bps(link) / link.capacity_bps
